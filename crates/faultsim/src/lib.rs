//! Deterministic fault injection for the autonomous-data-services stack.
//!
//! The paper's operational claim is that learned components are deployable
//! *because* they survive real failures behind guardrails and feedback loops.
//! This crate supplies the failures: a single `u64` seed expands into a
//! reproducible composition of
//!
//! * **execution faults** — task crashes, machine loss and temp-storage
//!   exhaustion driven through [`engine::exec`](adas_engine::exec)
//!   ([`chaos::ChaosRunner`]);
//! * **telemetry faults** — counter dropouts and outlier bursts over
//!   [`MachineTelemetry`](adas_infra::machine::MachineTelemetry) streams
//!   ([`telemetry::TelemetryFaults`]);
//! * **model-serving faults** — stale predictions, serving timeouts and
//!   poisoned (systematically biased) models ([`model::ModelFaults`]);
//! * **feedback faults** — delayed `(prediction, actual)` observation
//!   delivery into [`core::feedback`](adas_core::feedback)
//!   ([`feedback::DelayedFeedback`]).
//!
//! Everything is pure and seed-driven: the same seed always produces the
//! same schedule, the same perturbations, the same verdicts. Channels are
//! derived from the master seed with independent SplitMix64 streams
//! ([`seed::channel_rng`]), so adding draws on one channel never perturbs
//! another — a property the chaos test-suite's determinism assertions rely
//! on.
//!
//! ```
//! use adas_faultsim::{FaultConfig, FaultInjector};
//!
//! let injector = FaultInjector::new(42, FaultConfig::standard());
//! let schedule = injector.schedule_for(0, 16);
//! assert_eq!(schedule, injector.schedule_for(0, 16)); // same seed, same faults
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod feedback;
pub mod model;
pub mod schedule;
pub mod seed;
pub mod telemetry;

pub use chaos::{AttemptFailure, ChaosOutcome, ChaosRunner, FaultCause};
pub use feedback::DelayedFeedback;
pub use model::{ModelFaults, PoisonProfile, Served};
pub use schedule::{FaultEvent, FaultSchedule};
pub use seed::{channel_rng, Channel};
pub use telemetry::{TelemetryFaults, TelemetryPerturbation};

use serde::Serialize;

/// Fault intensities for every channel. `FaultConfig::disabled()` turns the
/// whole layer off; the injection paths then add no work beyond a branch
/// (the disabled-path overhead bound the bench suite checks).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultConfig {
    /// Master switch; when false no faults are ever generated.
    pub enabled: bool,
    /// Probability that a job run suffers a mid-flight task crash.
    pub task_crash_rate: f64,
    /// Maximum task crashes injected into one job.
    pub max_task_crashes: usize,
    /// Probability that a job run loses a machine mid-flight.
    pub machine_loss_rate: f64,
    /// Local temp capacity per machine, bytes; a run whose hotspot peak
    /// exceeds it loses the hotspot machine ("temp-storage exhaustion").
    /// `f64::INFINITY` disables the channel.
    pub temp_capacity_bytes: f64,
    /// Probability an individual telemetry sample is dropped.
    pub telemetry_dropout: f64,
    /// Probability an outlier burst starts at a given sample.
    pub outlier_burst_rate: f64,
    /// Number of consecutive samples an outlier burst corrupts.
    pub outlier_burst_len: usize,
    /// Multiplier applied to corrupted samples.
    pub outlier_magnitude: f64,
    /// Probability a model serving call returns the previous (stale) answer.
    pub staleness: f64,
    /// Probability a model serving call times out entirely.
    pub timeout_rate: f64,
    /// Systematic multiplicative bias of a poisoned model's predictions.
    pub poison_factor: f64,
    /// Observations by which feedback `(prediction, actual)` pairs lag.
    pub feedback_delay: usize,
}

impl FaultConfig {
    /// All channels off: the injection layer becomes (near-)free.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            task_crash_rate: 0.0,
            max_task_crashes: 0,
            machine_loss_rate: 0.0,
            temp_capacity_bytes: f64::INFINITY,
            telemetry_dropout: 0.0,
            outlier_burst_rate: 0.0,
            outlier_burst_len: 0,
            outlier_magnitude: 1.0,
            staleness: 0.0,
            timeout_rate: 0.0,
            poison_factor: 1.0,
            feedback_delay: 0,
        }
    }

    /// A hostile-but-survivable default used across the chaos suite.
    pub fn standard() -> Self {
        Self {
            enabled: true,
            task_crash_rate: 0.5,
            max_task_crashes: 2,
            machine_loss_rate: 0.3,
            temp_capacity_bytes: f64::INFINITY,
            telemetry_dropout: 0.05,
            outlier_burst_rate: 0.01,
            outlier_burst_len: 4,
            outlier_magnitude: 8.0,
            staleness: 0.1,
            timeout_rate: 0.05,
            poison_factor: 2.0,
            feedback_delay: 5,
        }
    }
}

/// The top-level injector: owns the master seed and derives per-channel,
/// per-job fault sources from it.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    seed: u64,
    config: FaultConfig,
}

impl FaultInjector {
    /// Creates an injector over a master seed.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        Self { seed, config }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The execution-fault schedule for one job on a cluster of `machines`
    /// machines. Distinct jobs draw from distinct derived seeds, so
    /// injecting into one job never shifts another job's faults.
    pub fn schedule_for(&self, job_index: u64, machines: usize) -> FaultSchedule {
        FaultSchedule::generate(seed::derive(self.seed, job_index), &self.config, machines)
    }

    /// The telemetry perturbation source.
    pub fn telemetry_faults(&self) -> TelemetryFaults {
        TelemetryFaults {
            dropout: if self.config.enabled {
                self.config.telemetry_dropout
            } else {
                0.0
            },
            burst_rate: if self.config.enabled {
                self.config.outlier_burst_rate
            } else {
                0.0
            },
            burst_len: self.config.outlier_burst_len,
            magnitude: self.config.outlier_magnitude,
            seed: self.seed,
        }
    }

    /// A model-serving fault source.
    pub fn model_faults(&self) -> ModelFaults {
        ModelFaults::new(
            self.seed,
            if self.config.enabled {
                self.config.staleness
            } else {
                0.0
            },
            if self.config.enabled {
                self.config.timeout_rate
            } else {
                0.0
            },
            if self.config.enabled {
                self.config.poison_factor
            } else {
                1.0
            },
        )
    }

    /// A model-serving fault source on an independent derived stream — one
    /// per served model, so injecting faults into one model never shifts
    /// another model's draws. `stream` is typically the gateway's stable
    /// model index.
    pub fn model_faults_for(&self, stream: u64) -> ModelFaults {
        ModelFaults::new(
            seed::derive(self.seed, stream),
            if self.config.enabled {
                self.config.staleness
            } else {
                0.0
            },
            if self.config.enabled {
                self.config.timeout_rate
            } else {
                0.0
            },
            if self.config.enabled {
                self.config.poison_factor
            } else {
                1.0
            },
        )
    }

    /// A delayed feedback queue.
    pub fn feedback_delay(&self) -> DelayedFeedback {
        DelayedFeedback::new(if self.config.enabled {
            self.config.feedback_delay
        } else {
            0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_deterministic_per_seed() {
        let a = FaultInjector::new(7, FaultConfig::standard());
        let b = FaultInjector::new(7, FaultConfig::standard());
        assert_eq!(a.schedule_for(3, 16), b.schedule_for(3, 16));
        let c = FaultInjector::new(8, FaultConfig::standard());
        // Different master seeds must eventually diverge over a few jobs.
        let differs = (0..16).any(|j| a.schedule_for(j, 16) != c.schedule_for(j, 16));
        assert!(differs);
    }

    #[test]
    fn disabled_config_generates_nothing() {
        let injector = FaultInjector::new(9, FaultConfig::disabled());
        for j in 0..32 {
            assert!(injector.schedule_for(j, 16).events.is_empty());
        }
    }

    #[test]
    fn jobs_draw_independent_schedules() {
        let injector = FaultInjector::new(11, FaultConfig::standard());
        let schedules: Vec<_> = (0..32).map(|j| injector.schedule_for(j, 16)).collect();
        let distinct = schedules
            .iter()
            .enumerate()
            .any(|(i, s)| schedules[..i].iter().any(|t| t != s) || i == 0);
        assert!(distinct);
    }
}
