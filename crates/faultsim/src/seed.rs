//! Per-channel seed derivation.
//!
//! All randomness in the fault layer derives from one master `u64`. Each
//! channel mixes the master seed with a fixed salt through SplitMix64
//! before seeding its own [`StdRng`], so the channels are statistically
//! independent streams *and* insensitive to how many draws the other
//! channels make — the key property behind the chaos suite's same-seed ⇒
//! same-report assertions.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The independent fault channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// Task crashes, machine loss, temp-storage exhaustion.
    Execution,
    /// Telemetry dropouts and outlier bursts.
    Telemetry,
    /// Model staleness, serving timeouts, poisoning.
    Model,
    /// Feedback delivery delay.
    Feedback,
}

impl Channel {
    /// Fixed per-channel salt mixed into the master seed. Arbitrary
    /// distinct odd constants; changing them changes every schedule, so
    /// they are part of the format (documented in `DESIGN.md`).
    pub fn salt(self) -> u64 {
        match self {
            Channel::Execution => 0xE1EC_7104_F417_0001,
            Channel::Telemetry => 0x7E1E_3E72_F417_0003,
            Channel::Model => 0x30DE_15E7_F417_0005,
            Channel::Feedback => 0xFEED_BACC_F417_0007,
        }
    }
}

/// Derives a sub-seed from a master seed and an index (job number, epoch,
/// …). `derive(s, a) == derive(s, a)` always; collisions across distinct
/// `(seed, index)` pairs are as unlikely as SplitMix64 allows.
///
/// Delegates to [`adas_simkern::rng::derive`] — the kernel holds the
/// canonical copy of the SplitMix64 constants, so the simulation kernel
/// and the fault channels can never drift apart. The derived values are
/// bit-for-bit what this module produced before the delegation.
pub fn derive(master: u64, index: u64) -> u64 {
    adas_simkern::rng::derive(master, index)
}

/// A seeded RNG for one channel of a master seed.
pub fn channel_rng(master: u64, channel: Channel) -> StdRng {
    StdRng::seed_from_u64(derive(master, channel.salt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn channels_are_independent_streams() {
        let mut exec = channel_rng(1, Channel::Execution);
        let mut tel = channel_rng(1, Channel::Telemetry);
        let a: Vec<u64> = (0..8).map(|_| exec.gen::<u64>()).collect();
        let b: Vec<u64> = (0..8).map(|_| tel.gen::<u64>()).collect();
        assert_ne!(a, b);
        // Re-deriving reproduces the stream exactly.
        let mut exec2 = channel_rng(1, Channel::Execution);
        let a2: Vec<u64> = (0..8).map(|_| exec2.gen::<u64>()).collect();
        assert_eq!(a, a2);
    }

    #[test]
    fn derive_spreads_indices() {
        let seeds: Vec<u64> = (0..64).map(|i| derive(7, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "no collisions over small indices");
    }

    #[test]
    fn salts_are_distinct() {
        let salts = [
            Channel::Execution.salt(),
            Channel::Telemetry.salt(),
            Channel::Model.salt(),
            Channel::Feedback.salt(),
        ];
        let mut uniq = salts.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), salts.len());
    }
}
