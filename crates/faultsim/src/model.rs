//! Model-serving faults: staleness, timeouts, poisoning.
//!
//! Wraps any learned predictor's scalar output (the cost ensemble, stage
//! predictors, behaviour models) with the serving-path failures the
//! guardrail layer must absorb: answers from a previous input (stale
//! cache), no answer at all (timeout — the caller must fall back to a
//! default), and a systematically biased ("poisoned") model that
//! [`GuardrailSet::check`](adas_core::guardrails::GuardrailSet::check) is
//! expected to block at deployment time.

use crate::seed::{channel_rng, Channel};
use rand::rngs::StdRng;
use rand::Rng;
use serde::Serialize;

/// One served prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Served {
    /// The model answered with the current input's prediction.
    Fresh(f64),
    /// The serving cache returned the *previous* input's prediction.
    Stale(f64),
    /// The serving call timed out; the caller must degrade gracefully
    /// (default cost, last known good, …) rather than fail.
    Timeout,
}

impl Served {
    /// The served value, or `fallback` on timeout — the graceful
    /// degradation path callers are expected to take.
    pub fn value_or(self, fallback: f64) -> f64 {
        match self {
            Served::Fresh(v) | Served::Stale(v) => v,
            Served::Timeout => fallback,
        }
    }
}

/// Seeded serving-fault source for scalar predictions.
#[derive(Debug, Clone)]
pub struct ModelFaults {
    rng: StdRng,
    staleness: f64,
    timeout_rate: f64,
    poison_factor: f64,
    last: Option<f64>,
}

impl ModelFaults {
    /// Creates a fault source. `staleness` and `timeout_rate` are per-call
    /// probabilities; `poison_factor` is the multiplicative bias
    /// [`ModelFaults::poisoned`] applies.
    pub fn new(seed: u64, staleness: f64, timeout_rate: f64, poison_factor: f64) -> Self {
        Self {
            rng: channel_rng(seed, Channel::Model),
            staleness,
            timeout_rate,
            poison_factor,
            last: None,
        }
    }

    /// Serves one prediction, possibly degraded. The first call can never
    /// be stale (there is no previous answer to return).
    pub fn serve(&mut self, clean: f64) -> Served {
        if self.timeout_rate > 0.0 && self.rng.gen_bool(self.timeout_rate) {
            // A timed-out call still advances `last`: the model *computed*
            // the answer, the caller just never received it.
            self.last = Some(clean);
            return Served::Timeout;
        }
        let served = match self.last {
            Some(prev) if self.staleness > 0.0 && self.rng.gen_bool(self.staleness) => {
                Served::Stale(prev)
            }
            _ => Served::Fresh(clean),
        };
        self.last = Some(clean);
        served
    }

    /// A poisoned model's answer: the clean prediction under systematic
    /// multiplicative bias. Deterministic (no RNG draw) so guardrail tests
    /// can reason about it exactly.
    pub fn poisoned(&self, clean: f64) -> f64 {
        clean * self.poison_factor
    }

    /// The configured poison bias.
    pub fn poison_factor(&self) -> f64 {
        self.poison_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_is_deterministic_per_seed() {
        let mut a = ModelFaults::new(3, 0.3, 0.1, 2.0);
        let mut b = ModelFaults::new(3, 0.3, 0.1, 2.0);
        for i in 0..200 {
            let x = i as f64;
            assert_eq!(a.serve(x), b.serve(x));
        }
    }

    #[test]
    fn no_faults_means_always_fresh() {
        let mut m = ModelFaults::new(4, 0.0, 0.0, 1.0);
        for i in 0..50 {
            assert_eq!(m.serve(i as f64), Served::Fresh(i as f64));
        }
    }

    #[test]
    fn stale_answers_repeat_previous_input() {
        let mut m = ModelFaults::new(5, 0.5, 0.0, 1.0);
        let mut prev = None;
        let mut stale_seen = false;
        for i in 0..200 {
            let x = i as f64;
            match m.serve(x) {
                Served::Fresh(v) => assert_eq!(v, x),
                Served::Stale(v) => {
                    stale_seen = true;
                    assert_eq!(Some(v), prev, "stale answer must be the previous input's");
                }
                Served::Timeout => unreachable!("timeout_rate is 0"),
            }
            prev = Some(x);
        }
        assert!(stale_seen);
    }

    #[test]
    fn timeouts_fall_back_gracefully() {
        let mut m = ModelFaults::new(6, 0.0, 0.4, 1.0);
        let mut timeouts = 0usize;
        for i in 0..200 {
            let served = m.serve(i as f64);
            if served == Served::Timeout {
                timeouts += 1;
                assert_eq!(served.value_or(99.0), 99.0);
            }
        }
        assert!(
            timeouts > 20,
            "40% timeout rate should fire often: {timeouts}"
        );
    }

    #[test]
    fn poisoning_is_exact_bias() {
        let m = ModelFaults::new(7, 0.0, 0.0, 2.5);
        assert_eq!(m.poisoned(4.0), 10.0);
        assert_eq!(m.poison_factor(), 2.5);
    }
}
