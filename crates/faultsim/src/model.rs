//! Model-serving faults: staleness, timeouts, poisoning.
//!
//! Wraps any learned predictor's scalar output (the cost ensemble, stage
//! predictors, behaviour models) with the serving-path failures the
//! guardrail layer must absorb: answers from a previous input (stale
//! cache), no answer at all (timeout — the caller must fall back to a
//! default), and a systematically biased ("poisoned") model that
//! [`GuardrailSet::check`](adas_core::guardrails::GuardrailSet::check) is
//! expected to block at deployment time.

use crate::seed::{channel_rng, Channel};
use rand::rngs::StdRng;
use rand::Rng;
use serde::Serialize;

/// One served prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Served {
    /// The model answered with the current input's prediction.
    Fresh(f64),
    /// The serving cache returned the *previous* input's prediction.
    Stale(f64),
    /// The serving call timed out; the caller must degrade gracefully
    /// (default cost, last known good, …) rather than fail.
    Timeout,
}

impl Served {
    /// The served value, or `fallback` on timeout — the graceful
    /// degradation path callers are expected to take.
    pub fn value_or(self, fallback: f64) -> f64 {
        match self {
            Served::Fresh(v) | Served::Stale(v) => v,
            Served::Timeout => fallback,
        }
    }
}

/// How a poisoned model's bias evolves over successive calls.
///
/// Real poisonings rarely look like a constant multiplier: a bad retrain
/// drifts in gradually (training-set contamination accumulating), and a
/// flaky artifact alternates between looking healthy and misbehaving — the
/// exact pattern canary hysteresis exists to catch. All profiles are pure
/// functions of the call counter, so same-seed replays see the same bias
/// sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum PoisonProfile {
    /// The classic constant multiplicative bias (the historical behavior of
    /// [`ModelFaults::poisoned`]).
    Constant,
    /// Slow poison: the bias ramps linearly from none (factor 1) to the
    /// full `poison_factor` over `ramp_calls` calls, then holds.
    Slow {
        /// Calls over which the bias ramps to full strength. Minimum 1.
        ramp_calls: u64,
    },
    /// Flappy model: alternates windows of `period_calls` healthy calls
    /// (factor 1) with windows of fully poisoned calls. Starts healthy — a
    /// flapping model's most deceptive opening.
    Flappy {
        /// Length of each healthy/poisoned window, in calls. Minimum 1.
        period_calls: u64,
    },
}

/// Seeded serving-fault source for scalar predictions.
#[derive(Debug, Clone)]
pub struct ModelFaults {
    rng: StdRng,
    staleness: f64,
    timeout_rate: f64,
    poison_factor: f64,
    profile: PoisonProfile,
    poison_calls: u64,
    last: Option<f64>,
}

impl ModelFaults {
    /// Creates a fault source. `staleness` and `timeout_rate` are per-call
    /// probabilities; `poison_factor` is the multiplicative bias
    /// [`ModelFaults::poisoned`] applies.
    pub fn new(seed: u64, staleness: f64, timeout_rate: f64, poison_factor: f64) -> Self {
        Self::with_profile(
            seed,
            staleness,
            timeout_rate,
            poison_factor,
            PoisonProfile::Constant,
        )
    }

    /// Creates a fault source whose poison bias follows `profile` instead
    /// of the constant default.
    pub fn with_profile(
        seed: u64,
        staleness: f64,
        timeout_rate: f64,
        poison_factor: f64,
        profile: PoisonProfile,
    ) -> Self {
        Self {
            rng: channel_rng(seed, Channel::Model),
            staleness,
            timeout_rate,
            poison_factor,
            profile,
            poison_calls: 0,
            last: None,
        }
    }

    /// Serves one prediction, possibly degraded. The first call can never
    /// be stale (there is no previous answer to return).
    pub fn serve(&mut self, clean: f64) -> Served {
        if self.timeout_rate > 0.0 && self.rng.gen_bool(self.timeout_rate) {
            // A timed-out call still advances `last`: the model *computed*
            // the answer, the caller just never received it.
            self.last = Some(clean);
            return Served::Timeout;
        }
        let served = match self.last {
            Some(prev) if self.staleness > 0.0 && self.rng.gen_bool(self.staleness) => {
                Served::Stale(prev)
            }
            _ => Served::Fresh(clean),
        };
        self.last = Some(clean);
        served
    }

    /// A poisoned model's answer: the clean prediction under systematic
    /// multiplicative bias. Deterministic (no RNG draw) so guardrail tests
    /// can reason about it exactly. Ignores the profile's call counter —
    /// use [`ModelFaults::apply_poison`] for evolving profiles.
    pub fn poisoned(&self, clean: f64) -> f64 {
        clean * self.poison_factor
    }

    /// A poisoned model's answer under the configured [`PoisonProfile`],
    /// advancing the profile's call counter. Deterministic: the bias is a
    /// pure function of the counter, with no RNG draw, so the serving path
    /// stays byte-identical across same-seed replays.
    pub fn apply_poison(&mut self, clean: f64) -> f64 {
        let calls = self.poison_calls;
        self.poison_calls += 1;
        let factor = match self.profile {
            PoisonProfile::Constant => self.poison_factor,
            PoisonProfile::Slow { ramp_calls } => {
                let ramp = ramp_calls.max(1);
                let progress = ((calls + 1).min(ramp)) as f64 / ramp as f64;
                1.0 + (self.poison_factor - 1.0) * progress
            }
            PoisonProfile::Flappy { period_calls } => {
                let period = period_calls.max(1);
                if (calls / period) % 2 == 1 {
                    self.poison_factor
                } else {
                    1.0
                }
            }
        };
        clean * factor
    }

    /// The configured poison bias.
    pub fn poison_factor(&self) -> f64 {
        self.poison_factor
    }

    /// The configured poison profile.
    pub fn poison_profile(&self) -> PoisonProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_is_deterministic_per_seed() {
        let mut a = ModelFaults::new(3, 0.3, 0.1, 2.0);
        let mut b = ModelFaults::new(3, 0.3, 0.1, 2.0);
        for i in 0..200 {
            let x = i as f64;
            assert_eq!(a.serve(x), b.serve(x));
        }
    }

    #[test]
    fn no_faults_means_always_fresh() {
        let mut m = ModelFaults::new(4, 0.0, 0.0, 1.0);
        for i in 0..50 {
            assert_eq!(m.serve(i as f64), Served::Fresh(i as f64));
        }
    }

    #[test]
    fn stale_answers_repeat_previous_input() {
        let mut m = ModelFaults::new(5, 0.5, 0.0, 1.0);
        let mut prev = None;
        let mut stale_seen = false;
        for i in 0..200 {
            let x = i as f64;
            match m.serve(x) {
                Served::Fresh(v) => assert_eq!(v, x),
                Served::Stale(v) => {
                    stale_seen = true;
                    assert_eq!(Some(v), prev, "stale answer must be the previous input's");
                }
                Served::Timeout => unreachable!("timeout_rate is 0"),
            }
            prev = Some(x);
        }
        assert!(stale_seen);
    }

    #[test]
    fn timeouts_fall_back_gracefully() {
        let mut m = ModelFaults::new(6, 0.0, 0.4, 1.0);
        let mut timeouts = 0usize;
        for i in 0..200 {
            let served = m.serve(i as f64);
            if served == Served::Timeout {
                timeouts += 1;
                assert_eq!(served.value_or(99.0), 99.0);
            }
        }
        assert!(
            timeouts > 20,
            "40% timeout rate should fire often: {timeouts}"
        );
    }

    #[test]
    fn poisoning_is_exact_bias() {
        let m = ModelFaults::new(7, 0.0, 0.0, 2.5);
        assert_eq!(m.poisoned(4.0), 10.0);
        assert_eq!(m.poison_factor(), 2.5);
        assert_eq!(m.poison_profile(), PoisonProfile::Constant);
    }

    #[test]
    fn constant_profile_matches_legacy_poisoned() {
        let mut m = ModelFaults::new(7, 0.0, 0.0, 2.5);
        for i in 0..10 {
            let clean = 1.0 + i as f64;
            assert_eq!(m.apply_poison(clean), m.poisoned(clean));
        }
    }

    #[test]
    fn slow_poison_ramps_linearly_then_holds() {
        let mut m =
            ModelFaults::with_profile(7, 0.0, 0.0, 3.0, PoisonProfile::Slow { ramp_calls: 4 });
        // Factors: 1.5, 2.0, 2.5, 3.0, then 3.0 forever.
        let factors: Vec<f64> = (0..6).map(|_| m.apply_poison(1.0)).collect();
        assert_eq!(factors, vec![1.5, 2.0, 2.5, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn flappy_poison_alternates_windows_starting_healthy() {
        let mut m =
            ModelFaults::with_profile(7, 0.0, 0.0, 4.0, PoisonProfile::Flappy { period_calls: 3 });
        let factors: Vec<f64> = (0..12).map(|_| m.apply_poison(1.0)).collect();
        assert_eq!(
            factors,
            vec![1.0, 1.0, 1.0, 4.0, 4.0, 4.0, 1.0, 1.0, 1.0, 4.0, 4.0, 4.0]
        );
    }

    #[test]
    fn profiles_draw_no_rng_and_leave_serving_unchanged() {
        // Interleaving apply_poison must not perturb the serve() stream.
        let mut plain = ModelFaults::new(3, 0.3, 0.1, 2.0);
        let mut mixed =
            ModelFaults::with_profile(3, 0.3, 0.1, 2.0, PoisonProfile::Slow { ramp_calls: 8 });
        for i in 0..200 {
            let x = i as f64;
            mixed.apply_poison(x);
            assert_eq!(plain.serve(x), mixed.serve(x));
        }
    }
}
