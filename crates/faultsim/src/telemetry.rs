//! Telemetry perturbation: counter dropouts and outlier bursts.
//!
//! Operates on [`MachineTelemetry`](adas_infra::machine::MachineTelemetry)
//! streams *before* they reach the store, mimicking the collection-layer
//! failures the paper's Direction 2 models must tolerate: agents that skip
//! reporting intervals and counters that go wild for a stretch of hours.
//! Per-machine timestamp order is preserved (dropping and scaling never
//! reorder), so the perturbed stream still satisfies the telemetry store's
//! append-ordering contract.

use crate::seed::{channel_rng, derive, Channel};
use adas_infra::machine::MachineTelemetry;
use rand::Rng;
use serde::Serialize;

/// What happened to the stream, for assertions and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct TelemetryPerturbation {
    /// Samples dropped entirely.
    pub dropped: usize,
    /// Samples whose `task_seconds` was scaled by the outlier magnitude.
    pub corrupted: usize,
    /// Samples passed through untouched.
    pub clean: usize,
}

/// Seeded dropout/outlier source over machine telemetry.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryFaults {
    /// Per-sample drop probability.
    pub dropout: f64,
    /// Per-sample probability an outlier burst starts.
    pub burst_rate: f64,
    /// Samples corrupted by one burst.
    pub burst_len: usize,
    /// Multiplier applied to `task_seconds` inside a burst.
    pub magnitude: f64,
    /// Master seed; the telemetry channel stream derives from it.
    pub seed: u64,
}

impl TelemetryFaults {
    /// Perturbs a telemetry stream. Pure in `(self, samples)`: the same
    /// faults hit the same samples every time. `epoch` separates repeated
    /// perturbations under one master seed (e.g. successive days).
    pub fn perturb(
        &self,
        samples: &[MachineTelemetry],
        epoch: u64,
    ) -> (Vec<MachineTelemetry>, TelemetryPerturbation) {
        if self.dropout <= 0.0 && self.burst_rate <= 0.0 {
            return (
                samples.to_vec(),
                TelemetryPerturbation {
                    clean: samples.len(),
                    ..Default::default()
                },
            );
        }
        let mut rng = channel_rng(derive(self.seed, epoch), Channel::Telemetry);
        let mut out = Vec::with_capacity(samples.len());
        let mut stats = TelemetryPerturbation::default();
        let mut burst_left = 0usize;
        for sample in samples {
            if rng.gen_bool(self.dropout) {
                stats.dropped += 1;
                continue;
            }
            if burst_left == 0 && rng.gen_bool(self.burst_rate) {
                burst_left = self.burst_len;
            }
            if burst_left > 0 {
                burst_left -= 1;
                stats.corrupted += 1;
                let mut corrupted = *sample;
                corrupted.task_seconds *= self.magnitude.max(0.0);
                out.push(corrupted);
            } else {
                stats.clean += 1;
                out.push(*sample);
            }
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_infra::machine::{MachineFleet, SkuSpec};

    fn faults() -> TelemetryFaults {
        TelemetryFaults {
            dropout: 0.1,
            burst_rate: 0.02,
            burst_len: 3,
            magnitude: 10.0,
            seed: 7,
        }
    }

    fn stream() -> Vec<MachineTelemetry> {
        MachineFleet::new(SkuSpec::standard_fleet(), 4).generate_telemetry(48, 0.05, 1)
    }

    #[test]
    fn perturbation_is_deterministic() {
        let s = stream();
        let f = faults();
        assert_eq!(f.perturb(&s, 0), f.perturb(&s, 0));
        let (a, _) = f.perturb(&s, 0);
        let (b, _) = f.perturb(&s, 1);
        assert_ne!(a, b, "epochs draw different fault positions");
    }

    #[test]
    fn per_machine_hour_order_is_preserved() {
        let s = stream();
        let (out, stats) = faults().perturb(&s, 0);
        assert!(stats.dropped > 0);
        assert!(stats.corrupted > 0);
        let machines: std::collections::HashSet<usize> = out.iter().map(|t| t.machine).collect();
        for m in machines {
            let hours: Vec<u64> = out
                .iter()
                .filter(|t| t.machine == m)
                .map(|t| t.hour)
                .collect();
            assert!(
                hours.windows(2).all(|w| w[0] < w[1]),
                "machine {m} out of order"
            );
        }
    }

    #[test]
    fn zero_rates_pass_through_unchanged() {
        let s = stream();
        let f = TelemetryFaults {
            dropout: 0.0,
            burst_rate: 0.0,
            ..faults()
        };
        let (out, stats) = f.perturb(&s, 0);
        assert_eq!(out, s);
        assert_eq!(stats.clean, s.len());
        assert_eq!(stats.dropped + stats.corrupted, 0);
    }

    #[test]
    fn outliers_scale_task_seconds_only() {
        let s = stream();
        let f = TelemetryFaults {
            dropout: 0.0,
            burst_rate: 0.05,
            ..faults()
        };
        let (out, stats) = f.perturb(&s, 0);
        assert_eq!(out.len(), s.len());
        let mut corrupted_seen = 0usize;
        for (orig, got) in s.iter().zip(&out) {
            assert_eq!(orig.cpu, got.cpu);
            assert_eq!(orig.containers, got.containers);
            if (got.task_seconds - orig.task_seconds).abs() > 1e-12 {
                corrupted_seen += 1;
                assert!((got.task_seconds - orig.task_seconds * 10.0).abs() < 1e-9);
            }
        }
        assert_eq!(corrupted_seen, stats.corrupted);
    }
}
