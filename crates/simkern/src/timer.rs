//! Standalone deterministic timers.
//!
//! Some layers advance simulated time without running a full event loop:
//! the serving gateway, for example, is driven by request arrival and only
//! needs "fire every batch-flush deadline that has passed by now". A
//! [`TimerWheel`] is the kernel's answer: a `(key, seq)` heap with lazy
//! cancellation whose pop order matches the event queue's determinism
//! rules, but whose notion of "due" is delegated to the caller — so a
//! legacy comparison like `now - opened >= deadline` can be preserved
//! bit-for-bit while the *mechanism* (who tracks the pending set, and in
//! what order it drains) moves onto the kernel.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled timer, usable to [`TimerWheel::cancel`] it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

struct TimerEntry<P> {
    key: f64,
    seq: u64,
    payload: P,
}

impl<P> PartialEq for TimerEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<P> Eq for TimerEntry<P> {}
impl<P> Ord for TimerEntry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (key, seq): reverse both sides.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<P> PartialOrd for TimerEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic timer heap keyed `(key, seq)`.
///
/// `key` is typically the tick a deadline was armed at (or the absolute
/// fire time — the wheel does not care, only the *due* predicate does).
/// [`TimerWheel::pop_due`] pops the minimum entry while the caller's
/// predicate holds; because any sane due-predicate is monotone in the key
/// (if a later-armed timer is due, every earlier-armed one is too),
/// min-first popping never misses a due timer.
pub struct TimerWheel<P> {
    heap: BinaryHeap<TimerEntry<P>>,
    cancelled: Vec<bool>,
    live: usize,
}

impl<P> TimerWheel<P> {
    /// An empty wheel.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            cancelled: Vec::new(),
            live: 0,
        }
    }

    /// Schedules a timer with `key` and `payload`. Keys must be finite.
    pub fn schedule(&mut self, key: f64, payload: P) -> TimerId {
        assert!(key.is_finite(), "timer key must be finite, got {key}");
        let seq = self.cancelled.len() as u64;
        self.cancelled.push(false);
        self.heap.push(TimerEntry { key, seq, payload });
        self.live += 1;
        TimerId(seq)
    }

    /// Cancels a pending timer; `true` iff it had not popped yet.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        match self.cancelled.get_mut(id.0 as usize) {
            Some(flag @ false) => {
                *flag = true;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Pops the minimum `(key, seq)` timer if `due(key)` holds, skipping
    /// cancelled entries. Call in a loop to drain everything due.
    pub fn pop_due(&mut self, due: impl Fn(f64) -> bool) -> Option<(f64, P)> {
        loop {
            let top = self.heap.peek()?;
            if self.cancelled[top.seq as usize] {
                self.heap.pop();
                continue;
            }
            if !due(top.key) {
                return None;
            }
            let entry = self.heap.pop().expect("peeked");
            self.cancelled[entry.seq as usize] = true;
            self.live -= 1;
            return Some((entry.key, entry.payload));
        }
    }

    /// Drains every remaining live timer in `(key, seq)` order.
    pub fn drain(&mut self) -> Vec<(f64, P)> {
        let mut out = Vec::with_capacity(self.live);
        while let Some(entry) = self.pop_due(|_| true) {
            out.push(entry);
        }
        out
    }

    /// Live (pending) timer count.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live timers remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

impl<P> Default for TimerWheel<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_due_timers_min_first() {
        let mut w = TimerWheel::new();
        w.schedule(3.0, "c");
        w.schedule(1.0, "a");
        w.schedule(2.0, "b");
        let mut fired = Vec::new();
        while let Some((_, p)) = w.pop_due(|k| k <= 2.0) {
            fired.push(p);
        }
        assert_eq!(fired, vec!["a", "b"]);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn equal_keys_pop_in_schedule_order() {
        let mut w = TimerWheel::new();
        w.schedule(1.0, "first");
        w.schedule(1.0, "second");
        assert_eq!(w.pop_due(|_| true).unwrap().1, "first");
        assert_eq!(w.pop_due(|_| true).unwrap().1, "second");
    }

    #[test]
    fn cancelled_timers_never_pop() {
        let mut w = TimerWheel::new();
        let a = w.schedule(1.0, "a");
        w.schedule(2.0, "b");
        assert!(w.cancel(a));
        assert!(!w.cancel(a));
        assert_eq!(w.pop_due(|_| true).unwrap().1, "b");
        assert!(w.pop_due(|_| true).is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn legacy_deadline_predicate_is_preserved() {
        // The gateway's flush condition `now - opened >= deadline` must be
        // expressible verbatim through the predicate.
        let mut w = TimerWheel::new();
        w.schedule(10.0, "g0"); // opened at tick 10
        w.schedule(12.0, "g1"); // opened at tick 12
        let deadline = 5.0;
        let now = 15.5;
        let mut fired = Vec::new();
        while let Some((_, p)) = w.pop_due(|opened| now - opened >= deadline) {
            fired.push(p);
        }
        assert_eq!(fired, vec!["g0"]);
    }

    #[test]
    fn drain_returns_key_order() {
        let mut w = TimerWheel::new();
        w.schedule(2.0, 2);
        w.schedule(1.0, 1);
        let drained: Vec<i32> = w.drain().into_iter().map(|(_, p)| p).collect();
        assert_eq!(drained, vec![1, 2]);
        assert!(w.is_empty());
    }
}
