//! Shared tumbling-window and cooldown arithmetic.
//!
//! Before this module the serving autonomy controller and the watchtower
//! SLO engine each carried their own copy of "which window does tick `t`
//! land in, and how many windows are complete" — a duplication that made
//! boundary behaviour (an event exactly on a window edge) easy to get
//! subtly wrong in one place but not the other. [`Window`] is the single
//! time-anchored tumbling window; [`CountWindow`] is its count-triggered
//! sibling (the autonomy controller's candidate-quality windows);
//! [`Cooldown`] is the "no action before tick T" latch both layers use.

/// Tumbling windows of fixed width, anchored at time zero: window `i`
/// covers `[i*w, (i+1)*w)`. An event exactly on an edge lands in the
/// *later* window — each instant belongs to exactly one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    width: f64,
}

impl Window {
    /// A tumbling window of `width` ticks.
    pub fn new(width: f64) -> Self {
        Self { width }
    }

    /// The configured width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Whether the width defines usable windows (positive and not NaN).
    pub fn is_valid(&self) -> bool {
        self.width > 0.0
    }

    /// Index of the window containing tick `t` (negative ticks clamp to
    /// window 0). Requires a valid width.
    #[inline]
    pub fn index_of(&self, t: f64) -> u64 {
        (t.max(0.0) / self.width) as u64
    }

    /// Start tick of window `idx`.
    #[inline]
    pub fn start(&self, idx: u64) -> f64 {
        idx as f64 * self.width
    }

    /// End tick of window `idx` (exclusive; the start of window `idx+1`).
    #[inline]
    pub fn end(&self, idx: u64) -> f64 {
        (idx + 1) as f64 * self.width
    }

    /// Number of *complete* windows once the clock reached `max_time`: the
    /// windows whose end the clock has passed. A clock sitting exactly on
    /// an edge `k*w` has completed exactly `k` windows. Returns 0 for an
    /// invalid width.
    #[inline]
    pub fn complete_before(&self, max_time: f64) -> u64 {
        if self.width > 0.0 {
            (max_time / self.width) as u64
        } else {
            0
        }
    }
}

/// A count-triggered tumbling window: accumulate samples, evaluate when at
/// least `min_len` arrived, drain and start the next window. This is the
/// autonomy controller's candidate-quality window shape.
#[derive(Debug, Clone, Default)]
pub struct CountWindow {
    samples: Vec<f64>,
}

impl CountWindow {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample to the current window.
    pub fn push(&mut self, sample: f64) {
        self.samples.push(sample);
    }

    /// Samples in the current (incomplete) window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the current window is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Whether the window holds at least `min_len` samples (`min_len` is
    /// floored at 1, matching every caller's `max(1)` guard).
    pub fn is_full(&self, min_len: usize) -> bool {
        self.samples.len() >= min_len.max(1)
    }

    /// Drains the window, returning the mean of its samples; `None` when
    /// empty. The next window starts empty.
    pub fn drain_mean(&mut self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        self.samples.clear();
        Some(mean)
    }

    /// Discards the current window's samples.
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

/// A "no action before tick T" latch: arm it with a duration, query it
/// with the current tick. Used for retrain cooldowns, restage backoff and
/// post-SLO-action quiet periods.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cooldown {
    until: f64,
}

impl Cooldown {
    /// A cooldown that is immediately ready.
    pub fn ready_now() -> Self {
        Self { until: 0.0 }
    }

    /// Whether the cooldown has elapsed at tick `now`. Ready exactly at
    /// the armed tick (`now == until` is ready), matching the strict
    /// `now < until` blocking checks this replaces. The negated form is
    /// kept (rather than `now >= until`) so a NaN tick reads as ready,
    /// exactly as it fell through the legacy blocking branches.
    #[inline]
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn ready(&self, now: f64) -> bool {
        !(now < self.until)
    }

    /// Blocks actions until `now + duration`.
    pub fn arm(&mut self, now: f64, duration: f64) {
        self.until = now + duration;
    }

    /// The tick the cooldown expires at.
    pub fn until(&self) -> f64 {
        self.until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_tick_lands_in_exactly_one_window() {
        let w = Window::new(10.0);
        // An event exactly on the edge k*w belongs to window k, and only k.
        for k in 0..20u64 {
            let edge = k as f64 * 10.0;
            assert_eq!(w.index_of(edge), k, "edge {edge} must open window {k}");
            if k > 0 {
                // Just inside the previous window.
                assert_eq!(w.index_of(edge - 1e-9), k - 1);
            }
        }
    }

    #[test]
    fn clock_on_edge_completes_exactly_k_windows() {
        let w = Window::new(8.0);
        assert_eq!(w.complete_before(0.0), 0);
        assert_eq!(w.complete_before(7.999_999), 0);
        assert_eq!(w.complete_before(8.0), 1, "edge completes the window");
        assert_eq!(w.complete_before(16.0), 2);
        assert_eq!(w.complete_before(23.9), 2);
    }

    #[test]
    fn window_bounds_round_trip() {
        let w = Window::new(5.0);
        for idx in 0..10u64 {
            assert_eq!(w.index_of(w.start(idx)), idx);
            assert_eq!(w.end(idx), w.start(idx + 1));
        }
    }

    #[test]
    fn negative_ticks_clamp_to_window_zero() {
        let w = Window::new(4.0);
        assert_eq!(w.index_of(-3.0), 0);
    }

    #[test]
    fn invalid_widths_define_no_windows() {
        assert!(!Window::new(0.0).is_valid());
        assert!(!Window::new(-1.0).is_valid());
        assert!(!Window::new(f64::NAN).is_valid());
        assert_eq!(Window::new(0.0).complete_before(100.0), 0);
        assert_eq!(Window::new(f64::NAN).complete_before(100.0), 0);
    }

    #[test]
    fn count_window_drains_mean_and_resets() {
        let mut w = CountWindow::new();
        assert!(!w.is_full(3));
        w.push(1.0);
        w.push(2.0);
        w.push(6.0);
        assert!(w.is_full(3));
        assert_eq!(w.drain_mean(), Some(3.0));
        assert!(w.is_empty());
        assert_eq!(w.drain_mean(), None);
    }

    #[test]
    fn count_window_min_len_floors_at_one() {
        let mut w = CountWindow::new();
        w.push(5.0);
        assert!(w.is_full(0), "min_len 0 behaves as 1");
    }

    #[test]
    fn cooldown_is_ready_exactly_on_expiry() {
        let mut c = Cooldown::ready_now();
        assert!(c.ready(0.0));
        c.arm(10.0, 5.0);
        assert!(!c.ready(14.999));
        assert!(c.ready(15.0), "ready exactly at the armed tick");
        assert_eq!(c.until(), 15.0);
    }

    #[test]
    fn nan_now_never_blocks() {
        // `!(now < until)` keeps the legacy semantics: a NaN clock compares
        // false and therefore reads as ready, exactly like the `now <
        // allowed_at` checks this replaces.
        let mut c = Cooldown::ready_now();
        c.arm(0.0, 10.0);
        assert!(c.ready(f64::NAN));
    }
}
