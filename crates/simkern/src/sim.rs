//! The simulation driver: components, contexts, and the event loop.
//!
//! Modeled on the dslab `Simulation` split: components register with the
//! simulation and receive events through [`Component::on_event`]; the
//! context handed to a handler lets it read the clock, emit future events,
//! cancel pending ones, and draw from seeded per-salt RNG streams. The
//! driver pops events in `(time, seq)` order, advances the clock to each
//! event's fire time, and dispatches — nothing else ever moves time.

use std::cell::RefCell;
use std::rc::Rc;

use crate::clock::SimClock;
use crate::queue::{EventId, EventQueue};
use crate::rng::{RngRegistry, SplitMix64};

/// Identifies a registered component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(pub usize);

/// A simulation component: receives the events addressed to it.
pub trait Component<E> {
    /// Handles one event fired at the current simulated time. `ctx` gives
    /// the clock, event emission/cancellation, and seeded randomness.
    fn on_event(&mut self, event: &E, ctx: &mut Ctx<'_, E>);
}

/// The handler-side view of the kernel.
pub struct Ctx<'a, E> {
    now: f64,
    self_id: ComponentId,
    queue: &'a mut EventQueue<E>,
    rng: &'a mut RngRegistry,
}

impl<E> Ctx<'_, E> {
    /// Current simulated time.
    #[inline]
    pub fn time(&self) -> f64 {
        self.now
    }

    /// The component this event was dispatched to.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Emits `event` to `dst` after `delay` simulated seconds. Negative or
    /// NaN delays are a bug (debug assert); release builds clamp to zero so
    /// the clock stays monotone.
    pub fn emit(&mut self, event: E, dst: ComponentId, delay: f64) -> EventId {
        debug_assert!(delay >= 0.0, "emit delay must be non-negative, got {delay}");
        let delay = if delay > 0.0 { delay } else { 0.0 };
        self.queue.push(self.now + delay, dst, event)
    }

    /// Emits `event` to `dst` at the current instant (after all events
    /// already scheduled for this instant).
    pub fn emit_now(&mut self, event: E, dst: ComponentId) -> EventId {
        self.queue.push(self.now, dst, event)
    }

    /// Emits `event` to this component after `delay`.
    pub fn emit_self(&mut self, event: E, delay: f64) -> EventId {
        let dst = self.self_id;
        self.emit(event, dst, delay)
    }

    /// Emits `event` to `dst` at the absolute instant `time` (clamped to
    /// the current instant so the clock stays monotone). Prefer this over
    /// [`Ctx::emit`] when the fire time is already known as an absolute
    /// f64: `now + (t - now)` does not round-trip exactly in floating
    /// point, and a wake that lands one ulp away from the instant it
    /// guards can miss it entirely.
    pub fn emit_at(&mut self, event: E, dst: ComponentId, time: f64) -> EventId {
        debug_assert!(!time.is_nan(), "emit_at time must not be NaN");
        self.queue.push(time.max(self.now), dst, event)
    }

    /// Emits `event` to this component at the absolute instant `time`.
    pub fn emit_self_at(&mut self, event: E, time: f64) -> EventId {
        let dst = self.self_id;
        self.emit_at(event, dst, time)
    }

    /// Cancels a pending event. `true` iff it had not fired yet.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// The seeded stream for `salt` (see [`RngRegistry::stream`]).
    pub fn rng(&mut self, salt: u64) -> &mut SplitMix64 {
        self.rng.stream(salt)
    }
}

/// The discrete-event simulation: one clock, one queue, the registered
/// components, and the seeded RNG registry.
pub struct Simulation<E> {
    clock: SimClock,
    queue: EventQueue<E>,
    components: Vec<Rc<RefCell<dyn Component<E>>>>,
    rng: RngRegistry,
    processed: u64,
}

impl<E> Simulation<E> {
    /// A simulation at time zero, with all randomness derived from
    /// `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Self {
            clock: SimClock::new(),
            queue: EventQueue::new(),
            components: Vec::new(),
            rng: RngRegistry::new(master_seed),
            processed: 0,
        }
    }

    /// Registers `component` and returns its id. The caller usually keeps
    /// its own `Rc` to read results out after the run.
    pub fn add_component(&mut self, component: Rc<RefCell<dyn Component<E>>>) -> ComponentId {
        self.components.push(component);
        ComponentId(self.components.len() - 1)
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Schedules `event` for `dst` after `delay` seconds (driver-side
    /// injection, e.g. initial arrivals).
    pub fn schedule(&mut self, delay: f64, dst: ComponentId, event: E) -> EventId {
        debug_assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        let delay = if delay > 0.0 { delay } else { 0.0 };
        self.queue.push(self.clock.now() + delay, dst, event)
    }

    /// Schedules `event` for `dst` at absolute time `time` (clamped to the
    /// current clock so time never runs backwards).
    pub fn schedule_at(&mut self, time: f64, dst: ComponentId, event: E) -> EventId {
        self.queue.push(time.max(self.clock.now()), dst, event)
    }

    /// Cancels a pending event. `true` iff it had not fired yet.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Live (pending) event count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The seeded stream for `salt`.
    pub fn rng(&mut self, salt: u64) -> &mut SplitMix64 {
        self.rng.stream(salt)
    }

    /// Fire time of the next pending event.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.queue.peek_time()
    }

    /// Dispatches the next event: advances the clock to its fire time and
    /// calls the destination component's handler. Returns `false` when no
    /// events remain.
    pub fn step(&mut self) -> bool {
        let Some(scheduled) = self.queue.pop() else {
            return false;
        };
        self.clock.advance_to(scheduled.time);
        self.processed += 1;
        let component = Rc::clone(
            self.components
                .get(scheduled.dst.0)
                .expect("event addressed to unregistered component"),
        );
        let mut ctx = Ctx {
            now: self.clock.now(),
            self_id: scheduled.dst,
            queue: &mut self.queue,
            rng: &mut self.rng,
        };
        component.borrow_mut().on_event(&scheduled.event, &mut ctx);
        true
    }

    /// Runs until no events remain; returns the number dispatched.
    pub fn run(&mut self) -> u64 {
        let before = self.processed;
        while self.step() {}
        self.processed - before
    }

    /// Dispatches every event with fire time `<= t`, then advances the
    /// clock to `t`. Returns the number dispatched. `t` earlier than the
    /// clock is a no-op (the clock never moves backwards).
    pub fn run_until(&mut self, t: f64) -> u64 {
        let before = self.processed;
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if t > self.clock.now() {
            self.clock.advance_to(t);
        }
        self.processed - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes each received tick into `log` and chains the next one.
    struct Ticker {
        log: Vec<f64>,
        remaining: u32,
    }

    impl Component<u32> for Ticker {
        fn on_event(&mut self, _event: &u32, ctx: &mut Ctx<'_, u32>) {
            self.log.push(ctx.time());
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.emit_self(0, 1.5);
            }
        }
    }

    #[test]
    fn chained_timers_advance_the_clock() {
        let mut sim = Simulation::new(0);
        let ticker = Rc::new(RefCell::new(Ticker {
            log: Vec::new(),
            remaining: 3,
        }));
        let id = sim.add_component(ticker.clone());
        sim.schedule(0.0, id, 0);
        let n = sim.run();
        assert_eq!(n, 4);
        assert_eq!(ticker.borrow().log, vec![0.0, 1.5, 3.0, 4.5]);
        assert_eq!(sim.now(), 4.5);
    }

    #[test]
    fn run_until_stops_at_the_horizon() {
        let mut sim = Simulation::new(0);
        let ticker = Rc::new(RefCell::new(Ticker {
            log: Vec::new(),
            remaining: 10,
        }));
        let id = sim.add_component(ticker.clone());
        sim.schedule(0.0, id, 0);
        sim.run_until(3.0);
        assert_eq!(ticker.borrow().log, vec![0.0, 1.5, 3.0]);
        assert_eq!(sim.now(), 3.0);
        assert!(sim.pending() > 0, "later ticks stay queued");
    }

    #[test]
    fn cancelled_event_never_dispatches() {
        let mut sim = Simulation::new(0);
        let ticker = Rc::new(RefCell::new(Ticker {
            log: Vec::new(),
            remaining: 0,
        }));
        let id = sim.add_component(ticker.clone());
        let ev = sim.schedule(1.0, id, 0);
        sim.schedule(2.0, id, 0);
        assert!(sim.cancel(ev));
        sim.run();
        assert_eq!(ticker.borrow().log, vec![2.0]);
    }

    #[test]
    fn seeded_rng_replays() {
        let mut a = Simulation::<u32>::new(77);
        let mut b = Simulation::<u32>::new(77);
        let xa: Vec<u64> = (0..4).map(|_| a.rng(5).next_u64()).collect();
        let xb: Vec<u64> = (0..4).map(|_| b.rng(5).next_u64()).collect();
        assert_eq!(xa, xb);
    }
}
