//! Seeded randomness: SplitMix64 seed derivation and per-salt streams.
//!
//! The derivation scheme is shared with `faultsim`'s per-channel RNGs (the
//! constants here are the canonical copy; `faultsim::seed` delegates to
//! them). Deriving a sub-seed mixes the master seed and a salt through the
//! SplitMix64 finalizer, so streams are statistically independent *and*
//! insensitive to how many draws the other streams make — the property
//! behind every same-seed ⇒ byte-identical-replay assertion in the repo.

use std::collections::HashMap;

/// SplitMix64 finalizer: one full avalanche step over `x`.
#[inline]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives a sub-seed from a master seed and an index (channel salt, job
/// number, epoch, …). `derive(s, a) == derive(s, a)` always; collisions
/// across distinct `(seed, index)` pairs are as unlikely as SplitMix64
/// allows. Byte-compatible with `faultsim::seed::derive`.
pub fn derive(master: u64, index: u64) -> u64 {
    mix(mix(master) ^ mix(index.wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// A SplitMix64 pseudo-random stream. Small, fast, and plenty for
/// simulation draws; layers that need a cryptographically stronger
/// generator (faultsim's `StdRng` channels) seed it from [`derive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`. `hi` must exceed `lo`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi > lo, "empty range [{lo}, {hi})");
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform draw in `0..n` (`n` must be nonzero). Uses the widening-
    /// multiply trick; the tiny modulo bias is irrelevant for simulation.
    #[inline]
    pub fn range_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A registry of independent per-salt streams over one master seed,
/// mirroring `faultsim`'s channel scheme: stream `salt` is seeded with
/// [`derive`]`(master, salt)` on first use and persists across calls.
#[derive(Debug, Clone)]
pub struct RngRegistry {
    master: u64,
    streams: HashMap<u64, SplitMix64>,
}

impl RngRegistry {
    /// A registry over `master`.
    pub fn new(master: u64) -> Self {
        Self {
            master,
            streams: HashMap::new(),
        }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The stream for `salt`, created on first use.
    pub fn stream(&mut self, salt: u64) -> &mut SplitMix64 {
        let master = self.master;
        self.streams
            .entry(salt)
            .or_insert_with(|| SplitMix64::new(derive(master, salt)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_stable_and_spreads() {
        assert_eq!(derive(7, 3), derive(7, 3));
        let seeds: Vec<u64> = (0..64).map(|i| derive(7, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "no collisions over small indices");
    }

    #[test]
    fn streams_are_independent_and_replayable() {
        let mut reg = RngRegistry::new(1);
        let a: Vec<u64> = (0..8).map(|_| reg.stream(10).next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| reg.stream(20).next_u64()).collect();
        assert_ne!(a, b);
        // Interleaved draws on another stream do not perturb a replay.
        let mut reg2 = RngRegistry::new(1);
        let a2: Vec<u64> = (0..8)
            .map(|_| {
                reg2.stream(20).next_u64();
                reg2.stream(10).next_u64()
            })
            .collect();
        assert_eq!(a, a2);
    }

    #[test]
    fn f64_draws_land_in_unit_interval() {
        let mut s = SplitMix64::new(42);
        for _ in 0..1000 {
            let x = s.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_u64_is_bounded() {
        let mut s = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(s.range_u64(13) < 13);
        }
    }
}
