//! The simulated clock: monotone `f64` seconds.

use std::cmp::Ordering;

/// A totally ordered simulated-time value, for use as a heap key (e.g.
/// `BinaryHeap<Reverse<(OrderedTick, slot)>>`). Construction asserts the
/// tick is finite in debug builds — NaN keys would silently corrupt heap
/// order, the failure mode the old `partial_cmp(..).unwrap_or(Equal)`
/// scans tolerated; ordering falls back to `total_cmp` so release builds
/// stay total either way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedTick(f64);

impl OrderedTick {
    /// Wraps `t`, asserting finiteness in debug builds.
    #[inline]
    pub fn new(t: f64) -> Self {
        debug_assert!(t.is_finite(), "tick must be finite, got {t}");
        Self(t)
    }

    /// The wrapped tick.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedTick {}

impl Ord for OrderedTick {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for OrderedTick {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A monotone simulated clock. Time is plain `f64` seconds (the unit every
/// existing layer already uses); the clock only ever moves forward, and
/// only the kernel advances it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self { now: 0.0 }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock to `t`. Moving backwards is a kernel bug: debug
    /// builds assert, release builds clamp (the clock stays monotone either
    /// way).
    #[inline]
    pub fn advance_to(&mut self, t: f64) {
        debug_assert!(t.is_finite(), "clock target must be finite, got {t}");
        debug_assert!(t >= self.now, "clock must be monotone: {t} < {}", self.now);
        if t > self.now {
            self.now = t;
        }
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance_to(2.5);
        assert_eq!(c.now(), 2.5);
        c.advance_to(2.5); // same instant is fine
        assert_eq!(c.now(), 2.5);
    }

    #[test]
    fn ordered_ticks_sort_with_index_tie_break() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((OrderedTick::new(2.0), 0usize)));
        heap.push(Reverse((OrderedTick::new(1.0), 3usize)));
        heap.push(Reverse((OrderedTick::new(1.0), 1usize)));
        let order: Vec<usize> =
            std::iter::from_fn(|| heap.pop().map(|Reverse((_, i))| i)).collect();
        assert_eq!(order, vec![1, 3, 0], "equal ticks pop lowest index first");
    }

    #[test]
    #[should_panic(expected = "monotone")]
    #[cfg(debug_assertions)]
    fn backwards_is_a_bug() {
        let mut c = SimClock::new();
        c.advance_to(2.0);
        c.advance_to(1.0);
    }
}
