//! The event queue: a binary heap keyed `(time, seq)`.
//!
//! `seq` is a schedule-order sequence number, so events at the same
//! simulated instant fire in the order they were scheduled — the property
//! that makes every replay byte-identical. Cancellation is a tombstone:
//! cancelled entries stay in the heap and are skipped on pop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::sim::ComponentId;

/// Handle to a scheduled event, usable to [`EventQueue::cancel`] it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub(crate) u64);

/// One scheduled event, as returned by [`EventQueue::pop`].
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Fire time in simulated seconds.
    pub time: f64,
    /// Schedule-order sequence number (the tie-break).
    pub seq: u64,
    /// Destination component.
    pub dst: ComponentId,
    /// The payload.
    pub event: E,
}

/// Heap entry: ordered by `(time, seq)` only, payload never compared.
struct Entry<E>(Scheduled<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.seq == other.0.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse both keys: BinaryHeap is a max-heap and we want the
        // earliest (time, seq) on top. Times are asserted finite at
        // schedule time, so total_cmp agrees with the usual order.
        other
            .0
            .time
            .total_cmp(&self.0.time)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lifecycle of one scheduled event, indexed by its seq.
#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Pending,
    Fired,
    Cancelled,
}

/// Deterministic event queue. See the module docs for the ordering and
/// cancellation contract.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Per-seq lifecycle; one byte per event ever scheduled.
    state: Vec<State>,
    live: usize,
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            state: Vec::new(),
            live: 0,
        }
    }

    /// Schedules `event` for `dst` at absolute time `time`. Times must be
    /// finite; NaN or infinite fire times would silently corrupt the heap
    /// order, so they are rejected loudly in all builds.
    pub fn push(&mut self, time: f64, dst: ComponentId, event: E) -> EventId {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let seq = self.state.len() as u64;
        self.state.push(State::Pending);
        self.heap.push(Entry(Scheduled {
            time,
            seq,
            dst,
            event,
        }));
        self.live += 1;
        EventId(seq)
    }

    /// Cancels a scheduled event. Returns `true` if the event was still
    /// pending (it will now never fire), `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.state.get_mut(id.0 as usize) {
            Some(s @ State::Pending) => {
                *s = State::Cancelled;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Fire time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.0.time)
    }

    /// Pops the next live event in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.skip_cancelled();
        let entry = self.heap.pop()?;
        self.state[entry.0.seq as usize] = State::Fired;
        self.live -= 1;
        Some(entry.0)
    }

    /// Live (scheduled, not cancelled, not fired) event count.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events ever scheduled (the next seq number).
    pub fn scheduled_total(&self) -> u64 {
        self.state.len() as u64
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.state[top.0.seq as usize] == State::Cancelled {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DST: ComponentId = ComponentId(0);

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(2.0, DST, "late");
        q.push(1.0, DST, "early-a");
        q.push(1.0, DST, "early-b");
        q.push(0.5, DST, "first");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["first", "early-a", "early-b", "late"]);
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut q = EventQueue::new();
        let a = q.push(1.0, DST, "a");
        q.push(2.0, DST, "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancelling_a_fired_event_is_a_no_op() {
        let mut q = EventQueue::new();
        let a = q.push(1.0, DST, ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_times_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, DST, ());
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.push(1.0, DST, ());
        q.push(2.0, DST, ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }
}
