//! Discrete-event simulation kernel.
//!
//! Every layer of this repository simulates time: the cluster executor
//! places stage tasks on machine slots, the pipeline scheduler replays
//! multi-job traces, the chaos runner injects faults mid-run, and the
//! serving gateway flushes micro-batches on simulated deadlines. Before
//! this crate each of those layers advanced its *own* private notion of
//! time with a blocking loop; `simkern` gives them one shared kernel:
//!
//! * [`SimClock`] — a monotone simulated clock (plain `f64` seconds).
//! * [`EventQueue`] — a binary-heap event queue keyed `(time, seq)`, so
//!   ties resolve in schedule order and replays are deterministic.
//! * [`Simulation`] / [`Component`] / [`Ctx`] — typed components receive
//!   events through `on_event` and emit new ones with
//!   [`Ctx::emit`]/[`Ctx::cancel`]; [`Simulation::step`] and
//!   [`Simulation::run_until`] drive the loop.
//! * [`rng`] — the SplitMix64 seed-derivation scheme shared with
//!   `faultsim`'s per-channel streams, plus a registry of independent
//!   seeded streams for components.
//! * [`Window`] / [`CountWindow`] / [`Cooldown`] — the tumbling-window and
//!   cooldown arithmetic previously duplicated between the serving
//!   autonomy controller and the watchtower SLO engine.
//! * [`TimerWheel`] — standalone deterministic timers for layers (like the
//!   gateway's deadline flush) that are driven by external request arrival
//!   rather than by a full simulation loop.
//!
//! # Determinism rules
//!
//! 1. Events fire in ascending `(time, seq)` order; `seq` is assigned at
//!    schedule time, so two events at the same instant fire in the order
//!    they were scheduled.
//! 2. The clock never moves backwards; scheduling an event in the past is
//!    a bug (checked in debug builds, clamped to `now` in release).
//! 3. A cancelled event never fires; cancellation is O(1) (a tombstone).
//! 4. All randomness flows through [`rng::RngRegistry`]: per-salt streams
//!    are insensitive to how many draws other streams make.

pub mod clock;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod timer;
pub mod window;

pub use clock::{OrderedTick, SimClock};
pub use queue::{EventId, EventQueue, Scheduled};
pub use sim::{Component, ComponentId, Ctx, Simulation};
pub use timer::{TimerId, TimerWheel};
pub use window::{Cooldown, CountWindow, Window};
