//! Learned cost micromodels and the meta ensemble.
//!
//! "We adopt the same micromodel approach for learned cost models and
//! introduce a meta ensemble model that corrects and combines predictions
//! from individual models to increase coverage." (Sec 4.2, \[46\])
//!
//! Three predictors are in play:
//!
//! * the engine's **default** cost (analytic formulas over default
//!   cardinality estimates),
//! * per-template **micromodels** (high accuracy, limited coverage),
//! * a **global model** trained on all templates (full coverage, lower
//!   accuracy).
//!
//! The meta ensemble routes each query to the best available predictor and
//! corrects the global model with a learned residual — giving 100% coverage
//! without giving up the micromodels' accuracy, exactly the trade the paper
//! describes.

use crate::features;
use adas_engine::cardinality::{DefaultEstimator, TrueCardinality};
use adas_engine::cost::CostModel;
use adas_ml::dataset::Dataset;
use adas_ml::gbm::{GbmConfig, GradientBoosting};
use adas_ml::linear::LinearRegression;
use adas_ml::metrics::mape;
use adas_ml::Regressor;
use adas_workload::catalog::Catalog;
use adas_workload::plan::LogicalPlan;
use adas_workload::signature::{template_signature, Signature};
use serde::Serialize;
use std::collections::HashMap;

/// Training configuration for the cost ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostTrainConfig {
    /// Minimum instances per template for a micromodel.
    pub min_instances: usize,
    /// Train fraction of each split.
    pub train_fraction: f64,
    /// Split / boosting seed.
    pub seed: u64,
}

impl Default for CostTrainConfig {
    fn default() -> Self {
        Self {
            min_instances: 8,
            train_fraction: 0.7,
            seed: 23,
        }
    }
}

/// Evaluation report (experiment C3/A2).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CostEnsembleReport {
    /// Fraction of evaluation queries covered by a micromodel.
    pub micromodel_coverage: f64,
    /// MAPE of the engine's default (analytic) cost prediction.
    pub default_mape: f64,
    /// MAPE using micromodels only (default where uncovered).
    pub micro_only_mape: f64,
    /// MAPE of the full ensemble (micromodels + corrected global model).
    pub ensemble_mape: f64,
}

/// The learned cost predictor.
pub struct CostEnsemble<'a> {
    catalog: &'a Catalog,
    cost_model: CostModel,
    micro: HashMap<Signature, LinearRegression>,
    global: Option<GradientBoosting>,
}

impl<'a> CostEnsemble<'a> {
    /// Trains micromodels and the global model from a plan history, then
    /// evaluates default vs micro-only vs ensemble on held-out data. Labels
    /// come from the ground-truth oracle; production training should prefer
    /// [`Self::train_from_feedback`].
    pub fn train(
        catalog: &'a Catalog,
        history: &[LogicalPlan],
        config: CostTrainConfig,
    ) -> (Self, CostEnsembleReport) {
        let truth = TrueCardinality::new(catalog);
        let cost_model = CostModel::default();
        let labeled: Vec<(LogicalPlan, f64)> = history
            .iter()
            .map(|p| (p.clone(), cost_model.total_cost(p, &truth).unwrap_or(1.0)))
            .collect();
        Self::train_labeled(catalog, &labeled, config)
    }

    /// Trains from the engine's workload-feedback store: labels are the
    /// costs observed at execution time (the Peregrine loop).
    pub fn train_from_feedback(
        catalog: &'a Catalog,
        feedback: &adas_engine::feedback::FeedbackStore,
        config: CostTrainConfig,
    ) -> (Self, CostEnsembleReport) {
        let labeled: Vec<(LogicalPlan, f64)> = feedback
            .templates()
            .into_iter()
            .flat_map(|(_, obs)| obs.iter().map(|o| (o.plan.clone(), o.actual_cost)))
            .collect();
        Self::train_labeled(catalog, &labeled, config)
    }

    /// Shared training core over `(plan, observed cost)` pairs.
    fn train_labeled(
        catalog: &'a Catalog,
        labeled: &[(LogicalPlan, f64)],
        config: CostTrainConfig,
    ) -> (Self, CostEnsembleReport) {
        let cost_model = CostModel::default();

        // Featurize everything once; labels are log observed cost.
        let featurized: Vec<(Signature, Vec<f64>, f64)> = labeled
            .iter()
            .map(|(p, cost)| {
                let sig = template_signature(p);
                let f = features::featurize(p, catalog, &cost_model);
                (sig, f, cost.max(1.0).ln())
            })
            .collect();

        // Deterministic split by index hash.
        let is_train = |i: usize| (i * 2654435761) % 100 < (config.train_fraction * 100.0) as usize;
        let train: Vec<&(Signature, Vec<f64>, f64)> = featurized
            .iter()
            .enumerate()
            .filter(|(i, _)| is_train(*i))
            .map(|(_, x)| x)
            .collect();
        let test: Vec<&(Signature, Vec<f64>, f64)> = featurized
            .iter()
            .enumerate()
            .filter(|(i, _)| !is_train(*i))
            .map(|(_, x)| x)
            .collect();

        // Per-template micromodels.
        type LabeledRow = (Signature, Vec<f64>, f64);
        let mut by_template: HashMap<Signature, Vec<&LabeledRow>> = HashMap::new();
        for row in &train {
            by_template.entry(row.0).or_default().push(row);
        }
        let mut micro = HashMap::new();
        for (sig, rows) in &by_template {
            if rows.len() < config.min_instances {
                continue;
            }
            let data = Dataset::new(
                rows.iter().map(|r| r.1.clone()).collect(),
                rows.iter().map(|r| r.2).collect(),
            );
            if let Ok(data) = data {
                if let Ok(model) = LinearRegression::fit_ridge(&data, 1e-6) {
                    micro.insert(*sig, model);
                }
            }
        }

        // Global model over all training rows.
        let global = Dataset::new(
            train.iter().map(|r| r.1.clone()).collect(),
            train.iter().map(|r| r.2).collect(),
        )
        .ok()
        .and_then(|d| GradientBoosting::fit(&d, GbmConfig::default()).ok());

        let ensemble = Self {
            catalog,
            cost_model,
            micro,
            global,
        };

        // Held-out evaluation.
        let mut actual = Vec::with_capacity(test.len());
        let mut default_pred = Vec::with_capacity(test.len());
        let mut micro_pred = Vec::with_capacity(test.len());
        let mut ensemble_pred = Vec::with_capacity(test.len());
        let mut covered = 0usize;
        for (sig, f, label) in &test {
            actual.push(label.exp());
            default_pred.push(f[1].exp()); // feature 1 is ln(default cost)
            let micro_estimate = ensemble.micro.get(sig).map(|m| m.predict(f).exp());
            if micro_estimate.is_some() {
                covered += 1;
            }
            micro_pred.push(micro_estimate.unwrap_or_else(|| f[1].exp()));
            ensemble_pred.push(ensemble.predict_features(sig, f));
        }
        let report = CostEnsembleReport {
            micromodel_coverage: if test.is_empty() {
                0.0
            } else {
                covered as f64 / test.len() as f64
            },
            default_mape: mape(&actual, &default_pred),
            micro_only_mape: mape(&actual, &micro_pred),
            ensemble_mape: mape(&actual, &ensemble_pred),
        };
        (ensemble, report)
    }

    /// Predicts the true cost of a plan.
    pub fn predict(&self, plan: &LogicalPlan) -> f64 {
        let sig = template_signature(plan);
        let f = features::featurize(plan, self.catalog, &self.cost_model);
        self.predict_features(&sig, &f)
    }

    fn predict_features(&self, sig: &Signature, features: &[f64]) -> f64 {
        if let Some(model) = self.micro.get(sig) {
            return model.predict(features).exp();
        }
        if let Some(global) = &self.global {
            return global.predict(features).exp();
        }
        features[1].exp() // analytic default
    }

    /// Number of micromodels.
    pub fn micromodel_count(&self) -> usize {
        self.micro.len()
    }

    /// Signatures of the trained micromodels (unordered).
    pub fn signatures(&self) -> Vec<Signature> {
        self.micro.keys().copied().collect()
    }

    /// The micromodel for a template, if any.
    pub fn micromodel(&self, sig: Signature) -> Option<&LinearRegression> {
        self.micro.get(&sig)
    }

    /// The global fallback model, if training produced one.
    pub fn global_model(&self) -> Option<&GradientBoosting> {
        self.global.as_ref()
    }

    /// The catalog this ensemble was trained against.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// Whether the global fallback model exists.
    pub fn has_global(&self) -> bool {
        self.global.is_some()
    }

    /// The engine's analytic default cost for comparison.
    pub fn default_cost(&self, plan: &LogicalPlan) -> f64 {
        self.cost_model
            .total_cost(plan, &DefaultEstimator::new(self.catalog))
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};

    fn history() -> (Catalog, Vec<LogicalPlan>) {
        let w = WorkloadGenerator::new(GeneratorConfig {
            days: 6,
            jobs_per_day: 120,
            n_templates: 15,
            ..Default::default()
        })
        .unwrap()
        .generate()
        .unwrap();
        let plans = w.trace.jobs().iter().map(|j| j.plan.clone()).collect();
        (w.catalog, plans)
    }

    #[test]
    fn ensemble_beats_default_cost() {
        let (catalog, plans) = history();
        let (ensemble, report) = CostEnsemble::train(&catalog, &plans, CostTrainConfig::default());
        assert!(ensemble.micromodel_count() > 0);
        assert!(ensemble.has_global());
        assert!(
            report.ensemble_mape < report.default_mape,
            "ensemble {} vs default {}",
            report.ensemble_mape,
            report.default_mape
        );
    }

    #[test]
    fn ensemble_covers_everything_micro_does_not() {
        let (catalog, plans) = history();
        let (ensemble, report) = CostEnsemble::train(&catalog, &plans, CostTrainConfig::default());
        assert!(
            report.micromodel_coverage < 1.0,
            "ad-hoc jobs cannot be covered"
        );
        assert!(
            report.micromodel_coverage > 0.3,
            "recurring templates should be covered"
        );
        // The ensemble still predicts for an unseen plan (global fallback).
        let fresh = LogicalPlan::scan("regions").aggregate(vec![1]);
        assert!(ensemble.predict(&fresh) > 0.0);
    }

    #[test]
    fn micro_only_beats_default_on_covered() {
        let (catalog, plans) = history();
        let (_, report) = CostEnsemble::train(&catalog, &plans, CostTrainConfig::default());
        assert!(report.micro_only_mape <= report.default_mape);
    }

    #[test]
    fn default_cost_exposed_for_comparison() {
        let (catalog, plans) = history();
        let (ensemble, _) = CostEnsemble::train(&catalog, &plans, CostTrainConfig::default());
        assert!(ensemble.default_cost(&plans[0]) > 0.0);
    }
}

#[cfg(test)]
mod feedback_tests {
    use super::*;
    use adas_engine::feedback::FeedbackStore;
    use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};

    #[test]
    fn cost_training_from_execution_feedback() {
        let w = WorkloadGenerator::new(GeneratorConfig {
            days: 6,
            jobs_per_day: 120,
            n_templates: 15,
            ..Default::default()
        })
        .unwrap()
        .generate()
        .unwrap();
        let mut store = FeedbackStore::new();
        for job in w.trace.jobs() {
            store.record_execution(&job.plan, &w.catalog, None).unwrap();
        }
        let (ensemble, report) =
            CostEnsemble::train_from_feedback(&w.catalog, &store, CostTrainConfig::default());
        assert!(ensemble.micromodel_count() > 0);
        assert!(report.ensemble_mape < report.default_mape);
    }
}
