//! Rule-hint steering: Bao adapted to production constraints.
//!
//! "We had to make significant adjustments for the production system,
//! including limiting steering to small incremental steps for better
//! interpretability and debuggability, minimizing pre-production
//! experimentation costs using a contextual bandit model, and guarding
//! against regression with a validation model." (Sec 4.2, \[35, 51\])
//!
//! Per recurring template, a [`SteeringController`] keeps a *deployed* rule
//! configuration and explores only its Hamming-distance-1 neighbourhood with
//! an epsilon-greedy bandit. An arm is **promoted** to deployed only when
//! the validation model confirms a consistent improvement; otherwise the
//! deployed configuration never moves — the regression guard.

use adas_engine::rules::RuleSet;
use adas_ml::bandit::{BanditPolicy, EpsilonGreedy};
use adas_obs::{digest_f64, Obs, Provenance};
use adas_workload::signature::Signature;
use serde::Serialize;
use std::collections::HashMap;

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteeringConfig {
    /// Bandit exploration rate.
    pub epsilon: f64,
    /// Observations an arm needs before the validation model will consider
    /// promoting it.
    pub min_trials: usize,
    /// Required mean relative improvement over the deployed configuration
    /// (e.g. 0.05 = 5%).
    pub improvement_margin: f64,
    /// Required win rate (fraction of trials strictly better than the
    /// deployed configuration) — the validation model's acceptance bar.
    pub validation_win_rate: f64,
    /// RNG seed for the per-template bandits.
    pub seed: u64,
}

impl Default for SteeringConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.2,
            min_trials: 8,
            improvement_margin: 0.02,
            validation_win_rate: 0.75,
            seed: 31,
        }
    }
}

/// Aggregate steering statistics (experiment C4/A3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SteeringStats {
    /// Templates under management.
    pub templates: usize,
    /// Templates whose deployed configuration moved at least one step.
    pub templates_steered: usize,
    /// Total promotions across templates.
    pub promotions: usize,
    /// Candidate arms that met the raw-improvement bar but were rejected by
    /// the validation model (regressions prevented).
    pub rejected_by_validation: usize,
    /// Mean per-observation reward (cost_baseline / cost_chosen) across all
    /// observations; > 1 means steering helped overall.
    pub mean_reward: f64,
}

/// Per-arm observation history.
#[derive(Debug, Clone, Default)]
struct ArmHistory {
    /// Relative rewards: `baseline_cost / arm_cost` per trial.
    rewards: Vec<f64>,
}

impl ArmHistory {
    fn wins(&self) -> usize {
        self.rewards.iter().filter(|&&r| r > 1.0).count()
    }
    fn mean(&self) -> f64 {
        if self.rewards.is_empty() {
            0.0
        } else {
            self.rewards.iter().sum::<f64>() / self.rewards.len() as f64
        }
    }
}

/// Steering state for one template.
struct TemplateState {
    deployed: RuleSet,
    arms: Vec<RuleSet>,
    bandit: EpsilonGreedy,
    history: Vec<ArmHistory>,
    promotions: usize,
    rejected: usize,
}

impl TemplateState {
    fn new(deployed: RuleSet, config: &SteeringConfig, seed: u64) -> Self {
        let arms = deployed.neighbors(); // arm 0 == deployed itself
        let n = arms.len();
        Self {
            deployed,
            arms,
            bandit: EpsilonGreedy::new(n, config.epsilon, seed)
                .expect("neighbor count >= 1 and epsilon validated"),
            history: vec![ArmHistory::default(); n],
            promotions: 0,
            rejected: 0,
        }
    }

    fn rebase(&mut self, new_deployed: RuleSet, config: &SteeringConfig, seed: u64) {
        *self = Self::new(new_deployed, config, seed);
    }
}

/// The per-template steering controller.
pub struct SteeringController {
    config: SteeringConfig,
    templates: HashMap<Signature, TemplateState>,
    default_rules: RuleSet,
    observations: Vec<f64>,
    steered: HashMap<Signature, usize>,
    obs: Obs,
}

impl SteeringController {
    /// Creates a controller whose templates all start at `default_rules`
    /// (typically [`RuleSet::all`], the engine default).
    pub fn new(default_rules: RuleSet, config: SteeringConfig) -> Self {
        Self::with_obs(default_rules, config, Obs::disabled())
    }

    /// Creates a controller that records every steering observation as a
    /// flight-recorder decision (model `steering-bandit`, versioned by the
    /// template's promotion count), plus `hint_promoted` /
    /// `hint_rejected_by_validation` provenance events.
    pub fn with_obs(default_rules: RuleSet, config: SteeringConfig, obs: Obs) -> Self {
        Self {
            config,
            templates: HashMap::new(),
            default_rules,
            observations: Vec::new(),
            steered: HashMap::new(),
            obs,
        }
    }

    /// Chooses the rule configuration to run for the next instance of a
    /// template. Exploration is confined to the deployed configuration's
    /// Hamming-1 neighbourhood.
    pub fn choose(&mut self, template: Signature) -> RuleSet {
        let seed = self.config.seed ^ template.0;
        let config = self.config;
        let default_rules = self.default_rules;
        let state = self
            .templates
            .entry(template)
            .or_insert_with(|| TemplateState::new(default_rules, &config, seed));
        let arm = state.bandit.choose(&[]);
        state.arms[arm]
    }

    /// The configuration currently deployed for a template.
    pub fn deployed(&self, template: Signature) -> RuleSet {
        self.templates
            .get(&template)
            .map_or(self.default_rules, |s| s.deployed)
    }

    /// Records the outcome of running one instance: the true cost under the
    /// chosen configuration and under the deployed baseline (in production
    /// the baseline comes from the recurring template's history; in the
    /// simulator both are measured).
    pub fn observe(
        &mut self,
        template: Signature,
        chosen: RuleSet,
        cost_with_chosen: f64,
        cost_with_deployed: f64,
    ) {
        let reward = if cost_with_chosen > 0.0 {
            cost_with_deployed / cost_with_chosen
        } else {
            1.0
        };
        self.observations.push(reward);
        let seed = self.config.seed ^ template.0;
        let config = self.config;
        let default_rules = self.default_rules;
        let state = self
            .templates
            .entry(template)
            .or_insert_with(|| TemplateState::new(default_rules, &config, seed));
        let Some(arm) = state.arms.iter().position(|&a| a == chosen) else {
            return; // stale observation from before a promotion; drop it
        };
        state.bandit.update(arm, &[], reward);
        state.history[arm].rewards.push(reward);

        if self.obs.is_enabled() {
            // The hint's prediction is the deployed baseline's cost (what
            // steering expects to at least match); the observed outcome is
            // the chosen configuration's measured cost.
            let provenance = Provenance::new(
                "steering-bandit",
                state.promotions as u64 + 1,
                digest_f64([template.0 as f64, chosen.0 as f64]),
            );
            let mut batch = self.obs.batch();
            batch.record_decision(
                "learned.steering",
                "rule_hint",
                &provenance,
                cost_with_deployed,
                Some(cost_with_chosen),
                if reward >= 1.0 {
                    "improved"
                } else {
                    "regressed"
                },
                false,
                0,
                0.0,
            );
            batch.counter_add("learned.steering", "hints_observed", &[], 1);
        }

        // Promotion check: skip arm 0 (the deployed config itself).
        if arm != 0 && state.history[arm].rewards.len() >= self.config.min_trials {
            let mean = state.history[arm].mean();
            let win_rate =
                state.history[arm].wins() as f64 / state.history[arm].rewards.len() as f64;
            if mean >= 1.0 + self.config.improvement_margin {
                if win_rate >= self.config.validation_win_rate {
                    let new_deployed = state.arms[arm];
                    state.promotions += 1;
                    let promotions = state.promotions;
                    let rejected = state.rejected;
                    state.rebase(new_deployed, &self.config, seed ^ promotions as u64);
                    state.promotions = promotions;
                    state.rejected = rejected;
                    *self.steered.entry(template).or_insert(0) += 1;
                    let mut batch = self.obs.batch();
                    batch.event(
                        "learned.steering",
                        "hint_promoted",
                        0.0,
                        &[
                            ("template", &template.0.to_string()),
                            ("rules", &new_deployed.0.to_string()),
                            ("mean_reward", &format!("{mean:.6}")),
                        ],
                    );
                    batch.counter_add("learned.steering", "promotions", &[], 1);
                } else {
                    // Raw mean looked good but wins were inconsistent: the
                    // validation model blocks the promotion. Clear the arm's
                    // history so it must re-qualify.
                    state.rejected += 1;
                    state.history[arm].rewards.clear();
                    let mut batch = self.obs.batch();
                    batch.event(
                        "learned.steering",
                        "hint_rejected_by_validation",
                        0.0,
                        &[
                            ("template", &template.0.to_string()),
                            ("rules", &chosen.0.to_string()),
                            ("win_rate", &format!("{win_rate:.6}")),
                        ],
                    );
                    batch.counter_add("learned.steering", "rejected_by_validation", &[], 1);
                }
            }
        }
    }

    /// Gateway-aware variant of [`Self::observe`]: the two costs arrive as
    /// serving-layer [`Prediction`]s. When either cost was served by the
    /// degraded-mode fallback (breaker open, timeout, shed), the reward is
    /// meaningless for the bandit — the observation is dropped and counted
    /// as `hints_skipped_degraded` instead of corrupting the arm history.
    ///
    /// [`Prediction`]: adas_serve::Prediction
    pub fn observe_served(
        &mut self,
        template: Signature,
        chosen: RuleSet,
        cost_with_chosen: &adas_serve::Prediction,
        cost_with_deployed: &adas_serve::Prediction,
    ) {
        if cost_with_chosen.source.is_fallback() || cost_with_deployed.source.is_fallback() {
            self.obs
                .counter_add("learned.steering", "hints_skipped_degraded", &[], 1);
            return;
        }
        self.observe(
            template,
            chosen,
            cost_with_chosen.value,
            cost_with_deployed.value,
        );
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SteeringStats {
        let mean_reward = if self.observations.is_empty() {
            1.0
        } else {
            self.observations.iter().sum::<f64>() / self.observations.len() as f64
        };
        SteeringStats {
            templates: self.templates.len(),
            templates_steered: self.steered.len(),
            promotions: self.templates.values().map(|s| s.promotions).sum(),
            rejected_by_validation: self.templates.values().map(|s| s.rejected).sum(),
            mean_reward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(n: u64) -> Signature {
        Signature(n)
    }

    /// Environment where toggling rule 3 off yields a 20% cost reduction and
    /// everything else is neutral.
    fn env_cost(rules: RuleSet) -> f64 {
        if rules.contains(3) {
            100.0
        } else {
            80.0
        }
    }

    #[test]
    fn controller_promotes_genuinely_better_config() {
        let mut c = SteeringController::new(RuleSet::all(), SteeringConfig::default());
        let t = sig(42);
        for _ in 0..400 {
            let chosen = c.choose(t);
            let baseline = c.deployed(t);
            c.observe(t, chosen, env_cost(chosen), env_cost(baseline));
        }
        let deployed = c.deployed(t);
        assert!(!deployed.contains(3), "rule 3 should have been steered off");
        let stats = c.stats();
        assert!(stats.promotions >= 1);
        assert_eq!(stats.templates, 1);
        assert_eq!(stats.templates_steered, 1);
        assert!(stats.mean_reward >= 1.0);
    }

    #[test]
    fn promotion_moves_one_step_at_a_time() {
        let mut c = SteeringController::new(RuleSet::all(), SteeringConfig::default());
        let t = sig(7);
        let start = c.deployed(t);
        let mut last = start;
        for _ in 0..1000 {
            let chosen = c.choose(t);
            assert!(
                chosen.hamming(c.deployed(t)) <= 1,
                "exploration beyond Hamming 1"
            );
            let baseline = c.deployed(t);
            c.observe(t, chosen, env_cost(chosen), env_cost(baseline));
            let now = c.deployed(t);
            assert!(
                now.hamming(last) <= 1,
                "promotion jumped more than one step"
            );
            last = now;
        }
    }

    #[test]
    fn noisy_improvements_blocked_by_validation() {
        // Arm pays off on average but loses often: high variance.
        // mean = (7*0.5 + 1*6.0)/8 = 1.19 > margin, win rate = 0.125 < 0.75.
        let mut c = SteeringController::new(
            RuleSet::all(),
            SteeringConfig {
                epsilon: 0.0,
                ..Default::default()
            },
        );
        let t = sig(9);
        let target = RuleSet::all().toggled(2);
        let rewards = [0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 6.0];
        for r in rewards {
            // Feed the observation directly for the target arm.
            c.observe(t, target, 100.0 / r, 100.0);
        }
        assert_eq!(c.deployed(t), RuleSet::all(), "validation model must block");
        assert_eq!(c.stats().rejected_by_validation, 1);
    }

    #[test]
    fn neutral_environment_never_promotes() {
        let mut c = SteeringController::new(RuleSet::all(), SteeringConfig::default());
        let t = sig(5);
        for _ in 0..300 {
            let chosen = c.choose(t);
            c.observe(t, chosen, 100.0, 100.0);
        }
        assert_eq!(c.deployed(t), RuleSet::all());
        assert_eq!(c.stats().promotions, 0);
    }

    #[test]
    fn independent_templates_steer_independently() {
        let mut c = SteeringController::new(RuleSet::all(), SteeringConfig::default());
        // Template A: rule 1 is bad. Template B: rule 2 is bad.
        let cost_a = |r: RuleSet| if r.contains(1) { 100.0 } else { 70.0 };
        let cost_b = |r: RuleSet| if r.contains(2) { 100.0 } else { 70.0 };
        for _ in 0..400 {
            for (t, cost) in [(sig(1), cost_a as fn(RuleSet) -> f64), (sig(2), cost_b)] {
                let chosen = c.choose(t);
                let baseline = c.deployed(t);
                c.observe(t, chosen, cost(chosen), cost(baseline));
            }
        }
        assert!(!c.deployed(sig(1)).contains(1));
        assert!(c.deployed(sig(1)).contains(2));
        assert!(!c.deployed(sig(2)).contains(2));
        assert!(c.deployed(sig(2)).contains(1));
    }

    #[test]
    fn stale_observations_ignored() {
        let mut c = SteeringController::new(RuleSet::all(), SteeringConfig::default());
        let t = sig(3);
        // An observation for a config outside the neighbourhood is dropped.
        let far = RuleSet::none();
        c.observe(t, far, 10.0, 100.0);
        assert_eq!(c.stats().promotions, 0);
    }
}
