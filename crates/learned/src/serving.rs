//! Gateway-served variants of the learned estimators.
//!
//! The paper's optimizer never calls models in-process: predictions come
//! from a serving tier with versioning, caching and guardrails (Sec 4.2's
//! "ask the service, else use the default" contract). These adapters keep
//! the in-process types (`LearnedCardinality`, `CostEnsemble`) as the
//! *training* artifacts and publish their fitted models into a
//! [`Gateway`], so every optimizer-facing prediction goes through the
//! serving layer — cache, circuit breaker, fallback and all.
//!
//! Naming convention for gateway models: `card/<sig>` for per-template
//! cardinality micromodels, `cost/<sig>` for cost micromodels, and
//! `cost/global` for the ensemble's global model. Fallback closures serve
//! the engine default in the model's own output space: feature 0 is
//! ln(default rows) and feature 1 is ln(default cost), so the fallbacks are
//! simply those features.

use crate::cardinality::LearnedCardinality;
use crate::cost::CostEnsemble;
use crate::features;
use adas_engine::cardinality::{CardinalityModel, DefaultEstimator};
use adas_engine::cost::CostModel;
use adas_serve::{
    AutonomyAction, AutonomyController, Gateway, ModelHandle, Prediction, RegressorModel,
};
use adas_workload::catalog::Catalog;
use adas_workload::plan::LogicalPlan;
use adas_workload::signature::{template_signature, Signature};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

/// Formats the gateway name of a cardinality micromodel.
pub fn cardinality_model_name(sig: Signature) -> String {
    format!("card/{:016x}", sig.0)
}

/// Formats the gateway name of a cost micromodel.
pub fn cost_model_name(sig: Signature) -> String {
    format!("cost/{:016x}", sig.0)
}

/// Gateway name of the cost ensemble's global model.
pub const COST_GLOBAL_MODEL: &str = "cost/global";

impl<'a> LearnedCardinality<'a> {
    /// Publishes every retained micromodel into `gateway` (deterministic
    /// signature order) and returns a [`CardinalityModel`] whose root
    /// estimates are obtained through the serving layer. Re-publishing
    /// after retraining bumps each model's served version (hot-swap).
    pub fn publish(&self, gateway: &Gateway) -> ServedCardinality<'a> {
        let mut handles = HashMap::new();
        let mut signatures: Vec<Signature> = self.signatures();
        signatures.sort();
        for sig in signatures {
            let handle = gateway.register(&cardinality_model_name(sig), |f: &[f64]| f[0]);
            let model = self
                .model(sig)
                .expect("signature listed by signatures()")
                .clone();
            gateway
                .publish(handle, Arc::new(RegressorModel(model)), 0.0)
                .expect("freshly registered handle");
            handles.insert(sig, handle);
        }
        ServedCardinality {
            catalog: self.catalog(),
            cost_model: CostModel::default(),
            gateway: gateway.clone(),
            handles,
            sim_time: Cell::new(0.0),
            last: RefCell::new(HashMap::new()),
        }
    }
}

/// Per-template stash of the last served prediction: the handle it came
/// from, the features it was computed on, and the prediction itself.
type LastServed = HashMap<Signature, (ModelHandle, Vec<f64>, Prediction)>;

/// A [`CardinalityModel`] that asks the gateway for covered templates and
/// uses the default estimator everywhere else — the served twin of
/// [`LearnedCardinality`]. Plugs straight into `Optimizer::optimize`.
pub struct ServedCardinality<'a> {
    catalog: &'a Catalog,
    cost_model: CostModel,
    gateway: Gateway,
    handles: HashMap<Signature, ModelHandle>,
    sim_time: Cell<f64>,
    /// Last served prediction per template, kept so the observed outcome
    /// can be fed back *without* re-predicting (a re-predict would advance
    /// the canary ticket and cache state, breaking replay determinism).
    last: RefCell<LastServed>,
}

impl ServedCardinality<'_> {
    /// Sets the simulated time stamped onto subsequent gateway requests
    /// (drives breaker cooldowns and batching deadlines).
    pub fn set_sim_time(&self, sim_time: f64) {
        self.sim_time.set(sim_time);
    }

    /// The gateway serving this estimator.
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }

    /// Number of templates served by a micromodel.
    pub fn served_count(&self) -> usize {
        self.handles.len()
    }

    /// Whether a plan's template is served by a micromodel.
    pub fn covers(&self, plan: &LogicalPlan) -> bool {
        self.handles.contains_key(&template_signature(plan))
    }

    /// Feeds the observed true row count for the most recent estimate of
    /// `plan`'s template into the autonomy `controller` (which supervises
    /// this estimator's gateway). Returns the controller's actions, or
    /// `None` when the template is not served or has no pending estimate.
    ///
    /// Outcomes arrive in ln-rows space, matching the served model's
    /// output space.
    pub fn observe_actual(
        &self,
        plan: &LogicalPlan,
        actual_rows: f64,
        controller: &mut AutonomyController,
        sim_time: f64,
    ) -> Option<Vec<AutonomyAction>> {
        let sig = template_signature(plan);
        let (handle, features, prediction) = self.last.borrow_mut().remove(&sig)?;
        let actual = actual_rows.max(1.0).ln();
        controller
            .observe(handle, &features, &prediction, actual, sim_time)
            .ok()
    }
}

impl CardinalityModel for ServedCardinality<'_> {
    fn annotate(&self, plan: &LogicalPlan) -> adas_engine::Result<Vec<f64>> {
        let mut ann = DefaultEstimator::new(self.catalog).annotate(plan)?;
        let sig = template_signature(plan);
        if let Some(&handle) = self.handles.get(&sig) {
            let f = features::featurize(plan, self.catalog, &self.cost_model);
            let prediction = self
                .gateway
                .predict(handle, &f, self.sim_time.get())
                .expect("handle registered at publish time");
            ann[0] = prediction.value.exp().max(1.0);
            self.last.borrow_mut().insert(sig, (handle, f, prediction));
        }
        Ok(ann)
    }
}

impl<'a> CostEnsemble<'a> {
    /// Publishes the micromodels and the global model into `gateway` and
    /// returns the served cost predictor.
    pub fn publish(&self, gateway: &Gateway) -> ServedCost<'a> {
        let mut micro = HashMap::new();
        let mut signatures: Vec<Signature> = self.signatures();
        signatures.sort();
        for sig in signatures {
            let handle = gateway.register(&cost_model_name(sig), |f: &[f64]| f[1]);
            let model = self
                .micromodel(sig)
                .expect("signature listed by signatures()")
                .clone();
            gateway
                .publish(handle, Arc::new(RegressorModel(model)), 0.0)
                .expect("freshly registered handle");
            micro.insert(sig, handle);
        }
        let global = self.global_model().map(|model| {
            let handle = gateway.register(COST_GLOBAL_MODEL, |f: &[f64]| f[1]);
            gateway
                .publish(handle, Arc::new(RegressorModel(model.clone())), 0.0)
                .expect("freshly registered handle");
            handle
        });
        ServedCost {
            catalog: self.catalog(),
            cost_model: CostModel::default(),
            gateway: gateway.clone(),
            micro,
            global,
            sim_time: Cell::new(0.0),
            last: RefCell::new(HashMap::new()),
        }
    }
}

/// The served twin of [`CostEnsemble`]: micromodel → global → analytic
/// default, with every model call routed through the gateway.
pub struct ServedCost<'a> {
    catalog: &'a Catalog,
    cost_model: CostModel,
    gateway: Gateway,
    micro: HashMap<Signature, ModelHandle>,
    global: Option<ModelHandle>,
    sim_time: Cell<f64>,
    /// Last served prediction per template (see
    /// [`ServedCardinality::observe_actual`] for why it is stashed rather
    /// than re-predicted).
    last: RefCell<LastServed>,
}

impl ServedCost<'_> {
    /// Sets the simulated time stamped onto subsequent gateway requests.
    pub fn set_sim_time(&self, sim_time: f64) {
        self.sim_time.set(sim_time);
    }

    /// The gateway serving this predictor.
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }

    /// Number of served cost micromodels.
    pub fn served_count(&self) -> usize {
        self.micro.len()
    }

    /// Predicts the true cost of a plan through the serving layer.
    pub fn predict(&self, plan: &LogicalPlan) -> f64 {
        self.predict_detail(plan).value.exp()
    }

    /// Full serving detail (value is in ln-cost space): which version
    /// answered and whether the value came from cache, model or fallback.
    pub fn predict_detail(&self, plan: &LogicalPlan) -> Prediction {
        let sig = template_signature(plan);
        let f = features::featurize(plan, self.catalog, &self.cost_model);
        let handle = self.micro.get(&sig).copied().or(self.global);
        match handle {
            Some(handle) => {
                let prediction = self
                    .gateway
                    .predict(handle, &f, self.sim_time.get())
                    .expect("handle registered at publish time");
                self.last.borrow_mut().insert(sig, (handle, f, prediction));
                prediction
            }
            // No model at all: the analytic default, shaped like a fallback.
            None => Prediction {
                value: f[1],
                version: 0,
                source: adas_serve::Source::Fallback(adas_serve::FallbackCause::NoModel),
                features_digest: 0,
            },
        }
    }

    /// Feeds the observed true cost for the most recent prediction of
    /// `plan`'s template into the autonomy `controller`. Returns the
    /// controller's actions, or `None` when no prediction is pending for
    /// the template. Outcomes are converted to ln-cost space.
    pub fn observe_actual(
        &self,
        plan: &LogicalPlan,
        actual_cost: f64,
        controller: &mut AutonomyController,
        sim_time: f64,
    ) -> Option<Vec<AutonomyAction>> {
        let sig = template_signature(plan);
        let (handle, features, prediction) = self.last.borrow_mut().remove(&sig)?;
        let actual = actual_cost.max(1.0).ln();
        controller
            .observe(handle, &features, &prediction, actual, sim_time)
            .ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::TrainConfig;
    use crate::cost::CostTrainConfig;
    use adas_serve::GatewayConfig;
    use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};

    fn history() -> (Catalog, Vec<LogicalPlan>) {
        let w = WorkloadGenerator::new(GeneratorConfig {
            days: 6,
            jobs_per_day: 150,
            n_templates: 20,
            ..Default::default()
        })
        .unwrap()
        .generate()
        .unwrap();
        let plans = w.trace.jobs().iter().map(|j| j.plan.clone()).collect();
        (w.catalog, plans)
    }

    #[test]
    fn served_cardinality_matches_direct_path() {
        let (catalog, plans) = history();
        let (direct, _) = LearnedCardinality::train(&catalog, &plans, TrainConfig::default());
        let gateway = Gateway::new(GatewayConfig::standard());
        let served = direct.publish(&gateway);
        assert_eq!(served.served_count(), direct.model_count());
        for plan in plans.iter().take(50) {
            let a = direct.estimate(plan).unwrap();
            let b = served.estimate(plan).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "served must equal direct");
        }
        assert!(gateway.stats().requests > 0, "predictions went via gateway");
    }

    #[test]
    fn served_cardinality_cache_hits_on_recurrence() {
        let (catalog, plans) = history();
        let (direct, _) = LearnedCardinality::train(&catalog, &plans, TrainConfig::default());
        let gateway = Gateway::new(GatewayConfig::standard());
        let served = direct.publish(&gateway);
        let covered: Vec<&LogicalPlan> = plans.iter().filter(|p| served.covers(p)).collect();
        assert!(!covered.is_empty());
        served.estimate(covered[0]).unwrap();
        served.estimate(covered[0]).unwrap();
        assert!(gateway.stats().cache_hits >= 1);
    }

    #[test]
    fn served_cost_matches_direct_path() {
        let (catalog, plans) = history();
        let (direct, _) = CostEnsemble::train(&catalog, &plans, CostTrainConfig::default());
        let gateway = Gateway::new(GatewayConfig::standard());
        let served = direct.publish(&gateway);
        assert_eq!(served.served_count(), direct.micromodel_count());
        for plan in plans.iter().take(50) {
            let a = direct.predict(plan);
            let b = served.predict(plan);
            assert_eq!(a.to_bits(), b.to_bits(), "served must equal direct");
        }
    }

    #[test]
    fn observe_actual_feeds_the_controller_without_repredicting() {
        let (catalog, plans) = history();
        let (direct, _) = LearnedCardinality::train(&catalog, &plans, TrainConfig::default());
        let gateway = Gateway::new(GatewayConfig::standard());
        let served = direct.publish(&gateway);
        let mut controller = AutonomyController::new(gateway.clone(), adas_obs::Obs::disabled());
        let covered: Vec<&LogicalPlan> = plans.iter().filter(|p| served.covers(p)).collect();
        assert!(!covered.is_empty());
        let plan = covered[0];
        // No estimate yet: nothing stashed.
        assert!(served
            .observe_actual(plan, 100.0, &mut controller, 0.0)
            .is_none());
        served.estimate(plan).unwrap();
        let requests_before = gateway.stats().requests;
        let actions = served.observe_actual(plan, 100.0, &mut controller, 1.0);
        assert!(actions.is_some(), "stashed prediction is consumed");
        assert_eq!(
            gateway.stats().requests,
            requests_before,
            "feedback must not re-predict"
        );
        // Consumed: a second outcome for the same estimate is rejected.
        assert!(served
            .observe_actual(plan, 100.0, &mut controller, 2.0)
            .is_none());
    }

    #[test]
    fn served_cost_observe_actual_roundtrip() {
        let (catalog, plans) = history();
        let (direct, _) = CostEnsemble::train(&catalog, &plans, CostTrainConfig::default());
        let gateway = Gateway::new(GatewayConfig::standard());
        let served = direct.publish(&gateway);
        let mut controller = AutonomyController::new(gateway.clone(), adas_obs::Obs::disabled());
        let plan = &plans[0];
        served.predict(plan);
        assert!(served
            .observe_actual(plan, 1234.5, &mut controller, 1.0)
            .is_some());
        assert!(served
            .observe_actual(plan, 1234.5, &mut controller, 2.0)
            .is_none());
    }

    #[test]
    fn republish_hot_swaps_versions() {
        let (catalog, plans) = history();
        let (direct, _) = LearnedCardinality::train(&catalog, &plans, TrainConfig::default());
        let gateway = Gateway::new(GatewayConfig::standard());
        let first = direct.publish(&gateway);
        let second = direct.publish(&gateway);
        assert_eq!(first.served_count(), second.served_count());
        // Same handles, bumped versions.
        let sig = *first.handles.keys().next().unwrap();
        assert_eq!(first.handles[&sig], second.handles[&sig]);
        assert_eq!(
            gateway.current_version(first.handles[&sig]).unwrap(),
            Some(2)
        );
    }
}
