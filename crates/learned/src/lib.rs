//! Learned query-engine components.
//!
//! Implements the query-engine-layer learning of Sec 4.2 under its guiding
//! principle — "minimize changes to the existing optimizer and supplement it
//! with learned components", all of them *externalized* from the engine:
//!
//! * [`features`] — plan featurization shared by every model.
//! * [`cardinality`] — per-template cardinality **micromodels** with the
//!   pruning step that retains "only those that would actually improve
//!   performance" (\[49\], CLEO). Falls back to the default estimator for
//!   templates without a model. Trains either from a plan history or from
//!   the engine's execution-feedback store (`train_from_feedback`), the
//!   Peregrine loop closed.
//! * [`cost`] — learned cost micromodels plus the **meta ensemble** "that
//!   corrects and combines predictions from individual models to increase
//!   coverage" (\[46\]).
//! * [`steering`] — rule-hint steering (Bao adapted to production, [35,
//!   51]): a per-template contextual bandit restricted to **small
//!   incremental steps** (Hamming distance 1 in rule-config space) and
//!   guarded by a **validation model** against regressions.
//! * [`serving`] — gateway-served twins of the estimators: the fitted
//!   models are published into a `serve::Gateway` so optimizer-facing
//!   predictions flow through versioned, cached, breaker-guarded serving.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cardinality;
pub mod cost;
pub mod features;
pub mod serving;
pub mod steering;

pub use cardinality::{LearnedCardinality, MicromodelReport};
pub use cost::{CostEnsemble, CostEnsembleReport};
pub use serving::{ServedCardinality, ServedCost};
pub use steering::{SteeringConfig, SteeringController, SteeringStats};
