//! Plan featurization shared by the learned models.
//!
//! Features are deliberately simple and interpretable (Insight 1): the
//! default estimator's own output (log-scaled), basic plan-shape counts, and
//! the leading filter literals. Per-template models see instances of a
//! single plan shape, so a handful of features suffices.

use adas_engine::cardinality::{CardinalityModel, DefaultEstimator};
use adas_engine::cost::CostModel;
use adas_workload::catalog::Catalog;
use adas_workload::plan::{LogicalPlan, PlanKind};

/// Number of leading filter literals included in the feature vector.
pub const N_LITERALS: usize = 4;

/// Total feature-vector width produced by [`featurize`].
pub const WIDTH: usize = 4 + N_LITERALS;

/// Extracts the feature vector for a plan:
/// `[log(default_rows), log(default_cost), node_count, join_count,
/// literal_0..literal_3]` (missing literals are zero).
pub fn featurize(plan: &LogicalPlan, catalog: &Catalog, cost_model: &CostModel) -> Vec<f64> {
    let est = DefaultEstimator::new(catalog);
    let rows = est.estimate(plan).unwrap_or(1.0).max(1.0);
    let cost = cost_model.total_cost(plan, &est).unwrap_or(1.0).max(1.0);
    let mut features = Vec::with_capacity(WIDTH);
    features.push(rows.ln());
    features.push(cost.ln());
    features.push(plan.node_count() as f64);
    features.push(
        plan.iter()
            .filter(|n| matches!(n.kind, PlanKind::Join { .. }))
            .count() as f64,
    );
    let mut literals = plan
        .iter()
        .filter_map(|n| match &n.kind {
            PlanKind::Filter { predicate } => Some(predicate.clauses.iter().map(|c| c.value)),
            _ => None,
        })
        .flatten();
    for _ in 0..N_LITERALS {
        features.push(literals.next().unwrap_or(0) as f64);
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_workload::plan::{CmpOp, Predicate};

    #[test]
    fn feature_vector_shape_and_content() {
        let catalog = Catalog::standard();
        let cm = CostModel::default();
        let plan = LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, 100)),
            LogicalPlan::scan("users"),
            0,
            0,
        );
        let f = featurize(&plan, &catalog, &cm);
        assert_eq!(f.len(), WIDTH);
        assert!(f[0] > 0.0); // log rows
        assert!(f[1] > 0.0); // log cost
        assert_eq!(f[2], 4.0); // node count
        assert_eq!(f[3], 1.0); // join count
        assert_eq!(f[4], 100.0); // first literal
        assert_eq!(f[5], 0.0); // padding
    }

    #[test]
    fn literal_changes_move_features() {
        let catalog = Catalog::standard();
        let cm = CostModel::default();
        let mk = |v| LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, v));
        let a = featurize(&mk(100), &catalog, &cm);
        let b = featurize(&mk(500), &catalog, &cm);
        assert_ne!(a[0], b[0]); // default estimate shifts
        assert_ne!(a[4], b[4]); // literal shifts
        assert_eq!(a[2], b[2]); // shape identical
    }
}
