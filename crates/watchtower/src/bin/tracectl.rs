//! `tracectl` — watchtower analyses over an exported trace JSON file.
//!
//! ```text
//! tracectl slo <trace.json>                  SLO windows and burn alerts
//! tracectl incidents <trace.json>            reconstructed incidents
//! tracectl critpath <trace.json>             critical-path profile
//! tracectl critpath <trace.json> --collapsed collapsed stacks (flamegraph)
//! tracectl summary <trace.json>              all three, one JSON document
//! ```
//!
//! Traces come from [`Obs::export_json`] or [`Obs::export_stream`]; the
//! analyses use [`adas_watchtower::default_specs`]. All JSON output is
//! canonical — byte-identical for byte-identical traces.
//!
//! [`Obs::export_json`]: adas_obs::Obs::export_json
//! [`Obs::export_stream`]: adas_obs::Obs::export_stream

use adas_obs::Trace;
use adas_watchtower::{
    analyze, collapsed_stacks, critical_path, default_specs, evaluate, reconstruct,
    to_canonical_json,
};
use std::process::ExitCode;

const USAGE: &str = "usage: tracectl <slo|incidents|critpath|summary> <trace.json> [--collapsed]";

fn load_trace(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("tracectl: read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("tracectl: parse {path}: {e:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let collapsed = args.iter().any(|a| a == "--collapsed");
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let (command, path) = match (positional.next(), positional.next()) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match load_trace(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let specs = default_specs();
    match command {
        "slo" => println!("{}", to_canonical_json(&evaluate(&trace, &specs))),
        "incidents" => println!("{}", to_canonical_json(&reconstruct(&trace))),
        "critpath" if collapsed => print!("{}", collapsed_stacks(&trace)),
        "critpath" => println!("{}", to_canonical_json(&critical_path(&trace))),
        "summary" => println!("{}", to_canonical_json(&analyze(&trace, &specs))),
        other => {
            eprintln!("tracectl: unknown command `{other}`\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
