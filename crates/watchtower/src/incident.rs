//! Causal incident reconstruction.
//!
//! The flight recorder captures an incident as scattered records: a fault
//! injection event, a burst of vetoed `degraded_serve` decisions, breaker
//! transitions, an `autonomy_incident` trigger, and finally a rollback or
//! demote deployment. This module stitches them back into per-model
//! **incidents** using the causal links the records already carry — the
//! model id on events, decisions, and deployments, and the trace's total
//! sequence order.
//!
//! Linking rules (all keyed by model, scanned in `seq` order, so the result
//! is invariant under any permutation of the trace's record vectors):
//!
//! - An incident **opens** at the first `model_fault_injected` event,
//!   vetoed `degraded_serve` decision, `breaker_transition` event, or
//!   `autonomy_incident` decision for a model with no open incident.
//! - While open, matching records append to the incident's timeline
//!   (capped per stage; full counts are kept separately). Chaos-runner
//!   `fault_injected` events carry no model and attach to *every* open
//!   incident as context.
//! - The incident **closes** at the first rollback or demote deployment
//!   for the model whose cause names an autonomy-loop trigger (manual,
//!   bootstrap, and candidate-housekeeping causes don't count) — that
//!   deployment becomes the [`Resolution`].
//! - The **root cause** is the earliest `model_fault_injected` entry in
//!   the timeline when one exists (the injected fault explains the rest),
//!   otherwise the opening record.

use adas_obs::{DeploymentKind, Trace};
use serde::Serialize;
use std::collections::HashMap;

/// Timeline entries kept per stage; beyond this, only counters advance.
const TIMELINE_CAP_PER_STAGE: usize = 8;

/// One record on an incident's timeline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimelineEntry {
    /// Sequence number of the underlying record.
    pub seq: u64,
    /// Simulated time of the record.
    pub sim_time: f64,
    /// Which linking stage matched: `fault_injected`, `degraded_serve`,
    /// `breaker_transition`, `autonomy_trigger`, `faults_cleared`,
    /// `chaos_fault`, or `deployment`.
    pub stage: String,
    /// Stage-specific detail (event fields, fallback cause, deployment
    /// kind/version/cause).
    pub detail: String,
}

/// The deployment that closed an incident.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Resolution {
    /// Deployment kind name (`rollback` or `demote`).
    pub kind: String,
    /// Version the deployment concerned.
    pub version: u64,
    /// The loop cause that triggered it (e.g. `guard_trip_streak`,
    /// `slo_burn`).
    pub cause: String,
    /// Simulated time of the deployment.
    pub sim_time: f64,
}

/// One reconstructed incident.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Incident {
    /// Ordinal in opening order.
    pub id: u64,
    /// Model the incident concerns.
    pub model: String,
    /// Simulated time the incident opened.
    pub opened_at: f64,
    /// Simulated time of the resolution, if one landed.
    pub closed_at: Option<f64>,
    /// The blamed record.
    pub root_cause: TimelineEntry,
    /// The closing deployment, if any.
    pub resolution: Option<Resolution>,
    /// Total vetoed `degraded_serve` decisions attributed (timeline caps;
    /// this does not).
    pub degraded_serves: u64,
    /// Total breaker transitions attributed.
    pub breaker_transitions: u64,
    /// Timeline in sequence order, capped per stage.
    pub timeline: Vec<TimelineEntry>,
}

/// All incidents reconstructed from one trace, in opening order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IncidentReport {
    /// The incidents.
    pub incidents: Vec<Incident>,
}

/// One trace record flattened into the scan, in a form the state machine
/// can consume.
struct Item {
    seq: u64,
    sim_time: f64,
    /// `None` for chaos-runner faults, which carry no model.
    model: Option<String>,
    stage: &'static str,
    detail: String,
    opens: bool,
    resolution: Option<Resolution>,
}

fn join_fields(fields: &[(String, String)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// True when a rollback/demote cause names an autonomy-loop trigger rather
/// than operator action or candidate housekeeping.
fn is_loop_cause(cause: &str) -> bool {
    cause != "manual"
        && cause != "bootstrap"
        && cause != "restaged"
        && !cause.starts_with("superseded")
}

fn gather(trace: &Trace) -> Vec<Item> {
    let mut items = Vec::new();
    for e in &trace.events {
        match e.name.as_str() {
            "model_fault_injected" => {
                if let Some(model) = e.field("model") {
                    items.push(Item {
                        seq: e.seq,
                        sim_time: e.sim_time,
                        model: Some(model.to_string()),
                        stage: "fault_injected",
                        detail: join_fields(&e.fields),
                        opens: true,
                        resolution: None,
                    });
                }
            }
            "model_faults_cleared" => {
                if let Some(model) = e.field("model") {
                    items.push(Item {
                        seq: e.seq,
                        sim_time: e.sim_time,
                        model: Some(model.to_string()),
                        stage: "faults_cleared",
                        detail: String::new(),
                        opens: false,
                        resolution: None,
                    });
                }
            }
            "breaker_transition" => {
                if let Some(model) = e.field("model") {
                    items.push(Item {
                        seq: e.seq,
                        sim_time: e.sim_time,
                        model: Some(model.to_string()),
                        stage: "breaker_transition",
                        detail: join_fields(&e.fields),
                        opens: true,
                        resolution: None,
                    });
                }
            }
            "fault_injected" => {
                // Chaos-runner faults have no model; they attach to every
                // open incident as context.
                items.push(Item {
                    seq: e.seq,
                    sim_time: e.sim_time,
                    model: None,
                    stage: "chaos_fault",
                    detail: join_fields(&e.fields),
                    opens: false,
                    resolution: None,
                });
            }
            _ => {}
        }
    }
    for d in &trace.decisions {
        let stage = match d.decision.as_str() {
            "degraded_serve" if d.vetoed => "degraded_serve",
            "autonomy_incident" => "autonomy_trigger",
            _ => continue,
        };
        items.push(Item {
            seq: d.seq,
            sim_time: d.sim_time,
            model: Some(d.model_id.clone()),
            stage,
            detail: d.verdict.clone(),
            opens: true,
            resolution: None,
        });
    }
    for d in &trace.deployments {
        let closing = matches!(d.kind, DeploymentKind::Rollback | DeploymentKind::Demote)
            && is_loop_cause(&d.cause);
        items.push(Item {
            seq: d.seq,
            sim_time: d.sim_time,
            model: Some(d.model_id.clone()),
            stage: "deployment",
            detail: format!("{} v{} cause={}", d.kind.name(), d.version, d.cause),
            opens: false,
            resolution: closing.then(|| Resolution {
                kind: d.kind.name().to_string(),
                version: d.version,
                cause: d.cause.clone(),
                sim_time: d.sim_time,
            }),
        });
    }
    items.sort_by_key(|i| i.seq);
    items
}

fn push_capped(incident: &mut Incident, entry: TimelineEntry) {
    let in_stage = incident
        .timeline
        .iter()
        .filter(|t| t.stage == entry.stage)
        .count();
    if in_stage < TIMELINE_CAP_PER_STAGE {
        incident.timeline.push(entry);
    }
}

/// Reconstructs incidents from a trace. The result depends only on record
/// contents and sequence numbers, never on vector order.
pub fn reconstruct(trace: &Trace) -> IncidentReport {
    let items = gather(trace);
    let mut incidents: Vec<Incident> = Vec::new();
    let mut open: HashMap<String, usize> = HashMap::new();
    for item in items {
        let entry = TimelineEntry {
            seq: item.seq,
            sim_time: item.sim_time,
            stage: item.stage.to_string(),
            detail: item.detail.clone(),
        };
        let Some(model) = &item.model else {
            // Chaos context: annotate every open incident.
            for &idx in open.values() {
                push_capped(&mut incidents[idx], entry.clone());
            }
            continue;
        };
        let slot = open.get(model).copied();
        let idx = match (slot, item.opens) {
            (Some(idx), _) => idx,
            (None, true) => {
                let idx = incidents.len();
                incidents.push(Incident {
                    id: idx as u64,
                    model: model.clone(),
                    opened_at: item.sim_time,
                    closed_at: None,
                    root_cause: entry.clone(),
                    resolution: None,
                    degraded_serves: 0,
                    breaker_transitions: 0,
                    timeline: Vec::new(),
                });
                open.insert(model.clone(), idx);
                idx
            }
            // Clears and deployments outside an incident are not
            // incident-worthy on their own.
            (None, false) => continue,
        };
        let incident = &mut incidents[idx];
        match item.stage {
            "degraded_serve" => incident.degraded_serves += 1,
            "breaker_transition" => incident.breaker_transitions += 1,
            _ => {}
        }
        push_capped(incident, entry);
        if let Some(resolution) = item.resolution {
            incident.closed_at = Some(resolution.sim_time);
            incident.resolution = Some(resolution);
            open.remove(model);
        }
    }
    // Blame the earliest injected fault when the timeline has one: the
    // injection explains the degradation that opened the incident.
    for incident in &mut incidents {
        if let Some(fault) = incident
            .timeline
            .iter()
            .find(|t| t.stage == "fault_injected")
        {
            incident.root_cause = fault.clone();
        }
    }
    IncidentReport { incidents }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_obs::{Obs, Provenance};

    fn degraded(obs: &Obs, model: &str, version: u64, cause: &str, sim_time: f64) {
        obs.record_decision(
            "serve.gateway",
            "degraded_serve",
            &Provenance::new(model, version, 0),
            0.0,
            None,
            cause,
            true,
            0,
            sim_time,
        );
    }

    #[test]
    fn poison_to_rollback_reconstructs_one_incident() {
        let obs = Obs::recording();
        obs.event(
            "serve.gateway",
            "model_fault_injected",
            5.0,
            &[
                ("model", "card"),
                ("kind", "poison"),
                ("scope", "version"),
                ("version", "2"),
            ],
        );
        degraded(&obs, "card", 2, "guarded", 6.0);
        degraded(&obs, "card", 2, "guarded", 7.0);
        obs.event(
            "serve.gateway",
            "breaker_transition",
            8.0,
            &[("model", "card"), ("from", "Closed"), ("to", "Open")],
        );
        obs.record_deployment(
            "serve.gateway",
            DeploymentKind::Rollback,
            "card",
            1,
            "guard_trip_streak",
            9.0,
        );
        let report = reconstruct(&obs.snapshot());
        assert_eq!(report.incidents.len(), 1);
        let inc = &report.incidents[0];
        assert_eq!(inc.model, "card");
        assert_eq!(inc.root_cause.stage, "fault_injected");
        assert!(inc.root_cause.detail.contains("kind=poison"));
        assert_eq!(inc.degraded_serves, 2);
        assert_eq!(inc.breaker_transitions, 1);
        let res = inc.resolution.as_ref().expect("closed");
        assert_eq!((res.kind.as_str(), res.version), ("rollback", 1));
        assert_eq!(inc.closed_at, Some(9.0));
    }

    #[test]
    fn manual_and_housekeeping_deployments_do_not_close() {
        let obs = Obs::recording();
        degraded(&obs, "card", 3, "breaker_open", 1.0);
        obs.record_deployment(
            "serve.gateway",
            DeploymentKind::Demote,
            "card",
            3,
            "superseded_by_publish",
            2.0,
        );
        obs.record_deployment(
            "serve.gateway",
            DeploymentKind::Rollback,
            "card",
            2,
            "manual",
            3.0,
        );
        let report = reconstruct(&obs.snapshot());
        assert_eq!(report.incidents.len(), 1);
        assert!(report.incidents[0].resolution.is_none());
        // Both deployments still appear on the timeline as context.
        let deploys = report.incidents[0]
            .timeline
            .iter()
            .filter(|t| t.stage == "deployment")
            .count();
        assert_eq!(deploys, 2);
    }

    #[test]
    fn incidents_are_per_model_and_reopen_after_resolution() {
        let obs = Obs::recording();
        degraded(&obs, "card", 2, "shed", 1.0);
        degraded(&obs, "cost", 5, "timeout", 2.0);
        obs.record_deployment(
            "serve.gateway",
            DeploymentKind::Rollback,
            "card",
            1,
            "breaker_open_streak",
            3.0,
        );
        degraded(&obs, "card", 1, "shed", 4.0);
        let report = reconstruct(&obs.snapshot());
        assert_eq!(report.incidents.len(), 3);
        let models: Vec<&str> = report.incidents.iter().map(|i| i.model.as_str()).collect();
        assert_eq!(models, ["card", "cost", "card"]);
        assert!(report.incidents[0].resolution.is_some());
        assert!(report.incidents[2].resolution.is_none());
    }

    #[test]
    fn chaos_faults_attach_to_open_incidents_only() {
        let obs = Obs::recording();
        obs.event(
            "faultsim.chaos",
            "fault_injected",
            0.5,
            &[("kind", "crash")],
        );
        degraded(&obs, "card", 2, "guarded", 1.0);
        obs.event(
            "faultsim.chaos",
            "fault_injected",
            1.5,
            &[("kind", "stall")],
        );
        let report = reconstruct(&obs.snapshot());
        assert_eq!(report.incidents.len(), 1);
        let chaos: Vec<&str> = report.incidents[0]
            .timeline
            .iter()
            .filter(|t| t.stage == "chaos_fault")
            .map(|t| t.detail.as_str())
            .collect();
        assert_eq!(chaos, ["kind=stall"]);
    }
}
