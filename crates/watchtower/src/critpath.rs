//! Critical-path profiling over the span forest.
//!
//! Spans form a forest via parent links (a parent missing from the trace —
//! e.g. truncated by a delta snapshot — makes a span top-level). The
//! **critical path** is the chain you get by starting at the last-finishing
//! top-level span and repeatedly descending into the last-finishing child:
//! the spine of simulated time the run could not have avoided. Each step
//! carries its **self time** — duration minus the part covered by the step's
//! chosen child — and the report also attributes self time per component
//! across *all* spans (duration minus every child's overlap), which is what
//! the collapsed-stack export feeds to flamegraph renderers.
//!
//! Everything here is a pure function of the trace: same trace bytes, same
//! report bytes. Ties (identical end times) break on the higher sequence
//! number, which replays reproduce exactly.

use adas_obs::{SpanId, SpanRecord, Trace};
use serde::Serialize;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};

/// Parent-walk depth cap for untrusted traces (`tracectl` input): a parent
/// cycle in a hand-edited JSON file terminates instead of hanging.
const MAX_DEPTH: usize = 256;

/// One span on the critical path.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PathStep {
    /// Component that opened the span.
    pub component: String,
    /// Span name.
    pub name: String,
    /// Simulated start time.
    pub start: f64,
    /// Simulated end time.
    pub end: f64,
    /// Ticks of this step not covered by any deeper step on the path, so
    /// the steps' self times always sum to exactly the covered part of the
    /// path (time goes to the deepest span that holds it).
    pub self_ticks: f64,
}

/// Aggregate self time of one component across every span it opened.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ComponentSelfTime {
    /// Component name (`(untracked)` for envelope time outside every
    /// top-level span).
    pub component: String,
    /// Total self ticks.
    pub self_ticks: f64,
}

/// The critical-path profile of one trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CritPathReport {
    /// Simulated envelope of the trace: latest span end minus earliest
    /// span start.
    pub total_ticks: f64,
    /// Length of the critical path (the envelope: the path spine spans the
    /// whole profiled interval, so this never exceeds `total_ticks` and
    /// never undercuts the longest single span).
    pub path_ticks: f64,
    /// Path ticks not attributed to any step's self time (gaps between the
    /// envelope and the chain of spans).
    pub idle_ticks: f64,
    /// The path, root first.
    pub path: Vec<PathStep>,
    /// Per-component self time over all spans, sorted by component.
    pub self_time: Vec<ComponentSelfTime>,
}

/// Overlap in ticks between two spans, clamped at zero.
fn overlap(a: &SpanRecord, b: &SpanRecord) -> f64 {
    (a.end.min(b.end) - a.start.max(b.start)).max(0.0)
}

/// Self time of span `i`: duration minus every child's overlap, clamped at
/// zero (children overlapping each other can over-subtract; clamping keeps
/// the attribution deterministic and non-negative).
fn span_self(spans: &[SpanRecord], children: &[Vec<usize>], i: usize) -> f64 {
    let covered: f64 = children[i]
        .iter()
        .map(|&c| overlap(&spans[i], &spans[c]))
        .sum();
    (spans[i].duration() - covered).max(0.0)
}

/// Index spans by id and group children under their parents. A parent id
/// absent from the trace (or a self-parent) makes the span top-level.
fn build_forest(spans: &[SpanRecord]) -> (Vec<Vec<usize>>, Vec<usize>) {
    let index: HashMap<SpanId, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut top = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s
            .parent
            .and_then(|p| index.get(&p).copied())
            .filter(|&p| p != i)
        {
            Some(p) => children[p].push(i),
            None => top.push(i),
        }
    }
    (children, top)
}

/// Ticks of `[s, e)` already covered by the merged, disjoint, sorted
/// interval list.
fn covered_within(covered: &[(f64, f64)], s: f64, e: f64) -> f64 {
    covered
        .iter()
        .map(|&(cs, ce)| (e.min(ce) - s.max(cs)).max(0.0))
        .sum()
}

/// Inserts `[s, e)` into the merged, disjoint, sorted interval list.
fn insert_interval(covered: &mut Vec<(f64, f64)>, s: f64, e: f64) {
    if e <= s {
        return;
    }
    let (mut s, mut e) = (s, e);
    covered.retain(|&(cs, ce)| {
        if cs <= e && ce >= s {
            s = s.min(cs);
            e = e.max(ce);
            false
        } else {
            true
        }
    });
    let at = covered.partition_point(|&(cs, _)| cs < s);
    covered.insert(at, (s, e));
}

/// Last-finishing span among `candidates` (ties break on higher seq).
fn last_finishing(spans: &[SpanRecord], candidates: &[usize]) -> Option<usize> {
    candidates.iter().copied().max_by(|&a, &b| {
        spans[a]
            .end
            .partial_cmp(&spans[b].end)
            .unwrap_or(Ordering::Equal)
            .then(spans[a].seq.cmp(&spans[b].seq))
    })
}

/// Profiles the trace's span forest. An empty trace yields an all-zero
/// report.
pub fn critical_path(trace: &Trace) -> CritPathReport {
    let spans = &trace.spans;
    if spans.is_empty() {
        return CritPathReport {
            total_ticks: 0.0,
            path_ticks: 0.0,
            idle_ticks: 0.0,
            path: Vec::new(),
            self_time: Vec::new(),
        };
    }
    let (children, top) = build_forest(spans);
    let env_start = spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
    let env_end = spans
        .iter()
        .map(|s| s.end)
        .fold(f64::NEG_INFINITY, f64::max)
        .max(env_start);
    let total_ticks = (env_end - env_start).max(0.0);

    // Walk the spine: last-finishing top-level span, then last-finishing
    // child at each level.
    let mut path_idx = Vec::new();
    let mut cursor = last_finishing(spans, &top);
    while let Some(i) = cursor {
        if path_idx.len() >= MAX_DEPTH {
            break;
        }
        path_idx.push(i);
        cursor = last_finishing(spans, &children[i]);
    }
    // Attribute each tick of the path to the deepest step holding it:
    // walking leaf → root against a merged coverage set makes the steps'
    // self times sum to exactly the union of the path's intervals, so
    // `idle_ticks` is a true gap measure rather than a clamp artifact.
    let mut covered: Vec<(f64, f64)> = Vec::new();
    let mut selfs = vec![0.0; path_idx.len()];
    for (pos, &i) in path_idx.iter().enumerate().rev() {
        let (s, e) = (spans[i].start, spans[i].end.max(spans[i].start));
        selfs[pos] = ((e - s) - covered_within(&covered, s, e)).max(0.0);
        insert_interval(&mut covered, s, e);
    }
    let path: Vec<PathStep> = path_idx
        .iter()
        .zip(&selfs)
        .map(|(&i, &self_ticks)| PathStep {
            component: spans[i].component.clone(),
            name: spans[i].name.clone(),
            start: spans[i].start,
            end: spans[i].end,
            self_ticks,
        })
        .collect();
    let attributed: f64 = selfs.iter().sum();

    // Per-component self time over every span, plus the envelope time no
    // top-level span covers at all.
    let mut by_component: BTreeMap<String, f64> = BTreeMap::new();
    for i in 0..spans.len() {
        *by_component
            .entry(spans[i].component.clone())
            .or_insert(0.0) += span_self(spans, &children, i);
    }
    let mut intervals: Vec<(f64, f64)> = top
        .iter()
        .map(|&i| (spans[i].start, spans[i].end.max(spans[i].start)))
        .collect();
    intervals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
    let mut covered = 0.0;
    let mut frontier = env_start;
    for (s, e) in intervals {
        let s = s.max(frontier);
        if e > s {
            covered += e - s;
            frontier = e;
        }
    }
    let untracked = (total_ticks - covered).max(0.0);
    if untracked > 0.0 {
        *by_component.entry("(untracked)".to_string()).or_insert(0.0) += untracked;
    }
    let self_time = by_component
        .into_iter()
        .map(|(component, self_ticks)| ComponentSelfTime {
            component,
            self_ticks,
        })
        .collect();

    CritPathReport {
        total_ticks,
        path_ticks: total_ticks,
        idle_ticks: (total_ticks - attributed).max(0.0),
        path,
        self_time,
    }
}

/// Collapsed-stack (flamegraph-format) export: one line per distinct stack,
/// `component:name;...;component:name <milliticks>`, sorted, with self time
/// scaled to integer milliticks (zero-valued stacks are dropped). Pipe the
/// output straight into any flamegraph renderer.
pub fn collapsed_stacks(trace: &Trace) -> String {
    let spans = &trace.spans;
    let (children, _) = build_forest(spans);
    let index: HashMap<SpanId, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for i in 0..spans.len() {
        let value = (span_self(spans, &children, i) * 1000.0).round() as u64;
        if value == 0 {
            continue;
        }
        // Walk to the root, then reverse into root-first frames.
        let mut chain = vec![i];
        let mut cursor = i;
        while let Some(p) = spans[cursor]
            .parent
            .and_then(|p| index.get(&p).copied())
            .filter(|&p| p != cursor)
        {
            if chain.len() >= MAX_DEPTH || chain.contains(&p) {
                break;
            }
            chain.push(p);
            cursor = p;
        }
        let stack = chain
            .iter()
            .rev()
            .map(|&j| format!("{}:{}", spans[j].component, spans[j].name))
            .collect::<Vec<_>>()
            .join(";");
        *stacks.entry(stack).or_insert(0) += value;
    }
    let mut out = String::new();
    for (stack, value) in &stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_obs::Obs;

    #[test]
    fn path_follows_last_finishing_children() {
        let obs = Obs::recording();
        let root = obs.span_enter("engine", "run_job", 0.0);
        let fast = obs.span_enter("engine.exec", "stage-0", 1.0);
        obs.span_exit(fast, 2.0);
        let slow = obs.span_enter("engine.exec", "stage-1", 2.0);
        obs.span_exit(slow, 9.0);
        obs.span_exit(root, 10.0);
        let report = critical_path(&obs.snapshot());
        assert_eq!(report.total_ticks, 10.0);
        assert_eq!(report.path_ticks, 10.0);
        let names: Vec<&str> = report.path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["run_job", "stage-1"]);
        // Root self = 10 - overlap(2..9) = 3; leaf self = 7; idle = 0.
        assert_eq!(report.path[0].self_ticks, 3.0);
        assert_eq!(report.path[1].self_ticks, 7.0);
        assert_eq!(report.idle_ticks, 0.0);
    }

    #[test]
    fn self_time_accounts_for_untracked_gaps() {
        let obs = Obs::recording();
        let a = obs.span_enter("engine", "a", 0.0);
        obs.span_exit(a, 4.0);
        // Gap 4..6 with no span at all.
        let b = obs.span_enter("serve", "b", 6.0);
        obs.span_exit(b, 10.0);
        let report = critical_path(&obs.snapshot());
        assert_eq!(report.total_ticks, 10.0);
        let untracked = report
            .self_time
            .iter()
            .find(|c| c.component == "(untracked)")
            .expect("gap attributed");
        assert_eq!(untracked.self_ticks, 2.0);
    }

    #[test]
    fn collapsed_stacks_are_sorted_and_scaled() {
        let obs = Obs::recording();
        let root = obs.span_enter("engine", "run", 0.0);
        let child = obs.span_enter("engine.exec", "stage-0", 0.0);
        obs.span_exit(child, 1.5);
        obs.span_exit(root, 2.0);
        let out = collapsed_stacks(&obs.snapshot());
        assert_eq!(out, "engine:run 500\nengine:run;engine.exec:stage-0 1500\n");
    }

    #[test]
    fn empty_trace_profiles_to_zero() {
        let report = critical_path(&Trace::default());
        assert_eq!(report.total_ticks, 0.0);
        assert!(report.path.is_empty() && report.self_time.is_empty());
    }
}
