//! The SLO engine: declarative objectives evaluated over tumbling
//! simulated-time windows, with multi-window burn-rate alerts.
//!
//! An SLO says "`target` fraction of events must be good". Each spec maps
//! trace records to good/bad events — span durations against a latency
//! threshold, decision vetoes, feedback-latency budgets — and buckets them
//! into tumbling windows of `window_ticks` simulated seconds anchored at
//! time zero. A window's **burn rate** is how fast it consumed the error
//! budget: `bad_fraction / (1 - target)`, so 1.0 means exactly on budget.
//! Alerts use the classic two-window rule: fire only when both the fast
//! (short) and slow (long) trailing averages are at or above
//! [`SloSpec::alert_burn`] — the fast window catches regressions quickly,
//! the slow window suppresses blips.
//!
//! The engine is incremental: feed it [`Obs::snapshot_since`] deltas online
//! (each record counted once) or a whole trace at rest. Only *complete*
//! windows — those the trace's clock has fully passed — are reported, so a
//! half-filled trailing window never skews a burn rate.
//!
//! [`Obs::snapshot_since`]: adas_obs::Obs::snapshot_since

use adas_obs::{Histogram, Trace};
use adas_serve::HealthSignal;
use adas_simkern::Window;
use serde::Serialize;
use std::collections::BTreeMap;

/// What a spec measures, and what counts as a bad event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SloObjective {
    /// Span durations of a component: a span is bad when it runs longer
    /// than `threshold_ticks`. The per-window quantile estimate comes from
    /// the same fixed-bucket histogram machinery the metrics registry uses.
    Latency {
        /// Component whose spans are measured.
        component: String,
        /// Quantile reported per window (e.g. `0.99`).
        quantile: f64,
        /// Simulated-tick duration above which a span is bad.
        threshold_ticks: f64,
    },
    /// Decision records of a component: a decision is bad when it was
    /// vetoed (degraded serves, guardrail blocks, incident triggers).
    ErrorRate {
        /// Component whose decisions are measured.
        component: String,
    },
    /// Decision records of a component: a decision is bad when its
    /// feedback latency exceeded the budget.
    Staleness {
        /// Component whose decisions are measured.
        component: String,
        /// Maximum acceptable `feedback_latency_ticks`.
        max_feedback_ticks: u64,
    },
}

impl SloObjective {
    /// The component this objective watches.
    pub fn component(&self) -> &str {
        match self {
            SloObjective::Latency { component, .. }
            | SloObjective::ErrorRate { component }
            | SloObjective::Staleness { component, .. } => component,
        }
    }
}

/// One declarative SLO.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloSpec {
    /// Human-readable spec name (stable across runs — it keys the report).
    pub name: String,
    /// What is measured and what counts as bad.
    pub objective: SloObjective,
    /// Required fraction of good events, in `(0, 1)` (e.g. `0.99`).
    pub target: f64,
    /// Tumbling window width in simulated ticks, anchored at time zero.
    pub window_ticks: f64,
    /// Windows averaged for the fast (short) burn signal.
    pub fast_windows: u32,
    /// Windows averaged for the slow (long) burn signal.
    pub slow_windows: u32,
    /// Burn rate at or above which (in both trailing averages) a window
    /// raises a [`BurnAlert`].
    pub alert_burn: f64,
}

impl SloSpec {
    /// An error-rate spec with the default 1-fast/3-slow windows and a
    /// 2x-budget alert line.
    pub fn error_rate(name: &str, component: &str, target: f64, window_ticks: f64) -> Self {
        Self {
            name: name.to_string(),
            objective: SloObjective::ErrorRate {
                component: component.to_string(),
            },
            target,
            window_ticks,
            fast_windows: 1,
            slow_windows: 3,
            alert_burn: 2.0,
        }
    }

    /// A staleness-budget spec with the default windows and alert line.
    pub fn staleness(
        name: &str,
        component: &str,
        target: f64,
        window_ticks: f64,
        max_feedback_ticks: u64,
    ) -> Self {
        Self {
            name: name.to_string(),
            objective: SloObjective::Staleness {
                component: component.to_string(),
                max_feedback_ticks,
            },
            target,
            window_ticks,
            fast_windows: 1,
            slow_windows: 3,
            alert_burn: 2.0,
        }
    }

    /// A latency-quantile spec with the default windows and alert line.
    pub fn latency(
        name: &str,
        component: &str,
        quantile: f64,
        threshold_ticks: f64,
        window_ticks: f64,
    ) -> Self {
        Self {
            name: name.to_string(),
            objective: SloObjective::Latency {
                component: component.to_string(),
                quantile,
                threshold_ticks,
            },
            target: quantile,
            window_ticks,
            fast_windows: 1,
            slow_windows: 3,
            alert_burn: 2.0,
        }
    }

    /// The error budget: the allowed bad fraction, floored away from zero
    /// so burn rates stay finite.
    fn budget(&self) -> f64 {
        (1.0 - self.target).max(1e-9)
    }

    /// The spec's tumbling window, on the kernel's shared arithmetic so
    /// the SLO engine and the autonomy controller can never disagree on
    /// where a boundary tick lands.
    fn window(&self) -> Window {
        Window::new(self.window_ticks)
    }
}

/// One complete tumbling window of one spec.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WindowReport {
    /// Window ordinal (window `i` covers `[i*w, (i+1)*w)` ticks).
    pub index: u64,
    /// Window start in simulated ticks.
    pub start: f64,
    /// Events observed in the window.
    pub total: u64,
    /// Bad events observed in the window.
    pub bad: u64,
    /// `bad / total` (0 for an empty window).
    pub bad_fraction: f64,
    /// `bad_fraction / (1 - target)`.
    pub burn: f64,
    /// For latency objectives: the window's quantile estimate (the upper
    /// bound of the histogram bucket the quantile falls in, clamped to the
    /// last finite bound). `None` for other objectives or empty windows.
    pub quantile_estimate: Option<f64>,
}

/// A window where both trailing burn averages crossed the alert line.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BurnAlert {
    /// Window ordinal the alert fired at.
    pub window: u64,
    /// Simulated time of the window's end (when the alert became known).
    pub sim_time: f64,
    /// Trailing average burn over the fast windows.
    pub fast_burn: f64,
    /// Trailing average burn over the slow windows.
    pub slow_burn: f64,
}

/// Evaluation of one spec over every complete window.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpecReport {
    /// The spec evaluated.
    pub spec: SloSpec,
    /// Every complete window in index order (empty windows included, so
    /// trailing averages are well defined).
    pub windows: Vec<WindowReport>,
    /// Multi-window burn alerts in window order.
    pub alerts: Vec<BurnAlert>,
}

/// Evaluation of a whole spec set over one trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloReport {
    /// Per-spec reports, in spec order.
    pub specs: Vec<SpecReport>,
}

#[derive(Debug, Default, Clone)]
struct WindowAccum {
    total: u64,
    bad: u64,
    hist: Option<Histogram>,
}

/// Incremental SLO evaluator. Feed disjoint trace deltas (or one full
/// trace) through [`SloEngine::ingest`], then read [`SloEngine::report`]
/// or [`SloEngine::health_signal`] at any point; both consider only
/// complete windows.
#[derive(Debug, Clone)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    acc: Vec<BTreeMap<u64, WindowAccum>>,
    max_time: f64,
}

impl SloEngine {
    /// An engine over `specs` with an empty observation state.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let acc = specs.iter().map(|_| BTreeMap::new()).collect();
        Self {
            specs,
            acc,
            max_time: 0.0,
        }
    }

    /// The specs under evaluation.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Folds a trace (or an [`Obs::snapshot_since`] delta) into the window
    /// accumulators. Records must not be fed twice; metrics are ignored
    /// (they are cumulative, not per-window).
    ///
    /// [`Obs::snapshot_since`]: adas_obs::Obs::snapshot_since
    pub fn ingest(&mut self, delta: &Trace) {
        // Every record advances the engine's notion of "now" — complete
        // windows are determined by overall trace progress, not just by
        // the records a spec happens to match.
        for s in &delta.spans {
            self.max_time = self.max_time.max(s.end);
        }
        for e in &delta.events {
            self.max_time = self.max_time.max(e.sim_time);
        }
        for d in &delta.decisions {
            self.max_time = self.max_time.max(d.sim_time);
        }
        for d in &delta.deployments {
            self.max_time = self.max_time.max(d.sim_time);
        }
        for (spec, acc) in self.specs.iter().zip(&mut self.acc) {
            let win = spec.window();
            if !win.is_valid() {
                continue;
            }
            match &spec.objective {
                SloObjective::Latency {
                    component,
                    threshold_ticks,
                    ..
                } => {
                    for s in delta.spans.iter().filter(|s| &s.component == component) {
                        let duration = (s.end - s.start).max(0.0);
                        let idx = win.index_of(s.start);
                        let w = acc.entry(idx).or_default();
                        w.total += 1;
                        if duration > *threshold_ticks {
                            w.bad += 1;
                        }
                        w.hist
                            .get_or_insert_with(|| Histogram::new(&Histogram::default_bounds()))
                            .observe(duration);
                    }
                }
                SloObjective::ErrorRate { component } => {
                    for d in delta.decisions.iter().filter(|d| &d.component == component) {
                        let idx = win.index_of(d.sim_time);
                        let w = acc.entry(idx).or_default();
                        w.total += 1;
                        if d.vetoed {
                            w.bad += 1;
                        }
                    }
                }
                SloObjective::Staleness {
                    component,
                    max_feedback_ticks,
                } => {
                    for d in delta.decisions.iter().filter(|d| &d.component == component) {
                        let idx = win.index_of(d.sim_time);
                        let w = acc.entry(idx).or_default();
                        w.total += 1;
                        if d.feedback_latency_ticks > *max_feedback_ticks {
                            w.bad += 1;
                        }
                    }
                }
            }
        }
    }

    /// Complete windows of spec `i`: windows whose end the clock has
    /// passed.
    fn complete_windows(&self, i: usize) -> u64 {
        self.specs[i].window().complete_before(self.max_time)
    }

    /// The full evaluation: per-spec windows (empty ones included) and
    /// multi-window burn alerts.
    pub fn report(&self) -> SloReport {
        let specs = self
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let win = spec.window();
                let complete = self.complete_windows(i);
                let windows: Vec<WindowReport> = (0..complete)
                    .map(|idx| {
                        let accum = self.acc[i].get(&idx);
                        let total = accum.map_or(0, |a| a.total);
                        let bad = accum.map_or(0, |a| a.bad);
                        let bad_fraction = if total == 0 {
                            0.0
                        } else {
                            bad as f64 / total as f64
                        };
                        let quantile_estimate = match &spec.objective {
                            SloObjective::Latency { quantile, .. } => accum
                                .and_then(|a| a.hist.as_ref())
                                .and_then(|h| histogram_quantile(h, *quantile)),
                            _ => None,
                        };
                        WindowReport {
                            index: idx,
                            start: win.start(idx),
                            total,
                            bad,
                            bad_fraction,
                            burn: bad_fraction / spec.budget(),
                            quantile_estimate,
                        }
                    })
                    .collect();
                let alerts = burn_alerts(spec, &windows);
                SpecReport {
                    spec: spec.clone(),
                    windows,
                    alerts,
                }
            })
            .collect();
        SloReport { specs }
    }

    /// The controller-facing health signal: the worst spec's trailing burn
    /// averages at the latest complete window. `windows` is the smallest
    /// complete-window count across specs, so warm-up gating is
    /// conservative.
    pub fn health_signal(&self) -> HealthSignal {
        let report = self.report();
        let mut fast = 0.0f64;
        let mut slow = 0.0f64;
        let mut worst = f64::NEG_INFINITY;
        let mut min_windows = u64::MAX;
        for sr in &report.specs {
            let n = sr.windows.len();
            min_windows = min_windows.min(n as u64);
            if n == 0 {
                continue;
            }
            let (f, s) = trailing_burns(&sr.spec, &sr.windows, n - 1);
            if f.min(s) > worst {
                worst = f.min(s);
                fast = f;
                slow = s;
            }
        }
        if report.specs.is_empty() || min_windows == u64::MAX {
            min_windows = 0;
        }
        HealthSignal {
            fast_burn: fast,
            slow_burn: slow,
            windows: min_windows.min(u32::MAX as u64) as u32,
        }
    }
}

/// Average burn over the trailing `count` windows ending at `at`
/// (inclusive), using however many exist.
fn trailing_avg(windows: &[WindowReport], at: usize, count: u32) -> f64 {
    let count = (count.max(1) as usize).min(at + 1);
    let slice = &windows[at + 1 - count..=at];
    slice.iter().map(|w| w.burn).sum::<f64>() / count as f64
}

fn trailing_burns(spec: &SloSpec, windows: &[WindowReport], at: usize) -> (f64, f64) {
    (
        trailing_avg(windows, at, spec.fast_windows),
        trailing_avg(windows, at, spec.slow_windows),
    )
}

fn burn_alerts(spec: &SloSpec, windows: &[WindowReport]) -> Vec<BurnAlert> {
    (0..windows.len())
        .filter_map(|at| {
            let (fast_burn, slow_burn) = trailing_burns(spec, windows, at);
            (fast_burn.min(slow_burn) >= spec.alert_burn).then(|| BurnAlert {
                window: windows[at].index,
                sim_time: spec.window().end(windows[at].index),
                fast_burn,
                slow_burn,
            })
        })
        .collect()
}

/// Quantile estimate from a fixed-bucket histogram: the upper bound of the
/// bucket the quantile falls in, clamped to the last finite bound for
/// overflow observations. `None` for an empty histogram.
fn histogram_quantile(h: &Histogram, q: f64) -> Option<f64> {
    if h.count == 0 {
        return None;
    }
    let rank = (q.clamp(0.0, 1.0) * h.count as f64).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (bound, count) in h.bounds.iter().zip(&h.counts) {
        cumulative += count;
        if cumulative >= rank {
            return Some(*bound);
        }
    }
    h.bounds.last().copied()
}

/// One-shot evaluation of `specs` over a whole trace.
pub fn evaluate(trace: &Trace, specs: &[SloSpec]) -> SloReport {
    let mut engine = SloEngine::new(specs.to_vec());
    engine.ingest(trace);
    engine.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_obs::{Obs, Provenance};

    fn decision(obs: &Obs, vetoed: bool, sim_time: f64) {
        obs.record_decision(
            "serve.gateway",
            "serve",
            &Provenance::new("m", 1, 0),
            1.0,
            Some(1.0),
            if vetoed { "degraded" } else { "ok" },
            vetoed,
            0,
            sim_time,
        );
    }

    #[test]
    fn error_rate_windows_and_burn() {
        let obs = Obs::recording();
        // Window 0 (ticks 0..10): 4 good. Window 1: 2 good, 2 bad.
        for t in 0..4 {
            decision(&obs, false, t as f64);
        }
        for t in 0..2 {
            decision(&obs, false, 10.0 + t as f64);
        }
        for t in 2..4 {
            decision(&obs, true, 10.0 + t as f64);
        }
        // Clock advance past window 1 so it is complete.
        obs.event("clock", "tick", 20.5, &[]);
        let spec = SloSpec::error_rate("avail", "serve.gateway", 0.9, 10.0);
        let report = evaluate(&obs.snapshot(), &[spec]);
        let windows = &report.specs[0].windows;
        assert_eq!(windows.len(), 2);
        assert_eq!((windows[0].total, windows[0].bad), (4, 0));
        assert_eq!((windows[1].total, windows[1].bad), (4, 2));
        assert!((windows[1].burn - 5.0).abs() < 1e-9, "0.5 / 0.1 budget");
        // Fast=1 window crosses at window 1; slow=3 averages windows 0..=1
        // → (0 + 5)/2 = 2.5 ≥ 2.0 → alert fires.
        assert_eq!(report.specs[0].alerts.len(), 1);
        assert_eq!(report.specs[0].alerts[0].window, 1);
    }

    #[test]
    fn incremental_ingest_matches_one_shot() {
        let obs = Obs::recording();
        let spec = SloSpec::error_rate("avail", "serve.gateway", 0.95, 5.0);
        let mut engine = SloEngine::new(vec![spec.clone()]);
        let mut cursor = adas_obs::TraceCursor::default();
        for t in 0..40u64 {
            decision(&obs, t % 7 == 0, t as f64);
            if t % 10 == 9 {
                engine.ingest(&obs.snapshot_since(&mut cursor));
            }
        }
        engine.ingest(&obs.snapshot_since(&mut cursor));
        let one_shot = evaluate(&obs.snapshot(), &[spec]);
        assert_eq!(engine.report(), one_shot);
    }

    #[test]
    fn latency_quantile_estimates_from_buckets() {
        let obs = Obs::recording();
        for i in 0..10 {
            let s = obs.span_enter("engine.exec", "stage", i as f64);
            // Nine fast spans, one slow.
            let dur = if i == 9 { 3.0 } else { 0.01 };
            obs.span_exit(s, i as f64 + dur);
        }
        obs.event("clock", "tick", 101.0, &[]);
        let spec = SloSpec::latency("p90", "engine.exec", 0.9, 1.0, 100.0);
        let report = evaluate(&obs.snapshot(), &[spec]);
        let w = &report.specs[0].windows[0];
        assert_eq!((w.total, w.bad), (10, 1));
        // The p90 falls in the bucket covering 0.01; the p99 would catch
        // the slow span's bucket.
        let q = w.quantile_estimate.expect("non-empty window");
        assert!(q < 1.0, "p90 estimate {q} should be a fast bucket bound");
    }

    #[test]
    fn health_signal_reports_worst_spec() {
        let obs = Obs::recording();
        // serve.gateway is burning, serve.autonomy is clean.
        for t in 0..10 {
            decision(&obs, true, t as f64);
            obs.record_decision(
                "serve.autonomy",
                "serve",
                &Provenance::new("m", 1, 0),
                1.0,
                Some(1.0),
                "ok",
                false,
                0,
                t as f64,
            );
        }
        obs.event("clock", "tick", 10.5, &[]);
        let mut engine = SloEngine::new(vec![
            SloSpec::error_rate("gw", "serve.gateway", 0.9, 10.0),
            SloSpec::error_rate("auto", "serve.autonomy", 0.9, 10.0),
        ]);
        engine.ingest(&obs.snapshot());
        let h = engine.health_signal();
        assert_eq!(h.windows, 1);
        assert!(
            (h.fast_burn - 10.0).abs() < 1e-9,
            "all-bad window burns 1/0.1"
        );
    }
}
