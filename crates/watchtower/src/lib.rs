//! Watchtower: deterministic trace analytics over flight-recorder traces.
//!
//! The recorder (`adas-obs`) captures everything the autonomy loop does —
//! spans, metrics, decision provenance, typed deployment records — but a
//! million-job trace is useless until something *interprets* it. This crate
//! is that something, in three layers:
//!
//! 1. **SLO engine** ([`slo`]) — declarative SLO specs (latency quantiles
//!    from fixed-bucket histograms, error rate, staleness budgets)
//!    evaluated over tumbling simulated-time windows, with classic
//!    multi-window burn-rate alerts. Burn rates feed
//!    [`adas_serve::HealthSignal`], so the `AutonomyController` can retrain
//!    or roll back on aggregate SLO burn, not just raw streaks.
//! 2. **Causal incident reconstruction** ([`incident`]) — links fault
//!    injections → degraded/vetoed decisions → breaker transitions →
//!    rollback deployments into per-incident timelines with a blamed root
//!    cause, using model id + version and the trace's total record order.
//! 3. **Critical-path profiler** ([`critpath`]) — the longest
//!    simulated-time chain through the span forest with per-component
//!    self-time attribution, plus a collapsed-stack (flamegraph-format)
//!    text export.
//!
//! Every artifact is canonical JSON and a pure function of the trace, so
//! the same seeded run analyzes to byte-identical reports — analysis is as
//! replayable as the trace itself. The `tracectl` bin exposes all three
//! over exported trace JSON files.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod critpath;
pub mod incident;
pub mod slo;

pub use critpath::{collapsed_stacks, critical_path, ComponentSelfTime, CritPathReport, PathStep};
pub use incident::{reconstruct, Incident, IncidentReport, Resolution, TimelineEntry};
pub use slo::{evaluate, BurnAlert, SloEngine, SloObjective, SloReport, SloSpec, SpecReport};

use adas_obs::Trace;
use serde::Serialize;

/// The three analysis artifacts over one trace, bundled for `tracectl
/// summary` and the bench gate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WatchtowerReport {
    /// SLO evaluation over every spec.
    pub slo: SloReport,
    /// Reconstructed incidents.
    pub incidents: IncidentReport,
    /// Critical-path profile.
    pub critical_path: CritPathReport,
}

/// Runs all three analyses over `trace` with the given SLO specs.
pub fn analyze(trace: &Trace, specs: &[SloSpec]) -> WatchtowerReport {
    WatchtowerReport {
        slo: evaluate(trace, specs),
        incidents: reconstruct(trace),
        critical_path: critical_path(trace),
    }
}

/// Canonical JSON for any report type: deterministic field and container
/// order, so byte equality of two reports means semantic equality.
pub fn to_canonical_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("report serialization is infallible")
}

/// A reasonable default spec set for traces produced by this repo's
/// serving stack: gateway availability (non-degraded serves), gateway
/// answer staleness, and engine stage latency. `tracectl` uses these when
/// no spec file is given.
pub fn default_specs() -> Vec<SloSpec> {
    vec![
        SloSpec::error_rate("gateway-availability", "serve.gateway", 0.99, 50.0),
        SloSpec::staleness("gateway-staleness", "serve.gateway", 0.99, 50.0, 10),
        SloSpec::latency("engine-stage-p99", "engine.exec", 0.99, 64.0, 100.0),
    ]
}
