//! Cluster-initialization simulation and request policies (Sec 4.1).
//!
//! "For Azure Synapse Spark, we developed a simulator to mimic the cluster
//! initialization process and derived the optimal policy for sending
//! requests, reducing its tail latency."
//!
//! Cluster creation is a pipeline of stages (VM allocation → image pull →
//! service bootstrap) whose durations are noisy with occasional stragglers.
//! The request-sending policy decides how to handle slowness: wait it out,
//! retry after a timeout, or *hedge* (fire a second request early and take
//! the first to finish). Hedging is the tail-latency optimum the simulator
//! derives — at a small duplicate-work cost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Stage-duration model for one cluster-creation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InitModel {
    /// Median VM-allocation seconds.
    pub alloc_median: f64,
    /// Median image-pull seconds.
    pub image_median: f64,
    /// Median bootstrap seconds.
    pub bootstrap_median: f64,
    /// Probability an attempt straggles (one stage runs `straggle_factor`×).
    pub straggler_prob: f64,
    /// Multiplier applied to the straggling stage.
    pub straggle_factor: f64,
    /// Relative log-ish noise per stage.
    pub noise: f64,
}

impl Default for InitModel {
    fn default() -> Self {
        Self {
            alloc_median: 45.0,
            image_median: 60.0,
            bootstrap_median: 30.0,
            straggler_prob: 0.08,
            straggle_factor: 6.0,
            noise: 0.25,
        }
    }
}

impl InitModel {
    /// Samples one attempt's completion time.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        let jitter = |rng: &mut StdRng| 1.0 + rng.gen_range(-self.noise..=self.noise);
        let mut stages = [
            self.alloc_median * jitter(rng),
            self.image_median * jitter(rng),
            self.bootstrap_median * jitter(rng),
        ];
        if rng.gen::<f64>() < self.straggler_prob {
            let victim = rng.gen_range(0..3usize);
            stages[victim] *= self.straggle_factor;
        }
        stages.iter().sum()
    }
}

/// Request-sending policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RequestPolicy {
    /// Send one request and wait for it, however long it takes.
    Single,
    /// If the attempt exceeds `timeout_s`, cancel and start over (the
    /// original work is discarded).
    RetryAfter {
        /// Seconds before the retry fires.
        timeout_s: f64,
    },
    /// After `hedge_after_s`, fire a second attempt in parallel and take
    /// whichever finishes first.
    Hedged {
        /// Seconds before the hedge request fires.
        hedge_after_s: f64,
    },
}

/// Tail-latency evaluation of one policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct InitReport {
    /// Mean completion seconds.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile — the paper's tail-latency target.
    pub p99: f64,
    /// Mean attempts issued per request (duplicate-work cost).
    pub attempts_per_request: f64,
}

/// Simulates `n` cluster creations under `policy`.
pub fn simulate_inits(model: &InitModel, policy: RequestPolicy, n: usize, seed: u64) -> InitReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latencies = Vec::with_capacity(n);
    let mut attempts = 0usize;
    for _ in 0..n {
        let latency = match policy {
            RequestPolicy::Single => {
                attempts += 1;
                model.sample(&mut rng)
            }
            RequestPolicy::RetryAfter { timeout_s } => {
                let mut elapsed = 0.0;
                loop {
                    attempts += 1;
                    let t = model.sample(&mut rng);
                    if t <= timeout_s {
                        break elapsed + t;
                    }
                    elapsed += timeout_s;
                    // Safety valve: after many retries, accept the attempt.
                    if elapsed > timeout_s * 20.0 {
                        break elapsed + t;
                    }
                }
            }
            RequestPolicy::Hedged { hedge_after_s } => {
                attempts += 1;
                let first = model.sample(&mut rng);
                if first <= hedge_after_s {
                    first
                } else {
                    attempts += 1;
                    let second = hedge_after_s + model.sample(&mut rng);
                    first.min(second)
                }
            }
        };
        latencies.push(latency);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pct = |p: f64| latencies[((latencies.len() as f64 * p) as usize).min(latencies.len() - 1)];
    InitReport {
        mean: latencies.iter().sum::<f64>() / latencies.len() as f64,
        p50: pct(0.50),
        p99: pct(0.99),
        attempts_per_request: attempts as f64 / n as f64,
    }
}

/// Derives the hedge delay minimizing p99 over a candidate grid — the
/// "optimal policy for sending requests" the simulator exists to find.
pub fn derive_optimal_hedge(model: &InitModel, n: usize, seed: u64) -> (f64, InitReport) {
    let base = simulate_inits(model, RequestPolicy::Single, n, seed);
    let candidates = [1.1, 1.25, 1.5, 2.0, 3.0].map(|f| base.p50 * f);
    candidates
        .into_iter()
        .map(|d| {
            (
                d,
                simulate_inits(model, RequestPolicy::Hedged { hedge_after_s: d }, n, seed),
            )
        })
        .min_by(|a, b| {
            a.1.p99
                .partial_cmp(&b.1.p99)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("candidate grid is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stragglers_fatten_the_tail() {
        let clean = InitModel {
            straggler_prob: 0.0,
            ..Default::default()
        };
        let dirty = InitModel::default();
        let rc = simulate_inits(&clean, RequestPolicy::Single, 4000, 3);
        let rd = simulate_inits(&dirty, RequestPolicy::Single, 4000, 3);
        assert!(rd.p99 > rc.p99 * 2.0, "p99 {} vs {}", rd.p99, rc.p99);
        assert!((rd.p50 - rc.p50).abs() < rc.p50 * 0.2, "medians stay close");
    }

    #[test]
    fn hedging_cuts_p99_at_small_cost() {
        let model = InitModel::default();
        let single = simulate_inits(&model, RequestPolicy::Single, 4000, 7);
        let (delay, hedged) = derive_optimal_hedge(&model, 4000, 7);
        assert!(
            hedged.p99 < single.p99 * 0.75,
            "hedged p99 {} vs single {}",
            hedged.p99,
            single.p99
        );
        assert!(hedged.attempts_per_request < 1.6, "duplicate work bounded");
        assert!(delay > single.p50, "hedge fires after the median");
    }

    #[test]
    fn retry_helps_tail_but_costs_more_attempts() {
        let model = InitModel::default();
        let single = simulate_inits(&model, RequestPolicy::Single, 4000, 11);
        let retry = simulate_inits(
            &model,
            RequestPolicy::RetryAfter {
                timeout_s: single.p50 * 2.0,
            },
            4000,
            11,
        );
        assert!(retry.p99 < single.p99);
        assert!(retry.attempts_per_request > 1.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let model = InitModel::default();
        let a = simulate_inits(
            &model,
            RequestPolicy::Hedged {
                hedge_after_s: 150.0,
            },
            500,
            5,
        );
        let b = simulate_inits(
            &model,
            RequestPolicy::Hedged {
                hedge_after_s: 150.0,
            },
            500,
            5,
        );
        assert_eq!(a, b);
    }
}
