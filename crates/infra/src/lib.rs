//! Cloud infrastructure layer (Sec 4.1).
//!
//! "The cloud infrastructure manages all hardware and software resources for
//! the life cycle of data services." This crate simulates that layer and
//! implements the paper's two infrastructure themes:
//!
//! * **Modeling system behaviors** — [`machine`] simulates heterogeneous
//!   machines (SKUs) emitting CPU/container/task-time telemetry;
//!   [`behavior`] fits the Fig 1 linear models ("multiple linear models to
//!   predict machine behavior, such as CPU utilization versus task
//!   execution time or the number of running containers"); [`kea`] plugs
//!   the models into an optimizer that balances workloads "by tuning Cosmos
//!   scheduler configurations, such as the maximum running containers for
//!   each SKU".
//! * **Modeling user behaviors** — [`provision`] simulates serverless
//!   cluster-creation demand and compares static pool policies against a
//!   forecast-driven proactive policy, producing the Fig 2 QoS-vs-cost
//!   Pareto frontier.

//! # Example: fit the Fig 1 models from fleet telemetry
//!
//! ```
//! use adas_infra::behavior::fit_behavior_models;
//! use adas_infra::machine::{MachineFleet, SkuSpec};
//!
//! let fleet = MachineFleet::new(SkuSpec::standard_fleet(), 4);
//! let telemetry = fleet.generate_telemetry(24 * 7, 0.05, 1);
//! let models = fit_behavior_models(&telemetry).unwrap();
//! assert_eq!(models.len(), 2);
//! assert!(models[0].cpu_vs_containers.r_squared > 0.9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autoscale;
pub mod behavior;
pub mod initsim;
pub mod kea;
pub mod machine;
pub mod power;
pub mod provision;
pub mod vmtune;

pub use behavior::{fit_behavior_models, BehaviorModel, MachineBehavior};
pub use kea::{evaluate_caps, tune_caps, KeaReport};
pub use machine::{MachineFleet, MachineTelemetry, SkuSpec};
pub use provision::{
    simulate_provisioning, DemandModel, PoolPolicy, ProvisionConfig, ProvisionReport,
};
