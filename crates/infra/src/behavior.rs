//! The Fig 1 machine-behaviour models.
//!
//! "We employed multiple linear models to predict machine behavior, such as
//! CPU utilization versus task execution time or the number of running
//! containers." One [`MachineBehavior`] is fitted per SKU from fleet
//! telemetry: a container→CPU model and a CPU→task-time model, each with its
//! R² on the training data. Experiment F1 prints the fitted lines and R²
//! values — the reproduction of Figure 1.

use crate::machine::MachineTelemetry;
use adas_ml::dataset::Dataset;
use adas_ml::linear::LinearRegression;
use adas_ml::{MlError, Regressor, Result};
use serde::Serialize;

/// One fitted linear relationship `y = intercept + slope * x`.
#[derive(Debug, Clone, Serialize)]
pub struct BehaviorModel {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
    #[serde(skip)]
    model: LinearRegression,
}

impl BehaviorModel {
    fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        let data = Dataset::new(xs.iter().map(|&x| vec![x]).collect(), ys.to_vec())?;
        let model = LinearRegression::fit(&data)?;
        Ok(Self {
            slope: model.coefficients()[0],
            intercept: model.intercept(),
            r_squared: model.r_squared(&data),
            model,
        })
    }

    /// Predicts `y` for one `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.model.predict(&[x])
    }
}

/// The pair of Fig 1 models for one SKU.
#[derive(Debug, Clone, Serialize)]
pub struct MachineBehavior {
    /// SKU index these models describe.
    pub sku: usize,
    /// CPU utilization as a function of running containers.
    pub cpu_vs_containers: BehaviorModel,
    /// Task execution seconds as a function of CPU utilization.
    pub task_time_vs_cpu: BehaviorModel,
    /// Observations used.
    pub samples: usize,
}

/// Fits one [`MachineBehavior`] per SKU present in the telemetry.
///
/// SKUs with fewer than 3 observations are skipped (a line through fewer
/// points is meaningless). Results are ordered by SKU index.
pub fn fit_behavior_models(telemetry: &[MachineTelemetry]) -> Result<Vec<MachineBehavior>> {
    if telemetry.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    let max_sku = telemetry.iter().map(|t| t.sku).max().expect("non-empty");
    let mut out = Vec::new();
    for sku in 0..=max_sku {
        let rows: Vec<&MachineTelemetry> = telemetry.iter().filter(|t| t.sku == sku).collect();
        if rows.len() < 3 {
            continue;
        }
        let containers: Vec<f64> = rows.iter().map(|t| t.containers as f64).collect();
        let cpus: Vec<f64> = rows.iter().map(|t| t.cpu).collect();
        let tasks: Vec<f64> = rows.iter().map(|t| t.task_seconds).collect();
        out.push(MachineBehavior {
            sku,
            cpu_vs_containers: BehaviorModel::fit(&containers, &cpus)?,
            task_time_vs_cpu: BehaviorModel::fit(&cpus, &tasks)?,
            samples: rows.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineFleet, SkuSpec};

    fn models(noise: f64) -> Vec<MachineBehavior> {
        let fleet = MachineFleet::new(SkuSpec::standard_fleet(), 8);
        let telemetry = fleet.generate_telemetry(24 * 7, noise, 11);
        fit_behavior_models(&telemetry).unwrap()
    }

    #[test]
    fn recovers_true_coefficients_under_noise() {
        let models = models(0.05);
        let skus = SkuSpec::standard_fleet();
        assert_eq!(models.len(), 2);
        for m in &models {
            let sku = &skus[m.sku];
            assert!(
                (m.cpu_vs_containers.slope - sku.cpu_per_container).abs()
                    < 0.15 * sku.cpu_per_container,
                "sku {} slope {} vs true {}",
                m.sku,
                m.cpu_vs_containers.slope,
                sku.cpu_per_container
            );
            assert!(
                (m.task_time_vs_cpu.slope - sku.task_seconds_per_cpu).abs()
                    < 0.15 * sku.task_seconds_per_cpu
            );
        }
    }

    #[test]
    fn fit_quality_degrades_with_noise() {
        let clean = models(0.01);
        let noisy = models(0.30);
        for (c, n) in clean.iter().zip(&noisy) {
            assert!(c.cpu_vs_containers.r_squared > n.cpu_vs_containers.r_squared);
            assert!(c.cpu_vs_containers.r_squared > 0.95);
        }
    }

    #[test]
    fn prediction_matches_line() {
        let m = &models(0.0)[0];
        let p = m.cpu_vs_containers.predict(10.0);
        let expected = m.cpu_vs_containers.intercept + 10.0 * m.cpu_vs_containers.slope;
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_telemetry_errors() {
        assert!(fit_behavior_models(&[]).is_err());
    }
}
