//! KEA: model-driven scheduler configuration tuning (Sec 4.1, \[53\]).
//!
//! "These models were then integrated into an optimizer to balance
//! workloads by tuning Cosmos scheduler configurations, such as the maximum
//! running containers for each SKU."
//!
//! Given the fitted behaviour models and a fleet, [`tune_caps`] chooses a
//! per-SKU maximum-container cap so that every SKU runs at (no more than) a
//! target CPU utilization. [`evaluate_caps`] then measures the resulting
//! load balance against the naive uniform cap: heterogeneous SKUs under a
//! uniform cap produce hotspots on the weak SKU while the strong SKU idles.

use crate::behavior::MachineBehavior;
use crate::machine::MachineFleet;
use serde::Serialize;

/// Chooses per-SKU container caps so predicted CPU hits `target_cpu`.
///
/// Caps are clamped to the SKU's hardware maximum and to at least 1.
pub fn tune_caps(models: &[MachineBehavior], fleet: &MachineFleet, target_cpu: f64) -> Vec<usize> {
    fleet
        .skus()
        .iter()
        .enumerate()
        .map(|(sku_idx, sku)| {
            let model = models.iter().find(|m| m.sku == sku_idx);
            let cap = match model {
                Some(m) if m.cpu_vs_containers.slope > 1e-9 => {
                    ((target_cpu - m.cpu_vs_containers.intercept) / m.cpu_vs_containers.slope)
                        .floor() as i64
                }
                _ => sku.max_containers as i64,
            };
            cap.clamp(1, sku.max_containers as i64) as usize
        })
        .collect()
}

/// Evaluation of a cap configuration under a given total container demand.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct KeaReport {
    /// Per-SKU caps evaluated.
    pub caps: Vec<usize>,
    /// Containers actually placed (≤ demand if capacity ran out).
    pub placed: usize,
    /// Highest machine CPU utilization (the hotspot; paper's target).
    pub hotspot_cpu: f64,
    /// Mean machine CPU utilization.
    pub mean_cpu: f64,
    /// Standard deviation of machine CPU (imbalance measure).
    pub cpu_std: f64,
}

/// Places `demand` containers on the fleet honouring per-SKU caps
/// (water-filling: machines are filled in round-robin up to their cap) and
/// reports the resulting *true* CPU distribution.
pub fn evaluate_caps(fleet: &MachineFleet, caps: &[usize], demand: usize) -> KeaReport {
    let n = fleet.machine_count();
    let mut per_machine = vec![0usize; n];
    let mut placed = 0usize;
    let mut progressed = true;
    while placed < demand && progressed {
        progressed = false;
        for m in 0..n {
            if placed >= demand {
                break;
            }
            let cap = caps[fleet.sku_of(m)];
            if per_machine[m] < cap {
                per_machine[m] += 1;
                placed += 1;
                progressed = true;
            }
        }
    }
    let cpus: Vec<f64> = per_machine
        .iter()
        .enumerate()
        .map(|(m, &c)| fleet.skus()[fleet.sku_of(m)].true_cpu(c))
        .collect();
    let mean = cpus.iter().sum::<f64>() / n as f64;
    let var = cpus.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n as f64;
    KeaReport {
        caps: caps.to_vec(),
        placed,
        hotspot_cpu: cpus.iter().copied().fold(0.0, f64::max),
        mean_cpu: mean,
        cpu_std: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::fit_behavior_models;
    use crate::machine::SkuSpec;

    fn setup() -> (MachineFleet, Vec<MachineBehavior>) {
        let fleet = MachineFleet::new(SkuSpec::standard_fleet(), 10);
        let telemetry = fleet.generate_telemetry(24 * 7, 0.05, 5);
        let models = fit_behavior_models(&telemetry).unwrap();
        (fleet, models)
    }

    #[test]
    fn tuned_caps_differ_per_sku() {
        let (fleet, models) = setup();
        let caps = tune_caps(&models, &fleet, 0.75);
        // gen3 has ~1.8x the per-container CPU cost of gen4, so its cap is lower.
        assert!(caps[0] < caps[1], "caps {caps:?}");
        for (cap, sku) in caps.iter().zip(fleet.skus()) {
            assert!(*cap >= 1 && *cap <= sku.max_containers);
        }
    }

    #[test]
    fn tuned_caps_remove_hotspots_vs_uniform() {
        let (fleet, models) = setup();
        let demand = 400;
        // Naive uniform cap: every SKU gets the same limit.
        let uniform = vec![24, 24];
        let naive = evaluate_caps(&fleet, &uniform, demand);
        let tuned_caps = tune_caps(&models, &fleet, 0.75);
        let tuned = evaluate_caps(&fleet, &tuned_caps, demand);
        assert_eq!(naive.placed, demand);
        assert_eq!(tuned.placed, demand);
        assert!(
            tuned.hotspot_cpu < naive.hotspot_cpu,
            "tuned {} vs naive {}",
            tuned.hotspot_cpu,
            naive.hotspot_cpu
        );
        assert!(tuned.cpu_std <= naive.cpu_std);
    }

    #[test]
    fn caps_respect_target_cpu() {
        let (fleet, models) = setup();
        let caps = tune_caps(&models, &fleet, 0.6);
        for (sku_idx, (&cap, sku)) in caps.iter().zip(fleet.skus()).enumerate() {
            let predicted = models[sku_idx].cpu_vs_containers.predict(cap as f64);
            assert!(
                predicted <= 0.65,
                "sku {sku_idx} cap {cap} predicted {predicted}"
            );
            let _ = sku;
        }
    }

    #[test]
    fn demand_beyond_capacity_partially_placed() {
        let (fleet, _) = setup();
        let caps = vec![2, 2];
        let report = evaluate_caps(&fleet, &caps, 10_000);
        assert_eq!(report.placed, 2 * fleet.machine_count());
    }
}
