//! MLOS-style VM parameter tuning (Sec 4.1, \[9\]).
//!
//! "By using ML to predict the throughput and latency of benchmark
//! workloads on VMs with various kernel parameters, developed on MLOS, we
//! refined the parameters of the Azure VM that runs Redis workloads."
//!
//! A synthetic Redis-like benchmark exposes a hidden response surface over
//! three kernel parameters. The MLOS loop alternates between (1) fitting a
//! surrogate model (random forest) on the configurations observed so far
//! and (2) probing the surrogate's most promising candidates — spending far
//! fewer *real* benchmark runs than exhaustive search while closing most of
//! the gap to the true optimum.

use adas_ml::dataset::Dataset;
use adas_ml::forest::{ForestConfig, RandomForest};
use adas_ml::{Regressor, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A kernel-parameter configuration for the benchmark VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmConfig {
    /// `net.core.somaxconn`-style backlog (64..=4096).
    pub backlog: u32,
    /// Dirty-page writeback ratio percent (5..=60).
    pub dirty_ratio: u32,
    /// Transparent-hugepage enabled.
    pub hugepages: bool,
}

impl VmConfig {
    /// Feature vector for the surrogate model.
    pub fn features(&self) -> Vec<f64> {
        vec![
            (self.backlog as f64).ln(),
            self.dirty_ratio as f64,
            f64::from(u8::from(self.hugepages)),
        ]
    }

    /// The discrete candidate grid (7 × 8 × 2 = 112 configurations).
    pub fn grid() -> Vec<VmConfig> {
        let mut out = Vec::new();
        for backlog in [64u32, 128, 256, 512, 1024, 2048, 4096] {
            for dirty_ratio in [5u32, 10, 15, 20, 30, 40, 50, 60] {
                for hugepages in [false, true] {
                    out.push(VmConfig {
                        backlog,
                        dirty_ratio,
                        hugepages,
                    });
                }
            }
        }
        out
    }
}

/// The hidden benchmark response (requests/second). Peaked at a moderate
/// backlog and low-ish dirty ratio; hugepages help large backlogs only —
/// an interaction a linear model would miss (hence the forest surrogate).
#[derive(Debug, Clone, Copy)]
pub struct RedisBenchmark {
    noise: f64,
    seed: u64,
}

impl RedisBenchmark {
    /// Creates the benchmark with relative run-to-run noise.
    pub fn new(noise: f64, seed: u64) -> Self {
        Self { noise, seed }
    }

    /// Noise-free throughput surface.
    pub fn true_throughput(&self, config: &VmConfig) -> f64 {
        let b = (config.backlog as f64).ln();
        // Peak near backlog 1024 (ln ≈ 6.93).
        let backlog_term = 60_000.0 - 2_500.0 * (b - 6.93).powi(2);
        let dirty_term = -120.0 * (config.dirty_ratio as f64 - 12.0).powi(2).sqrt() * 40.0 / 12.0;
        let huge_term = if config.hugepages {
            if config.backlog >= 1024 {
                4_000.0
            } else {
                -2_000.0
            }
        } else {
            0.0
        };
        (backlog_term + dirty_term + huge_term).max(1_000.0)
    }

    /// One simulated benchmark run (noisy, deterministic per run index).
    pub fn run(&self, config: &VmConfig, run_index: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ run_index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ config.backlog as u64,
        );
        let jitter = 1.0 + rng.gen_range(-self.noise..=self.noise);
        self.true_throughput(config) * jitter
    }

    /// Exhaustive-search optimum over the grid (the oracle).
    pub fn oracle(&self) -> (VmConfig, f64) {
        VmConfig::grid()
            .into_iter()
            .map(|c| (c, self.true_throughput(&c)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("grid is non-empty")
    }
}

/// Outcome of one tuning session.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TuneReport {
    /// Best configuration found.
    pub best: VmConfig,
    /// Its true throughput.
    pub best_throughput: f64,
    /// Oracle throughput for comparison.
    pub oracle_throughput: f64,
    /// Fraction of oracle throughput achieved.
    pub fraction_of_oracle: f64,
    /// Real benchmark runs spent.
    pub runs_spent: usize,
}

/// The MLOS loop: seed with `initial` random configs, then for each round
/// fit the forest surrogate and benchmark the surrogate's top unseen
/// candidate.
pub fn mlos_tune(
    benchmark: &RedisBenchmark,
    initial: usize,
    rounds: usize,
    seed: u64,
) -> Result<TuneReport> {
    let grid = VmConfig::grid();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut observed: Vec<(VmConfig, f64)> = Vec::new();
    let mut run_index = 0u64;
    let bench = |c: &VmConfig, run_index: &mut u64| {
        let t = benchmark.run(c, *run_index);
        *run_index += 1;
        t
    };
    for _ in 0..initial.max(3) {
        let c = grid[rng.gen_range(0..grid.len())];
        let t = bench(&c, &mut run_index);
        observed.push((c, t));
    }
    for _ in 0..rounds {
        let data = Dataset::new(
            observed.iter().map(|(c, _)| c.features()).collect(),
            observed.iter().map(|(_, t)| *t).collect(),
        )?;
        let surrogate = RandomForest::fit(
            &data,
            ForestConfig {
                n_trees: 40,
                seed: rng.gen(),
                ..Default::default()
            },
        )?;
        // Probe the best unseen candidate by a UCB-style acquisition:
        // surrogate mean plus the ensemble's disagreement (exploration
        // bonus), the standard Bayesian-optimization shape MLOS uses.
        let acquisition = |c: &VmConfig| {
            let f = c.features();
            surrogate.predict(&f) + surrogate.prediction_std(&f)
        };
        let candidate = grid
            .iter()
            .filter(|c| !observed.iter().any(|(o, _)| o == *c))
            .max_by(|a, b| {
                acquisition(a)
                    .partial_cmp(&acquisition(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied();
        let Some(candidate) = candidate else {
            break; // grid exhausted
        };
        let t = bench(&candidate, &mut run_index);
        observed.push((candidate, t));
    }
    let (best, _) = observed
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .copied()
        .expect("observed non-empty");
    let best_throughput = benchmark.true_throughput(&best);
    let (_, oracle_throughput) = benchmark.oracle();
    Ok(TuneReport {
        best,
        best_throughput,
        oracle_throughput,
        fraction_of_oracle: best_throughput / oracle_throughput,
        runs_spent: observed.len(),
    })
}

/// Random-search baseline at the same run budget.
pub fn random_tune(benchmark: &RedisBenchmark, budget: usize, seed: u64) -> TuneReport {
    let grid = VmConfig::grid();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(VmConfig, f64)> = None;
    for run_index in 0..budget as u64 {
        let c = grid[rng.gen_range(0..grid.len())];
        let t = benchmark.run(&c, run_index);
        if best.map_or(true, |(_, bt)| t > bt) {
            best = Some((c, t));
        }
    }
    let (best, _) = best.expect("budget >= 1");
    let best_throughput = benchmark.true_throughput(&best);
    let (_, oracle_throughput) = benchmark.oracle();
    TuneReport {
        best,
        best_throughput,
        oracle_throughput,
        fraction_of_oracle: best_throughput / oracle_throughput,
        runs_spent: budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_has_the_designed_structure() {
        let bench = RedisBenchmark::new(0.0, 1);
        let (best, _) = bench.oracle();
        assert_eq!(best.backlog, 1024);
        assert!(best.hugepages, "hugepages help at the peak backlog");
        // Hugepages hurt at small backlogs (the interaction).
        let small_on = VmConfig {
            backlog: 128,
            dirty_ratio: 10,
            hugepages: true,
        };
        let small_off = VmConfig {
            hugepages: false,
            ..small_on
        };
        assert!(bench.true_throughput(&small_off) > bench.true_throughput(&small_on));
    }

    #[test]
    fn mlos_reaches_near_oracle_cheaply() {
        let bench = RedisBenchmark::new(0.03, 7);
        let report = mlos_tune(&bench, 10, 15, 21).expect("tunes");
        assert!(
            report.fraction_of_oracle > 0.95,
            "{}",
            report.fraction_of_oracle
        );
        assert!(report.runs_spent <= 25);
        assert!(
            report.runs_spent < VmConfig::grid().len() / 4,
            "must beat exhaustive search"
        );
    }

    #[test]
    fn mlos_beats_random_at_equal_budget() {
        let bench = RedisBenchmark::new(0.03, 7);
        let mut mlos_wins = 0;
        for seed in 0..5 {
            let mlos = mlos_tune(&bench, 10, 15, seed).expect("tunes");
            let random = random_tune(&bench, mlos.runs_spent, seed);
            if mlos.fraction_of_oracle >= random.fraction_of_oracle {
                mlos_wins += 1;
            }
        }
        assert!(mlos_wins >= 3, "MLOS won only {mlos_wins}/5 seeds");
    }

    #[test]
    fn benchmark_is_deterministic_per_run_index() {
        let bench = RedisBenchmark::new(0.1, 3);
        let c = VmConfig {
            backlog: 512,
            dirty_ratio: 20,
            hugepages: false,
        };
        assert_eq!(bench.run(&c, 5), bench.run(&c, 5));
        assert_ne!(bench.run(&c, 5), bench.run(&c, 6));
    }
}
