//! Machine/SKU simulation: the telemetry source for the Fig 1 models.
//!
//! Each SKU has a *true* linear response: CPU utilization grows with the
//! number of running containers, and task execution time grows with CPU
//! utilization (contention). The simulator emits hourly telemetry with
//! deterministic noise; the behaviour models in [`behavior`](crate::behavior)
//! must recover the underlying lines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A machine SKU with its ground-truth response coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkuSpec {
    /// SKU name, e.g. `gen4`.
    pub name: String,
    /// Idle CPU utilization (fraction).
    pub base_cpu: f64,
    /// CPU utilization added per running container.
    pub cpu_per_container: f64,
    /// Task execution seconds at zero CPU load.
    pub base_task_seconds: f64,
    /// Additional task seconds per unit of CPU utilization.
    pub task_seconds_per_cpu: f64,
    /// Hard cap on concurrent containers the hardware supports.
    pub max_containers: usize,
}

impl SkuSpec {
    /// The two generations used across the experiments: an older, weaker
    /// SKU and a newer one that handles more containers per CPU point.
    pub fn standard_fleet() -> Vec<SkuSpec> {
        vec![
            SkuSpec {
                name: "gen3".into(),
                base_cpu: 0.08,
                cpu_per_container: 0.045,
                base_task_seconds: 20.0,
                task_seconds_per_cpu: 90.0,
                max_containers: 24,
            },
            SkuSpec {
                name: "gen4".into(),
                base_cpu: 0.05,
                cpu_per_container: 0.025,
                base_task_seconds: 15.0,
                task_seconds_per_cpu: 60.0,
                max_containers: 40,
            },
        ]
    }

    /// Ground-truth CPU utilization for a container count (no noise).
    pub fn true_cpu(&self, containers: usize) -> f64 {
        (self.base_cpu + self.cpu_per_container * containers as f64).min(1.0)
    }

    /// Ground-truth task execution time at a CPU level (no noise).
    pub fn true_task_seconds(&self, cpu: f64) -> f64 {
        self.base_task_seconds + self.task_seconds_per_cpu * cpu
    }
}

/// One machine-hour observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineTelemetry {
    /// Index of the machine in the fleet.
    pub machine: usize,
    /// Index of the machine's SKU in the fleet's SKU list.
    pub sku: usize,
    /// Hour of observation.
    pub hour: u64,
    /// Containers running this hour.
    pub containers: usize,
    /// Observed CPU utilization (noisy).
    pub cpu: f64,
    /// Observed mean task execution time, seconds (noisy).
    pub task_seconds: f64,
}

/// A fleet of machines across SKUs, generating telemetry.
#[derive(Debug, Clone)]
pub struct MachineFleet {
    skus: Vec<SkuSpec>,
    /// `machine index -> sku index`.
    assignment: Vec<usize>,
}

impl MachineFleet {
    /// Creates a fleet with `machines_per_sku` machines of each SKU.
    pub fn new(skus: Vec<SkuSpec>, machines_per_sku: usize) -> Self {
        let assignment = (0..skus.len())
            .flat_map(|s| std::iter::repeat(s).take(machines_per_sku))
            .collect();
        Self { skus, assignment }
    }

    /// The fleet's SKUs.
    pub fn skus(&self) -> &[SkuSpec] {
        &self.skus
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.assignment.len()
    }

    /// The SKU index of a machine.
    pub fn sku_of(&self, machine: usize) -> usize {
        self.assignment[machine]
    }

    /// Generates `hours` of telemetry per machine with container loads drawn
    /// uniformly up to each SKU's cap and multiplicative observation noise
    /// of ±`noise` (relative).
    pub fn generate_telemetry(&self, hours: u64, noise: f64, seed: u64) -> Vec<MachineTelemetry> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(self.assignment.len() * hours as usize);
        for (machine, &sku_idx) in self.assignment.iter().enumerate() {
            let sku = &self.skus[sku_idx];
            for hour in 0..hours {
                let containers = rng.gen_range(0..=sku.max_containers);
                let jitter = |rng: &mut StdRng| 1.0 + rng.gen_range(-noise..=noise);
                let cpu = (sku.true_cpu(containers) * jitter(&mut rng)).clamp(0.0, 1.0);
                let task_seconds = sku.true_task_seconds(cpu) * jitter(&mut rng);
                out.push(MachineTelemetry {
                    machine,
                    sku: sku_idx,
                    hour,
                    containers,
                    cpu,
                    task_seconds,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_responses_are_monotone() {
        let sku = &SkuSpec::standard_fleet()[0];
        assert!(sku.true_cpu(10) > sku.true_cpu(5));
        assert!(sku.true_task_seconds(0.8) > sku.true_task_seconds(0.2));
        assert!(sku.true_cpu(1000) <= 1.0, "cpu must saturate");
    }

    #[test]
    fn fleet_generates_expected_volume() {
        let fleet = MachineFleet::new(SkuSpec::standard_fleet(), 5);
        assert_eq!(fleet.machine_count(), 10);
        let telemetry = fleet.generate_telemetry(24, 0.05, 1);
        assert_eq!(telemetry.len(), 240);
        for t in &telemetry {
            assert!(t.cpu >= 0.0 && t.cpu <= 1.0);
            assert!(t.task_seconds > 0.0);
            assert_eq!(fleet.sku_of(t.machine), t.sku);
        }
    }

    #[test]
    fn telemetry_deterministic_per_seed() {
        let fleet = MachineFleet::new(SkuSpec::standard_fleet(), 2);
        let a = fleet.generate_telemetry(24, 0.05, 7);
        let b = fleet.generate_telemetry(24, 0.05, 7);
        assert_eq!(a, b);
        let c = fleet.generate_telemetry(24, 0.05, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_zero_matches_ground_truth() {
        let fleet = MachineFleet::new(SkuSpec::standard_fleet(), 1);
        let telemetry = fleet.generate_telemetry(24, 0.0, 3);
        for t in telemetry {
            let sku = &fleet.skus()[t.sku];
            assert!((t.cpu - sku.true_cpu(t.containers)).abs() < 1e-12);
            assert!((t.task_seconds - sku.true_task_seconds(t.cpu)).abs() < 1e-9);
        }
    }
}

use adas_telemetry::schema::SemanticSchema;
use adas_telemetry::{ResourceId, TelemetryStore};

impl MachineFleet {
    /// Emits generated telemetry into a [`TelemetryStore`] under canonical
    /// metric names, normalizing through the semantic schema (half the
    /// machines report Windows-style counter names, half Linux-style — the
    /// Direction 2 scenario).
    ///
    /// Returns the number of samples written.
    pub fn emit_to_store(
        &self,
        telemetry: &[MachineTelemetry],
        schema: &SemanticSchema,
        store: &TelemetryStore,
    ) -> adas_telemetry::Result<usize> {
        let mut written = 0usize;
        for t in telemetry {
            let resource = ResourceId::new(format!("machine-{}", t.machine));
            // Alternate platform-style raw names by machine parity.
            let (raw_name, raw_value) = if t.machine % 2 == 0 {
                (r"\Processor(_Total)\% Processor Time", t.cpu * 100.0)
            } else {
                ("node_cpu_utilization", t.cpu)
            };
            let (metric, value) = schema.normalize(raw_name, raw_value)?;
            store.append(&resource, &metric, t.hour * 3600, value);
            let (containers, v) = schema.normalize("running_containers", t.containers as f64)?;
            store.append(&resource, &containers, t.hour * 3600, v);
            let (task, v) = schema.normalize("task_execution_seconds", t.task_seconds)?;
            store.append(&resource, &task, t.hour * 3600, v);
            written += 3;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod telemetry_bridge_tests {
    use super::*;
    use adas_telemetry::schema::SemanticSchema;
    use adas_telemetry::{MetricId, ResourceId, TelemetryStore};

    #[test]
    fn fleet_counters_normalize_into_the_store() {
        let fleet = MachineFleet::new(SkuSpec::standard_fleet(), 2);
        let telemetry = fleet.generate_telemetry(24, 0.05, 3);
        let store = TelemetryStore::new();
        let schema = SemanticSchema::standard();
        let written = fleet.emit_to_store(&telemetry, &schema, &store).unwrap();
        assert_eq!(written, telemetry.len() * 3);
        // Windows-named and Linux-named machines land on ONE canonical metric.
        let cpu = MetricId::new("cpu_utilization");
        let resources = store.resources_with_metric(&cpu);
        assert_eq!(resources.len(), fleet.machine_count());
        // Values are ratios regardless of the platform's raw unit.
        for r in &resources {
            let series = store.series(r, &cpu).unwrap();
            assert!(series.max().unwrap() <= 1.0 + 1e-9);
            assert_eq!(series.len(), 24);
        }
        // Per-machine series retain the simulated correlation: CPU at high
        // container counts exceeds CPU at zero containers on average.
        let r0 = ResourceId::new("machine-0");
        let containers = store
            .series(&r0, &MetricId::new("running_containers"))
            .unwrap();
        let cpu0 = store.series(&r0, &cpu).unwrap();
        let paired: Vec<(f64, f64)> = containers.values().zip(cpu0.values()).collect();
        let hi: Vec<f64> = paired
            .iter()
            .filter(|(c, _)| *c > 12.0)
            .map(|(_, u)| *u)
            .collect();
        let lo: Vec<f64> = paired
            .iter()
            .filter(|(c, _)| *c <= 4.0)
            .map(|(_, u)| *u)
            .collect();
        if !hi.is_empty() && !lo.is_empty() {
            let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
            assert!(mean(&hi) > mean(&lo));
        }
    }
}
