//! Service autoscaling: reactive vs forecast-assisted (Sec 4.1 / Direction
//! 1: "many services need efficient cluster provisioning and auto-scaling").
//!
//! A running service receives an hourly load (required capacity units) and
//! holds some provisioned capacity. Scaling up takes a provisioning lag
//! during which demand above capacity is *unserved* (SLA violation);
//! provisioned-but-unused capacity is the cost. The reactive policy tracks
//! observed load; the predictive policy provisions ahead of the forecast so
//! that capacity is already there when load arrives — the same
//! model-user-behaviour theme as Moneyball and Fig 2, applied to a live
//! service instead of a pool.

use adas_ml::forecast::{Forecaster, SeasonalNaive};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hourly load generator with a diurnal profile and noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadModel {
    /// Peak capacity units required at the daily maximum.
    pub peak: f64,
    /// Off-peak requirement.
    pub offpeak: f64,
    /// Relative noise.
    pub noise: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for LoadModel {
    fn default() -> Self {
        Self {
            peak: 100.0,
            offpeak: 15.0,
            noise: 0.1,
            seed: 29,
        }
    }
}

impl LoadModel {
    /// Generates `hours` of load.
    pub fn generate(&self, hours: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..hours)
            .map(|h| {
                let hour = h % 24;
                let base = if (8..20).contains(&hour) {
                    self.peak
                } else {
                    self.offpeak
                };
                base * (1.0 + rng.gen_range(-self.noise..=self.noise))
            })
            .collect()
    }
}

/// Autoscaling policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScalePolicy {
    /// Capacity := last observed load × headroom (takes effect after the
    /// provisioning lag).
    Reactive {
        /// Capacity multiplier over observed load.
        headroom: f64,
    },
    /// Capacity := forecast(now + lag) × headroom, so the scale-up lands
    /// exactly when the load does.
    Predictive {
        /// Capacity multiplier over forecast load.
        headroom: f64,
    },
}

/// Evaluation of one policy run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScaleReport {
    /// Total demand that found no capacity (SLA violations), capacity-hours.
    pub unserved: f64,
    /// Total provisioned-but-idle capacity-hours (cost).
    pub idle: f64,
    /// Fraction of demand served.
    pub served_fraction: f64,
}

/// Simulates `policy` over the load series with a `lag_hours` provisioning
/// delay. The first `warmup` hours only build forecast history.
pub fn simulate_autoscaler(
    load: &[f64],
    policy: ScalePolicy,
    lag_hours: usize,
    warmup: usize,
) -> ScaleReport {
    assert!(warmup >= 24, "forecast needs at least one day of warmup");
    assert!(warmup < load.len(), "need hours beyond the warmup");
    let mut capacity = load[warmup - 1];
    // Scale decisions that have been issued but not yet landed: (effective_at, value).
    let mut pending: Vec<(usize, f64)> = Vec::new();
    let mut unserved = 0.0;
    let mut idle = 0.0;
    let mut demand_total = 0.0;

    for h in warmup..load.len() {
        // Apply any scale decisions landing now.
        pending.retain(|&(at, value)| {
            if at <= h {
                capacity = value;
                false
            } else {
                true
            }
        });
        let demand = load[h];
        demand_total += demand;
        if demand > capacity {
            unserved += demand - capacity;
        } else {
            idle += capacity - demand;
        }
        // Issue the next decision.
        let target = match policy {
            ScalePolicy::Reactive { headroom } => demand * headroom,
            ScalePolicy::Predictive { headroom } => {
                let history = &load[..=h];
                let forecast = SeasonalNaive::fit(history, 24)
                    .map(|m| m.forecast(lag_hours.max(1))[lag_hours.max(1) - 1])
                    .unwrap_or(demand);
                forecast * headroom
            }
        };
        pending.push((h + lag_hours, target));
    }
    ScaleReport {
        unserved,
        idle,
        served_fraction: if demand_total > 0.0 {
            1.0 - unserved / demand_total
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictive_scaling_cuts_violations() {
        let load = LoadModel::default().generate(24 * 14);
        let lag = 2;
        let reactive =
            simulate_autoscaler(&load, ScalePolicy::Reactive { headroom: 1.15 }, lag, 48);
        let predictive =
            simulate_autoscaler(&load, ScalePolicy::Predictive { headroom: 1.15 }, lag, 48);
        assert!(
            predictive.unserved < reactive.unserved * 0.5,
            "predictive {} vs reactive {}",
            predictive.unserved,
            reactive.unserved
        );
        // And not at an absurd idle-capacity premium.
        assert!(predictive.idle < reactive.idle * 1.5);
        assert!(predictive.served_fraction > 0.99);
    }

    #[test]
    fn zero_lag_makes_reactive_competitive() {
        let load = LoadModel::default().generate(24 * 14);
        let reactive = simulate_autoscaler(&load, ScalePolicy::Reactive { headroom: 1.15 }, 0, 48);
        assert!(reactive.served_fraction > 0.90);
    }

    #[test]
    fn more_headroom_trades_idle_for_violations() {
        let load = LoadModel::default().generate(24 * 14);
        let tight = simulate_autoscaler(&load, ScalePolicy::Predictive { headroom: 1.0 }, 2, 48);
        let roomy = simulate_autoscaler(&load, ScalePolicy::Predictive { headroom: 1.3 }, 2, 48);
        assert!(roomy.unserved <= tight.unserved);
        assert!(roomy.idle > tight.idle);
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn short_warmup_rejected() {
        let load = LoadModel::default().generate(100);
        let _ = simulate_autoscaler(&load, ScalePolicy::Reactive { headroom: 1.1 }, 1, 10);
    }
}
