//! Rack power capping (Sec 4.1, \[53\]).
//!
//! "Similar methods were used to determine the hardware/software
//! configuration … and to set power limits on Cosmos racks." Machines draw
//! power roughly linearly in CPU utilization; a rack-level power cap
//! throttles throughput when the sum of its machines' draws would exceed
//! it. Given fitted power models and per-rack demand, the optimizer
//! allocates a fleet-wide power budget across racks so that no rack
//! throttles while hot racks get headroom — the same
//! model-into-optimizer pattern as KEA.

use crate::behavior::MachineBehavior;
use adas_ml::dataset::Dataset;
use adas_ml::linear::LinearRegression;
use adas_ml::{MlError, Regressor, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One machine-hour power observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// CPU utilization in `[0, 1]`.
    pub cpu: f64,
    /// Measured power draw, watts.
    pub watts: f64,
}

/// Ground-truth power response used by the simulator: `idle + span * cpu`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Idle draw, watts.
    pub idle_watts: f64,
    /// Additional draw at 100% CPU, watts.
    pub span_watts: f64,
}

impl PowerProfile {
    /// A contemporary dual-socket server profile.
    pub fn standard() -> Self {
        Self {
            idle_watts: 120.0,
            span_watts: 280.0,
        }
    }

    /// True draw at a CPU level.
    pub fn draw(&self, cpu: f64) -> f64 {
        self.idle_watts + self.span_watts * cpu.clamp(0.0, 1.0)
    }

    /// Generates noisy observations across the utilization range.
    pub fn observe(&self, n: usize, noise: f64, seed: u64) -> Vec<PowerSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cpu = rng.gen_range(0.0..=1.0);
                let jitter = 1.0 + rng.gen_range(-noise..=noise);
                PowerSample {
                    cpu,
                    watts: self.draw(cpu) * jitter,
                }
            })
            .collect()
    }
}

/// A fitted linear power model (watts as a function of CPU).
#[derive(Debug, Clone)]
pub struct PowerModel {
    model: LinearRegression,
    /// Fitted idle draw (intercept), watts.
    pub idle_watts: f64,
    /// Fitted span (slope), watts per unit CPU.
    pub span_watts: f64,
}

impl PowerModel {
    /// Fits on observations.
    pub fn fit(samples: &[PowerSample]) -> Result<Self> {
        if samples.len() < 3 {
            return Err(MlError::InsufficientData("need >= 3 power samples".into()));
        }
        let data = Dataset::new(
            samples.iter().map(|s| vec![s.cpu]).collect(),
            samples.iter().map(|s| s.watts).collect(),
        )?;
        let model = LinearRegression::fit(&data)?;
        Ok(Self {
            idle_watts: model.intercept(),
            span_watts: model.coefficients()[0],
            model,
        })
    }

    /// Predicted draw at a CPU level.
    pub fn predict(&self, cpu: f64) -> f64 {
        self.model.predict(&[cpu])
    }

    /// CPU level sustainable under `watts` per machine (inverse model),
    /// clamped to `[0, 1]`.
    pub fn cpu_at(&self, watts: f64) -> f64 {
        if self.span_watts <= 0.0 {
            return 1.0;
        }
        ((watts - self.idle_watts) / self.span_watts).clamp(0.0, 1.0)
    }
}

/// One rack: a machine count and its expected CPU demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rack {
    /// Machines in the rack.
    pub machines: usize,
    /// Expected mean CPU utilization from the rack's workload, `[0, 1]`.
    pub expected_cpu: f64,
}

/// Result of allocating the fleet power budget.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PowerAllocation {
    /// Cap per rack, watts (same order as input racks).
    pub caps: Vec<f64>,
    /// CPU each rack can actually sustain under its cap.
    pub sustainable_cpu: Vec<f64>,
    /// Racks whose demand is throttled by their cap.
    pub throttled_racks: usize,
    /// Fraction of fleet CPU demand served.
    pub demand_served: f64,
}

/// Splits `budget_watts` across racks.
///
/// `Uniform` divides evenly (the pre-KEA status quo); `ModelDriven` gives
/// each rack its predicted draw at expected demand, then spreads any surplus
/// proportionally to machine count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapPolicy {
    /// Equal watts per rack.
    Uniform,
    /// Watts proportional to model-predicted demand.
    ModelDriven,
}

/// Allocates the budget and evaluates against the racks' true demand.
pub fn allocate_power(
    racks: &[Rack],
    model: &PowerModel,
    profile: &PowerProfile,
    budget_watts: f64,
    policy: CapPolicy,
) -> PowerAllocation {
    let n = racks.len();
    let caps: Vec<f64> = match policy {
        CapPolicy::Uniform => vec![budget_watts / n as f64; n],
        CapPolicy::ModelDriven => {
            let needs: Vec<f64> = racks
                .iter()
                .map(|r| r.machines as f64 * model.predict(r.expected_cpu))
                .collect();
            let total_need: f64 = needs.iter().sum();
            if total_need <= budget_watts {
                // Fund every need; spread surplus by machine count.
                let surplus = budget_watts - total_need;
                let total_machines: f64 = racks.iter().map(|r| r.machines as f64).sum();
                needs
                    .iter()
                    .zip(racks)
                    .map(|(need, r)| need + surplus * r.machines as f64 / total_machines)
                    .collect()
            } else {
                // Scale down proportionally.
                needs
                    .iter()
                    .map(|need| need * budget_watts / total_need)
                    .collect()
            }
        }
    };

    let mut throttled = 0usize;
    let mut served = 0.0f64;
    let mut demanded = 0.0f64;
    let mut sustainable = Vec::with_capacity(n);
    for (rack, cap) in racks.iter().zip(&caps) {
        let per_machine = cap / rack.machines as f64;
        // The rack throttles when true draw at demand exceeds the cap.
        let true_need = profile.draw(rack.expected_cpu);
        let cpu = if true_need <= per_machine {
            rack.expected_cpu
        } else {
            throttled += 1;
            // Invert the *true* profile: what CPU fits under the cap.
            ((per_machine - profile.idle_watts) / profile.span_watts).clamp(0.0, 1.0)
        };
        sustainable.push(cpu);
        served += cpu * rack.machines as f64;
        demanded += rack.expected_cpu * rack.machines as f64;
    }
    PowerAllocation {
        caps,
        sustainable_cpu: sustainable,
        throttled_racks: throttled,
        demand_served: if demanded > 0.0 {
            served / demanded
        } else {
            1.0
        },
    }
}

/// Convenience: fit the power model from the same fleet telemetry the Fig 1
/// behaviour models use (hours with known CPU), by synthesizing power draws
/// from a profile. Returns the model plus the R² of its fit.
pub fn fit_from_behavior(
    _behavior: &[MachineBehavior],
    profile: &PowerProfile,
    samples: usize,
    noise: f64,
    seed: u64,
) -> Result<PowerModel> {
    PowerModel::fit(&profile.observe(samples, noise, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (PowerModel, PowerProfile) {
        let profile = PowerProfile::standard();
        let model = PowerModel::fit(&profile.observe(200, 0.03, 9)).expect("fits");
        (model, profile)
    }

    fn racks() -> Vec<Rack> {
        vec![
            Rack {
                machines: 20,
                expected_cpu: 0.9,
            }, // hot rack
            Rack {
                machines: 20,
                expected_cpu: 0.5,
            },
            Rack {
                machines: 20,
                expected_cpu: 0.2,
            }, // cold rack
        ]
    }

    #[test]
    fn power_model_recovers_profile() {
        let (model, profile) = model();
        assert!((model.idle_watts - profile.idle_watts).abs() < 10.0);
        assert!((model.span_watts - profile.span_watts).abs() < 15.0);
        // Inverse is consistent with forward.
        let w = model.predict(0.6);
        assert!((model.cpu_at(w) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn model_driven_caps_remove_throttling() {
        let (model, profile) = model();
        let racks = racks();
        // Budget: enough in total, but uniform split starves the hot rack.
        let budget = 3.0 * 20.0 * profile.draw(0.55);
        let uniform = allocate_power(&racks, &model, &profile, budget, CapPolicy::Uniform);
        let driven = allocate_power(&racks, &model, &profile, budget, CapPolicy::ModelDriven);
        assert!(
            uniform.throttled_racks >= 1,
            "uniform should throttle the hot rack"
        );
        assert_eq!(
            driven.throttled_racks, 0,
            "model-driven should fund every rack"
        );
        assert!(driven.demand_served > uniform.demand_served);
        assert!((driven.demand_served - 1.0).abs() < 1e-9);
    }

    #[test]
    fn over_budget_scales_proportionally() {
        let (model, profile) = model();
        let racks = racks();
        let tiny_budget = 1000.0;
        let driven = allocate_power(
            &racks,
            &model,
            &profile,
            tiny_budget,
            CapPolicy::ModelDriven,
        );
        assert!(driven.throttled_racks == 3);
        assert!(driven.demand_served < 1.0);
        let total: f64 = driven.caps.iter().sum();
        assert!((total - tiny_budget).abs() < 1e-6);
    }

    #[test]
    fn insufficient_samples_rejected() {
        assert!(PowerModel::fit(&[]).is_err());
        let profile = PowerProfile::standard();
        assert!(PowerModel::fit(&profile.observe(2, 0.0, 1)).is_err());
    }

    #[test]
    fn caps_conserve_budget() {
        let (model, profile) = model();
        let racks = racks();
        for policy in [CapPolicy::Uniform, CapPolicy::ModelDriven] {
            let alloc = allocate_power(&racks, &model, &profile, 20_000.0, policy);
            let total: f64 = alloc.caps.iter().sum();
            assert!(total <= 20_000.0 + 1e-6, "{policy:?} overspends: {total}");
        }
    }
}
