//! Proactive cluster provisioning and the Fig 2 Pareto frontier.
//!
//! Azure Synapse Spark keeps a pool of pre-provisioned clusters so that a
//! customer's "create cluster" request is served warm instead of paying the
//! cold-start. The paper frames the policy question as a QoS-vs-cost
//! trade-off (Fig 2): larger standing pools cut wait time but burn idle
//! capacity; a demand forecast moves the whole frontier ("proactive cluster
//! provisioning based on expected user cluster creation demand to reduce
//! wait time … optimizing both COGS and performance").
//!
//! [`simulate_provisioning`] replays an hourly demand process under a
//! [`PoolPolicy`] and reports mean/p95 wait and idle cluster-hours.

use adas_ml::forecast::{Forecaster, SeasonalNaive};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hourly cluster-creation demand with a diurnal profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandModel {
    /// Mean requests per hour at the daily peak.
    pub peak_per_hour: f64,
    /// Mean requests per hour off-peak.
    pub offpeak_per_hour: f64,
    /// Relative noise on each hour's arrivals.
    pub noise: f64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for DemandModel {
    fn default() -> Self {
        Self {
            peak_per_hour: 40.0,
            offpeak_per_hour: 6.0,
            noise: 0.2,
            seed: 13,
        }
    }
}

impl DemandModel {
    /// Generates arrivals per hour for `hours` hours (business-hours peak,
    /// 9:00-18:00).
    pub fn arrivals(&self, hours: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..hours)
            .map(|h| {
                let hour_of_day = h % 24;
                let mean = if (9..18).contains(&hour_of_day) {
                    self.peak_per_hour
                } else {
                    self.offpeak_per_hour
                };
                let jitter = 1.0 + rng.gen_range(-self.noise..=self.noise);
                (mean * jitter).round().max(0.0) as usize
            })
            .collect()
    }
}

/// Pool-sizing policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PoolPolicy {
    /// A fixed standing pool of `size` clusters replenished each hour.
    Static {
        /// Standing pool size.
        size: usize,
    },
    /// Pool sized to `forecast(next hour) * headroom`, with the forecast
    /// from a previous-day seasonal-naive model over observed arrivals.
    Forecast {
        /// Multiplier applied to the forecast (e.g. 1.1 = 10% headroom).
        headroom: f64,
    },
}

/// Cost/latency parameters for the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisionConfig {
    /// Wait (seconds) when served from the warm pool.
    pub warm_seconds: f64,
    /// Wait (seconds) for a cold cluster creation.
    pub cold_seconds: f64,
    /// Hours simulated (after a 24h warm-up used only for forecasting).
    pub hours: usize,
}

impl Default for ProvisionConfig {
    fn default() -> Self {
        Self {
            warm_seconds: 10.0,
            cold_seconds: 240.0,
            hours: 24 * 7,
        }
    }
}

/// Outcome of one policy simulation: one point of the Fig 2 plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ProvisionReport {
    /// Mean request wait, seconds (QoS axis).
    pub mean_wait: f64,
    /// 95th-percentile request wait, seconds.
    pub p95_wait: f64,
    /// Idle cluster-hours (COGS axis): pooled clusters that went unused.
    pub idle_cluster_hours: f64,
    /// Fraction of requests served warm.
    pub warm_fraction: f64,
    /// Total requests served.
    pub requests: usize,
}

/// Replays `demand` under `policy`.
///
/// Each hour the pool is replenished to the policy's size; arrivals in that
/// hour consume pool slots (warm) and overflow goes cold. Unused pool slots
/// are charged as idle cluster-hours.
pub fn simulate_provisioning(
    demand: &DemandModel,
    policy: PoolPolicy,
    config: &ProvisionConfig,
) -> ProvisionReport {
    let warmup = 24usize;
    let arrivals = demand.arrivals(warmup + config.hours);
    let mut waits: Vec<f64> = Vec::new();
    let mut idle_hours = 0.0f64;
    let mut warm = 0usize;
    let mut history: Vec<f64> = arrivals[..warmup].iter().map(|&a| a as f64).collect();

    for &arrived in &arrivals[warmup..] {
        let pool = match policy {
            PoolPolicy::Static { size } => size,
            PoolPolicy::Forecast { headroom } => {
                // Previous-day value for this hour, scaled by headroom.
                let f = SeasonalNaive::fit(&history, 24)
                    .map(|m| m.forecast(1)[0])
                    .unwrap_or(0.0);
                (f * headroom).ceil().max(0.0) as usize
            }
        };
        let served_warm = arrived.min(pool);
        warm += served_warm;
        idle_hours += (pool - served_warm) as f64;
        for _ in 0..served_warm {
            waits.push(config.warm_seconds);
        }
        for _ in served_warm..arrived {
            waits.push(config.cold_seconds);
        }
        history.push(arrived as f64);
    }

    waits.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let requests = waits.len();
    let mean_wait = if requests == 0 {
        0.0
    } else {
        waits.iter().sum::<f64>() / requests as f64
    };
    let p95_wait = if requests == 0 {
        0.0
    } else {
        waits[((requests as f64 * 0.95) as usize).min(requests - 1)]
    };
    ProvisionReport {
        mean_wait,
        p95_wait,
        idle_cluster_hours: idle_hours,
        warm_fraction: if requests == 0 {
            0.0
        } else {
            warm as f64 / requests as f64
        },
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_has_diurnal_shape() {
        let arrivals = DemandModel::default().arrivals(48);
        let peak = arrivals[10] + arrivals[34]; // 10:00 both days
        let trough = arrivals[3] + arrivals[27]; // 03:00 both days
        assert!(peak > trough);
    }

    #[test]
    fn bigger_static_pools_trade_cost_for_qos() {
        let demand = DemandModel::default();
        let config = ProvisionConfig::default();
        let small = simulate_provisioning(&demand, PoolPolicy::Static { size: 5 }, &config);
        let large = simulate_provisioning(&demand, PoolPolicy::Static { size: 50 }, &config);
        assert!(large.mean_wait < small.mean_wait);
        assert!(large.idle_cluster_hours > small.idle_cluster_hours);
    }

    #[test]
    fn forecast_dominates_comparable_static_points() {
        // Fig 2's claim: the ML-forecast policy sits below/left of the
        // static frontier. Compare against the static pool with similar QoS.
        let demand = DemandModel::default();
        let config = ProvisionConfig::default();
        let forecast =
            simulate_provisioning(&demand, PoolPolicy::Forecast { headroom: 1.2 }, &config);
        // Find a static size with wait no better than the forecast's.
        let mut dominated = false;
        for size in [10, 20, 30, 40, 50] {
            let s = simulate_provisioning(&demand, PoolPolicy::Static { size }, &config);
            if s.mean_wait <= forecast.mean_wait
                && s.idle_cluster_hours > forecast.idle_cluster_hours
            {
                dominated = true;
            }
        }
        assert!(
            dominated,
            "forecast policy should dominate some static point"
        );
        assert!(forecast.warm_fraction > 0.8);
    }

    #[test]
    fn zero_pool_all_cold() {
        let demand = DemandModel::default();
        let config = ProvisionConfig::default();
        let r = simulate_provisioning(&demand, PoolPolicy::Static { size: 0 }, &config);
        assert_eq!(r.warm_fraction, 0.0);
        assert_eq!(r.idle_cluster_hours, 0.0);
        assert!((r.mean_wait - config.cold_seconds).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let demand = DemandModel::default();
        let config = ProvisionConfig::default();
        let a = simulate_provisioning(&demand, PoolPolicy::Forecast { headroom: 1.1 }, &config);
        let b = simulate_provisioning(&demand, PoolPolicy::Forecast { headroom: 1.1 }, &config);
        assert_eq!(a, b);
    }
}
