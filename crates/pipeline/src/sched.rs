//! Dependency-aware job scheduling (Wing, \[8\]).
//!
//! "We analyzed the interdependency to facilitate job scheduling." The
//! scheduler here runs whole jobs on a bounded pool of concurrent job slots,
//! honouring inter-job dependencies. Two policies are compared:
//!
//! * [`Policy::Fifo`] — submit-time order among ready jobs (dependency-
//!   blind prioritization; dependencies still gate readiness).
//! * [`Policy::CriticalPath`] — ready jobs ordered by *downstream work*:
//!   the total work of everything transitively depending on them. This is
//!   the dependency-aware policy unearthing inter-job structure.

use crate::graph::PipelineGraph;
use adas_engine::cardinality::TrueCardinality;
use adas_engine::cost::CostModel;
use adas_engine::Result;
use adas_obs::Obs;
use adas_workload::catalog::Catalog;
use adas_workload::job::Trace;
use adas_workload::JobId;
use serde::Serialize;
use std::collections::HashMap;

/// Job prioritization policy among ready jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Policy {
    /// Earliest submit time first.
    Fifo,
    /// Largest transitive downstream work first.
    CriticalPath,
}

impl Policy {
    /// Stable name for metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::CriticalPath => "critical_path",
        }
    }
}

/// Outcome of one scheduling run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScheduleReport {
    /// Time at which the last job finished.
    pub makespan: f64,
    /// Mean job completion time (finish − submit).
    pub mean_completion: f64,
    /// Per-job finish times.
    pub finish: HashMap<JobId, f64>,
}

/// Total work of `job` plus everything transitively downstream of it.
fn downstream_work(
    job: JobId,
    graph: &PipelineGraph,
    work: &HashMap<JobId, f64>,
    memo: &mut HashMap<JobId, f64>,
) -> f64 {
    if let Some(&w) = memo.get(&job) {
        return w;
    }
    let mut total = work[&job];
    for &c in graph.consumers(job) {
        total += downstream_work(c, graph, work, memo);
    }
    memo.insert(job, total);
    total
}

/// Schedules a trace's jobs onto `job_slots` concurrent slots. Each job's
/// duration is its true work divided by `work_per_second`.
pub fn schedule(
    trace: &Trace,
    catalog: &Catalog,
    job_slots: usize,
    work_per_second: f64,
    policy: Policy,
) -> Result<ScheduleReport> {
    schedule_with_obs(
        trace,
        catalog,
        job_slots,
        work_per_second,
        policy,
        &Obs::disabled(),
    )
}

/// Like [`schedule`], recording the run into `obs`: a `schedule` span over
/// the makespan with one child span per job (at its simulated dispatch and
/// finish times, in job-id order), a `jobs_scheduled` counter labelled by
/// policy, the makespan gauge and a completion-time histogram.
pub fn schedule_with_obs(
    trace: &Trace,
    catalog: &Catalog,
    job_slots: usize,
    work_per_second: f64,
    policy: Policy,
    obs: &Obs,
) -> Result<ScheduleReport> {
    assert!(job_slots >= 1, "need at least one job slot");
    assert!(work_per_second > 0.0, "work_per_second must be positive");
    let graph = PipelineGraph::build(trace);
    let truth = TrueCardinality::new(catalog);
    let cost_model = CostModel::default();
    let mut work: HashMap<JobId, f64> = HashMap::new();
    for job in trace.jobs() {
        work.insert(job.id, cost_model.total_cost(&job.plan, &truth)?);
    }
    let mut memo = HashMap::new();
    let priority: HashMap<JobId, f64> = trace
        .jobs()
        .iter()
        .map(|j| (j.id, downstream_work(j.id, &graph, &work, &mut memo)))
        .collect();

    let submit: HashMap<JobId, f64> = trace
        .jobs()
        .iter()
        .map(|j| (j.id, j.submit_time as f64))
        .collect();
    let mut finish: HashMap<JobId, f64> = HashMap::new();
    let mut slot_free = vec![0.0f64; job_slots];
    let mut pending: Vec<JobId> = trace.jobs().iter().map(|j| j.id).collect();
    let mut now = 0.0f64;

    // Event-driven dispatch: at each instant, place the highest-priority
    // *currently ready* job onto a *currently free* slot; when nothing can
    // be dispatched, advance time to the next event (a slot freeing, a job
    // arriving, or a dependency completing).
    while !pending.is_empty() {
        let ready: Vec<JobId> = pending
            .iter()
            .copied()
            .filter(|&id| submit[&id] <= now)
            .filter(|&id| {
                graph
                    .producers(id)
                    .iter()
                    .all(|p| finish.get(p).is_some_and(|&f| f <= now))
            })
            .collect();
        let free_slot = slot_free
            .iter()
            .position(|&f| f <= now)
            .filter(|_| !ready.is_empty());
        if let Some(slot) = free_slot {
            let next = ready
                .into_iter()
                .min_by(|&a, &b| match policy {
                    Policy::Fifo => submit[&a]
                        .partial_cmp(&submit[&b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b)),
                    Policy::CriticalPath => priority[&b]
                        .partial_cmp(&priority[&a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b)),
                })
                .expect("checked non-empty");
            pending.retain(|&id| id != next);
            let end = now + work[&next] / work_per_second;
            slot_free[slot] = end;
            finish.insert(next, end);
            continue;
        }
        // Advance to the next event strictly after `now`.
        let next_time = slot_free
            .iter()
            .copied()
            .chain(pending.iter().map(|id| submit[id]))
            .chain(finish.values().copied())
            .filter(|&t| t > now)
            .fold(f64::INFINITY, f64::min);
        debug_assert!(next_time.is_finite(), "scheduler stalled with pending jobs");
        now = next_time;
    }

    let makespan = finish.values().copied().fold(0.0, f64::max);
    let mean_completion = if finish.is_empty() {
        0.0
    } else {
        finish.iter().map(|(id, f)| f - submit[id]).sum::<f64>() / finish.len() as f64
    };

    if obs.is_enabled() {
        // One lock for the whole replay; per-job spans use the interned
        // indexed-name path instead of formatting `job_{id}` each time.
        let mut batch = obs.batch();
        let root = batch.span_enter("pipeline.sched", "schedule", 0.0);
        let mut ids: Vec<JobId> = finish.keys().copied().collect();
        ids.sort();
        for id in &ids {
            let end = finish[id];
            let start = end - work[id] / work_per_second;
            let span = batch.span_enter_indexed("pipeline.sched", "job", id.0 as usize, start);
            batch.span_exit(span, end);
            batch.histogram_observe(
                "pipeline.sched",
                "completion_seconds",
                &[("policy", policy.name())],
                end - submit[id],
            );
        }
        batch.counter_add(
            "pipeline.sched",
            "jobs_scheduled",
            &[("policy", policy.name())],
            ids.len() as u64,
        );
        batch.gauge_set(
            "pipeline.sched",
            "makespan_seconds",
            &[("policy", policy.name())],
            makespan,
        );
        batch.span_exit(root, makespan);
    }

    Ok(ScheduleReport {
        makespan,
        mean_completion,
        finish,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};
    use adas_workload::job::Job;
    use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};
    use adas_workload::{DatasetId, TemplateId};

    fn job(id: u64, submit: u64, scale: i64, inputs: Vec<u64>, outputs: Vec<u64>) -> Job {
        // Larger `scale` → wider range filter → more work.
        Job {
            id: JobId(id),
            template: TemplateId(id),
            plan: LogicalPlan::scan("events")
                .filter(Predicate::single(2, CmpOp::Le, scale))
                .aggregate(vec![1]),
            submit_time: submit,
            inputs: inputs.into_iter().map(DatasetId).collect(),
            outputs: outputs.into_iter().map(DatasetId).collect(),
        }
    }

    #[test]
    fn dependencies_gate_start_times() {
        let trace = Trace::new(vec![
            job(0, 0, 500, vec![], vec![1]),
            job(1, 0, 500, vec![1], vec![]),
        ]);
        let catalog = Catalog::standard();
        let r = schedule(&trace, &catalog, 4, 1e6, Policy::Fifo).unwrap();
        assert!(r.finish[&JobId(1)] > r.finish[&JobId(0)]);
    }

    #[test]
    fn critical_path_beats_fifo_on_contended_chain() {
        // One long chain plus independent fillers; one slot of contention.
        // FIFO interleaves fillers ahead of the chain; critical-path runs
        // the chain first, shrinking the makespan.
        let mut jobs = vec![
            job(0, 0, 700, vec![], vec![1]),
            job(1, 1, 700, vec![1], vec![2]),
            job(2, 2, 700, vec![2], vec![]),
        ];
        for i in 0..6 {
            jobs.push(job(10 + i, 0, 600, vec![], vec![]));
        }
        let trace = Trace::new(jobs);
        let catalog = Catalog::standard();
        let fifo = schedule(&trace, &catalog, 2, 1e6, Policy::Fifo).unwrap();
        let cp = schedule(&trace, &catalog, 2, 1e6, Policy::CriticalPath).unwrap();
        assert!(
            cp.makespan <= fifo.makespan,
            "cp {} vs fifo {}",
            cp.makespan,
            fifo.makespan
        );
    }

    #[test]
    fn single_slot_serializes_everything() {
        let trace = Trace::new(vec![
            job(0, 0, 300, vec![], vec![]),
            job(1, 0, 300, vec![], vec![]),
        ]);
        let catalog = Catalog::standard();
        let r = schedule(&trace, &catalog, 1, 1e6, Policy::Fifo).unwrap();
        let f: Vec<f64> = {
            let mut v: Vec<f64> = r.finish.values().copied().collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        };
        assert!(
            f[1] >= 2.0 * f[0] - 1e-6,
            "jobs must not overlap on one slot"
        );
    }

    #[test]
    fn generated_workload_schedules_cleanly() {
        let w = WorkloadGenerator::new(GeneratorConfig {
            days: 1,
            jobs_per_day: 60,
            ..Default::default()
        })
        .unwrap()
        .generate()
        .unwrap();
        let r = schedule(&w.trace, &w.catalog, 8, 1e7, Policy::CriticalPath).unwrap();
        assert_eq!(r.finish.len(), w.trace.len());
        assert!(r.makespan > 0.0);
        assert!(r.mean_completion > 0.0);
    }
}
