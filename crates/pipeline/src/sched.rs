//! Dependency-aware job scheduling (Wing, \[8\]).
//!
//! "We analyzed the interdependency to facilitate job scheduling." The
//! scheduler here runs whole jobs on a bounded pool of concurrent job slots,
//! honouring inter-job dependencies. Two policies are compared:
//!
//! * [`Policy::Fifo`] — submit-time order among ready jobs (dependency-
//!   blind prioritization; dependencies still gate readiness).
//! * [`Policy::CriticalPath`] — ready jobs ordered by *downstream work*:
//!   the total work of everything transitively depending on them. This is
//!   the dependency-aware policy unearthing inter-job structure.

use crate::graph::PipelineGraph;
use adas_engine::cardinality::TrueCardinality;
use adas_engine::cost::CostModel;
use adas_engine::Result;
use adas_obs::Obs;
use adas_simkern::{Component, Ctx, Simulation};
use adas_workload::catalog::Catalog;
use adas_workload::job::Trace;
use adas_workload::JobId;
use serde::Serialize;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Job prioritization policy among ready jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Policy {
    /// Earliest submit time first.
    Fifo,
    /// Largest transitive downstream work first.
    CriticalPath,
}

impl Policy {
    /// Stable name for metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::CriticalPath => "critical_path",
        }
    }
}

/// Outcome of one scheduling run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScheduleReport {
    /// Time at which the last job finished.
    pub makespan: f64,
    /// Mean job completion time (finish − submit).
    pub mean_completion: f64,
    /// Per-job finish times.
    pub finish: HashMap<JobId, f64>,
}

/// Total work of `job` plus everything transitively downstream of it.
fn downstream_work(
    job: JobId,
    graph: &PipelineGraph,
    work: &HashMap<JobId, f64>,
    memo: &mut HashMap<JobId, f64>,
) -> f64 {
    if let Some(&w) = memo.get(&job) {
        return w;
    }
    let mut total = work[&job];
    for &c in graph.consumers(job) {
        total += downstream_work(c, graph, work, memo);
    }
    memo.insert(job, total);
    total
}

/// Schedules a trace's jobs onto `job_slots` concurrent slots. Each job's
/// duration is its true work divided by `work_per_second`.
pub fn schedule(
    trace: &Trace,
    catalog: &Catalog,
    job_slots: usize,
    work_per_second: f64,
    policy: Policy,
) -> Result<ScheduleReport> {
    schedule_with_obs(
        trace,
        catalog,
        job_slots,
        work_per_second,
        policy,
        &Obs::disabled(),
    )
}

/// Trace-derived inputs shared by every scheduler variant: the dependency
/// graph, per-job work, downstream-work priorities, and submit times.
struct SchedInputs {
    graph: PipelineGraph,
    work: HashMap<JobId, f64>,
    priority: HashMap<JobId, f64>,
    submit: HashMap<JobId, f64>,
}

impl SchedInputs {
    fn build(trace: &Trace, catalog: &Catalog) -> Result<Self> {
        let graph = PipelineGraph::build(trace);
        let truth = TrueCardinality::new(catalog);
        let cost_model = CostModel::default();
        let mut work: HashMap<JobId, f64> = HashMap::new();
        for job in trace.jobs() {
            work.insert(job.id, cost_model.total_cost(&job.plan, &truth)?);
        }
        let mut memo = HashMap::new();
        let priority: HashMap<JobId, f64> = trace
            .jobs()
            .iter()
            .map(|j| (j.id, downstream_work(j.id, &graph, &work, &mut memo)))
            .collect();
        let submit: HashMap<JobId, f64> = trace
            .jobs()
            .iter()
            .map(|j| (j.id, j.submit_time as f64))
            .collect();
        Ok(Self {
            graph,
            work,
            priority,
            submit,
        })
    }

    /// The policy comparator over ready jobs. `min_by` with this ordering
    /// picks the dispatch winner; the `a.cmp(&b)` tie-break keeps it total.
    fn compare(&self, policy: Policy, a: JobId, b: JobId) -> std::cmp::Ordering {
        match policy {
            Policy::Fifo => self.submit[&a]
                .partial_cmp(&self.submit[&b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b)),
            Policy::CriticalPath => self.priority[&b]
                .partial_cmp(&self.priority[&a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b)),
        }
    }
}

/// Computes the report and replays the run into `obs` (shared by the
/// kernel-backed and legacy paths so their traces stay byte-identical).
fn finalize(
    inputs: &SchedInputs,
    finish: HashMap<JobId, f64>,
    work_per_second: f64,
    policy: Policy,
    obs: &Obs,
) -> ScheduleReport {
    let makespan = finish.values().copied().fold(0.0, f64::max);
    // Sum completions in job-id order: `HashMap` iteration order varies
    // with the per-map hasher seed, which would make the mean differ in
    // ulps from run to run.
    let mut sorted: Vec<JobId> = finish.keys().copied().collect();
    sorted.sort();
    let mean_completion = if sorted.is_empty() {
        0.0
    } else {
        sorted
            .iter()
            .map(|id| finish[id] - inputs.submit[id])
            .sum::<f64>()
            / sorted.len() as f64
    };

    if obs.is_enabled() {
        // One lock for the whole replay; per-job spans use the interned
        // indexed-name path instead of formatting `job_{id}` each time.
        let mut batch = obs.batch();
        let root = batch.span_enter("pipeline.sched", "schedule", 0.0);
        let mut ids: Vec<JobId> = finish.keys().copied().collect();
        ids.sort();
        for id in &ids {
            let end = finish[id];
            let start = end - inputs.work[id] / work_per_second;
            let span = batch.span_enter_indexed("pipeline.sched", "job", id.0 as usize, start);
            batch.span_exit(span, end);
            batch.histogram_observe(
                "pipeline.sched",
                "completion_seconds",
                &[("policy", policy.name())],
                end - inputs.submit[id],
            );
        }
        batch.counter_add(
            "pipeline.sched",
            "jobs_scheduled",
            &[("policy", policy.name())],
            ids.len() as u64,
        );
        batch.gauge_set(
            "pipeline.sched",
            "makespan_seconds",
            &[("policy", policy.name())],
            makespan,
        );
        batch.span_exit(root, makespan);
    }

    ScheduleReport {
        makespan,
        mean_completion,
        finish,
    }
}

/// The one event kind job scheduling needs: "a decision instant arrived"
/// (a job just became submittable, a slot freed, or a dependency finished).
enum SchedEvent {
    Wake,
}

/// The scheduler as a simkern component. A `Wake` event fires at every job
/// arrival and every job completion; the handler runs the same greedy
/// dispatch loop the legacy scheduler ran at each decision instant, so the
/// finish map is bit-for-bit identical — only the owner of time changed.
struct SchedSim {
    policy: Policy,
    work_per_second: f64,
    inputs: SchedInputs,
    pending: Vec<JobId>,
    finish: HashMap<JobId, f64>,
    slot_free: Vec<f64>,
}

impl SchedSim {
    /// Dispatches every job startable at `ctx.time()`, scheduling a wake at
    /// each dispatched job's finish. Mirrors one legacy `while` iteration
    /// per pass: ready/free are recomputed from scratch after every
    /// placement, so zero-duration jobs cascade at the same instant exactly
    /// as the legacy `continue` did.
    fn dispatch_all(&mut self, ctx: &mut Ctx<'_, SchedEvent>) {
        let now = ctx.time();
        loop {
            let ready: Vec<JobId> = self
                .pending
                .iter()
                .copied()
                .filter(|&id| self.inputs.submit[&id] <= now)
                .filter(|&id| {
                    self.inputs
                        .graph
                        .producers(id)
                        .iter()
                        .all(|p| self.finish.get(p).is_some_and(|&f| f <= now))
                })
                .collect();
            let free_slot = self
                .slot_free
                .iter()
                .position(|&f| f <= now)
                .filter(|_| !ready.is_empty());
            let Some(slot) = free_slot else {
                return;
            };
            let next = ready
                .into_iter()
                .min_by(|&a, &b| self.inputs.compare(self.policy, a, b))
                .expect("checked non-empty");
            self.pending.retain(|&id| id != next);
            let end = now + self.inputs.work[&next] / self.work_per_second;
            self.slot_free[slot] = end;
            self.finish.insert(next, end);
            ctx.emit_self_at(SchedEvent::Wake, end);
        }
    }
}

impl Component<SchedEvent> for SchedSim {
    fn on_event(&mut self, _event: &SchedEvent, ctx: &mut Ctx<'_, SchedEvent>) {
        self.dispatch_all(ctx);
    }
}

/// Like [`schedule`], recording the run into `obs`: a `schedule` span over
/// the makespan with one child span per job (at its simulated dispatch and
/// finish times, in job-id order), a `jobs_scheduled` counter labelled by
/// policy, the makespan gauge and a completion-time histogram.
///
/// Time is owned by the `simkern` event loop: job arrivals are scheduled
/// as events at their submit times and completions as events at each job's
/// computed finish; the greedy dispatch decision runs at each event. The
/// decisions — and therefore the report and the recorded trace — are
/// bit-for-bit those of [`schedule_legacy`].
pub fn schedule_with_obs(
    trace: &Trace,
    catalog: &Catalog,
    job_slots: usize,
    work_per_second: f64,
    policy: Policy,
    obs: &Obs,
) -> Result<ScheduleReport> {
    assert!(job_slots >= 1, "need at least one job slot");
    assert!(work_per_second > 0.0, "work_per_second must be positive");
    let inputs = SchedInputs::build(trace, catalog)?;
    let pending: Vec<JobId> = trace.jobs().iter().map(|j| j.id).collect();
    let arrivals: Vec<f64> = pending.iter().map(|id| inputs.submit[id]).collect();
    let sched = Rc::new(RefCell::new(SchedSim {
        policy,
        work_per_second,
        inputs,
        pending,
        finish: HashMap::new(),
        slot_free: vec![0.0f64; job_slots],
    }));
    let mut sim = Simulation::new(0);
    let id = sim.add_component(sched.clone());
    for t in arrivals {
        sim.schedule_at(t, id, SchedEvent::Wake);
    }
    sim.run();
    drop(sim);
    let sched = Rc::try_unwrap(sched)
        .unwrap_or_else(|_| unreachable!("simulation still holds the component"))
        .into_inner();
    debug_assert!(
        sched.pending.is_empty(),
        "scheduler stalled with pending jobs"
    );
    Ok(finalize(
        &sched.inputs,
        sched.finish,
        work_per_second,
        policy,
        obs,
    ))
}

/// The pre-simkern scheduler: a blocking loop that advances its own `now`
/// to the next interesting instant. Kept as the reference implementation —
/// the equivalence suite pins [`schedule_with_obs`] bit-for-bit to this.
pub fn schedule_legacy(
    trace: &Trace,
    catalog: &Catalog,
    job_slots: usize,
    work_per_second: f64,
    policy: Policy,
    obs: &Obs,
) -> Result<ScheduleReport> {
    assert!(job_slots >= 1, "need at least one job slot");
    assert!(work_per_second > 0.0, "work_per_second must be positive");
    let inputs = SchedInputs::build(trace, catalog)?;
    let mut finish: HashMap<JobId, f64> = HashMap::new();
    let mut slot_free = vec![0.0f64; job_slots];
    let mut pending: Vec<JobId> = trace.jobs().iter().map(|j| j.id).collect();
    let mut now = 0.0f64;

    // Event-driven dispatch: at each instant, place the highest-priority
    // *currently ready* job onto a *currently free* slot; when nothing can
    // be dispatched, advance time to the next event (a slot freeing, a job
    // arriving, or a dependency completing).
    while !pending.is_empty() {
        let ready: Vec<JobId> = pending
            .iter()
            .copied()
            .filter(|&id| inputs.submit[&id] <= now)
            .filter(|&id| {
                inputs
                    .graph
                    .producers(id)
                    .iter()
                    .all(|p| finish.get(p).is_some_and(|&f| f <= now))
            })
            .collect();
        let free_slot = slot_free
            .iter()
            .position(|&f| f <= now)
            .filter(|_| !ready.is_empty());
        if let Some(slot) = free_slot {
            let next = ready
                .into_iter()
                .min_by(|&a, &b| inputs.compare(policy, a, b))
                .expect("checked non-empty");
            pending.retain(|&id| id != next);
            let end = now + inputs.work[&next] / work_per_second;
            slot_free[slot] = end;
            finish.insert(next, end);
            continue;
        }
        // Advance to the next event strictly after `now`.
        let next_time = slot_free
            .iter()
            .copied()
            .chain(pending.iter().map(|id| inputs.submit[id]))
            .chain(finish.values().copied())
            .filter(|&t| t > now)
            .fold(f64::INFINITY, f64::min);
        debug_assert!(next_time.is_finite(), "scheduler stalled with pending jobs");
        now = next_time;
    }

    Ok(finalize(&inputs, finish, work_per_second, policy, obs))
}

/// How the pipeline optimizer is driven relative to job execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum OptimizerMode {
    /// The legacy shape: one blocking loop owns both phases, so the
    /// optimizer never runs while any job is executing — optimize job n,
    /// run job n, only then look at job n+1.
    Serial,
    /// Kernel-scheduled: the optimizer is its own component and starts on
    /// job n+1 the moment it is free, overlapping job n's execution.
    Pipelined,
}

impl OptimizerMode {
    /// Stable name for metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            OptimizerMode::Serial => "serial",
            OptimizerMode::Pipelined => "pipelined",
        }
    }
}

/// Outcome of one optimize-then-execute scheduling run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PipelinedReport {
    /// Time at which the last job finished executing.
    pub makespan: f64,
    /// Mean job completion time (execution finish − submit).
    pub mean_completion: f64,
    /// Per-job execution finish times.
    pub finish: HashMap<JobId, f64>,
    /// Per-job optimization finish times (always ≤ the execution start).
    pub opt_finish: HashMap<JobId, f64>,
}

/// The optimize-then-execute scheduler as a simkern component: one
/// optimizer resource plus `job_slots` execution slots, with wake events
/// at submits, optimization completions and execution completions.
struct PipelinedSim {
    policy: Policy,
    mode: OptimizerMode,
    work_per_second: f64,
    optimize_seconds: f64,
    inputs: SchedInputs,
    /// Jobs not yet sent to the optimizer.
    unoptimized: Vec<JobId>,
    /// Jobs optimized (or being optimized) but not yet executing.
    pending: Vec<JobId>,
    /// Instant the optimizer frees up.
    opt_free: f64,
    opt_finish: HashMap<JobId, f64>,
    finish: HashMap<JobId, f64>,
    slot_free: Vec<f64>,
}

impl PipelinedSim {
    fn dispatch_all(&mut self, ctx: &mut Ctx<'_, SchedEvent>) {
        let now = ctx.time();
        loop {
            let mut progressed = false;

            // Feed the optimizer. In serial mode it refuses to start while
            // any job is executing or an already-optimized job has not yet
            // finished — that is the legacy blocking loop where one thread
            // owns both phases and fully drains a job before the next.
            let exec_in_flight = self.slot_free.iter().any(|&f| f > now);
            let opt_blocked =
                self.mode == OptimizerMode::Serial && (exec_in_flight || !self.pending.is_empty());
            if self.opt_free <= now && !opt_blocked {
                let candidate = self
                    .unoptimized
                    .iter()
                    .copied()
                    .filter(|&id| self.inputs.submit[&id] <= now)
                    .min_by(|&a, &b| self.inputs.compare(self.policy, a, b));
                if let Some(job) = candidate {
                    self.unoptimized.retain(|&id| id != job);
                    let done = now + self.optimize_seconds;
                    self.opt_free = done;
                    self.opt_finish.insert(job, done);
                    self.pending.push(job);
                    ctx.emit_self_at(SchedEvent::Wake, done);
                    progressed = true;
                }
            }

            // Same greedy execution dispatch as [`SchedSim`], gated on the
            // job's optimization having completed by `now`.
            let ready: Vec<JobId> = self
                .pending
                .iter()
                .copied()
                .filter(|&id| self.opt_finish[&id] <= now)
                .filter(|&id| {
                    self.inputs
                        .graph
                        .producers(id)
                        .iter()
                        .all(|p| self.finish.get(p).is_some_and(|&f| f <= now))
                })
                .collect();
            let free_slot = self
                .slot_free
                .iter()
                .position(|&f| f <= now)
                .filter(|_| !ready.is_empty());
            if let Some(slot) = free_slot {
                let next = ready
                    .into_iter()
                    .min_by(|&a, &b| self.inputs.compare(self.policy, a, b))
                    .expect("checked non-empty");
                self.pending.retain(|&id| id != next);
                let end = now + self.inputs.work[&next] / self.work_per_second;
                self.slot_free[slot] = end;
                self.finish.insert(next, end);
                ctx.emit_self_at(SchedEvent::Wake, end);
                progressed = true;
            }

            if !progressed {
                return;
            }
        }
    }
}

impl Component<SchedEvent> for PipelinedSim {
    fn on_event(&mut self, _event: &SchedEvent, ctx: &mut Ctx<'_, SchedEvent>) {
        self.dispatch_all(ctx);
    }
}

/// Schedules a trace through an explicit optimize-then-execute pipeline:
/// every job must pass through a single optimizer resource (taking
/// `optimize_seconds`) before it can run on one of `job_slots` slots.
///
/// [`OptimizerMode::Serial`] reproduces the legacy single-loop shape where
/// the optimizer and the cluster never overlap; [`OptimizerMode::Pipelined`]
/// lets the kernel interleave them, so optimizing job n+1 overlaps the
/// execution of job n. The makespan ratio between the two modes is the
/// headline number `des_bench` gates on.
#[allow(clippy::too_many_arguments)]
pub fn schedule_pipelined(
    trace: &Trace,
    catalog: &Catalog,
    job_slots: usize,
    work_per_second: f64,
    optimize_seconds: f64,
    policy: Policy,
    mode: OptimizerMode,
    obs: &Obs,
) -> Result<PipelinedReport> {
    assert!(job_slots >= 1, "need at least one job slot");
    assert!(work_per_second > 0.0, "work_per_second must be positive");
    assert!(
        optimize_seconds >= 0.0 && optimize_seconds.is_finite(),
        "optimize_seconds must be finite and non-negative"
    );
    let inputs = SchedInputs::build(trace, catalog)?;
    let unoptimized: Vec<JobId> = trace.jobs().iter().map(|j| j.id).collect();
    let arrivals: Vec<f64> = unoptimized.iter().map(|id| inputs.submit[id]).collect();
    let component = Rc::new(RefCell::new(PipelinedSim {
        policy,
        mode,
        work_per_second,
        optimize_seconds,
        inputs,
        unoptimized,
        pending: Vec::new(),
        opt_free: 0.0,
        opt_finish: HashMap::new(),
        finish: HashMap::new(),
        slot_free: vec![0.0f64; job_slots],
    }));
    let mut sim = Simulation::new(0);
    let id = sim.add_component(component.clone());
    for t in arrivals {
        sim.schedule_at(t, id, SchedEvent::Wake);
    }
    sim.run();
    drop(sim);
    let state = Rc::try_unwrap(component)
        .unwrap_or_else(|_| unreachable!("simulation still holds the component"))
        .into_inner();
    debug_assert!(
        state.unoptimized.is_empty() && state.pending.is_empty(),
        "pipelined scheduler stalled"
    );

    let makespan = state.finish.values().copied().fold(0.0, f64::max);
    let mut sorted: Vec<JobId> = state.finish.keys().copied().collect();
    sorted.sort();
    let mean_completion = if sorted.is_empty() {
        0.0
    } else {
        sorted
            .iter()
            .map(|id| state.finish[id] - state.inputs.submit[id])
            .sum::<f64>()
            / sorted.len() as f64
    };

    if obs.is_enabled() {
        let mut batch = obs.batch();
        let root = batch.span_enter("pipeline.pipelined", "schedule_pipelined", 0.0);
        let mut ids: Vec<JobId> = state.finish.keys().copied().collect();
        ids.sort();
        for id in &ids {
            let end = state.finish[id];
            let start = end - state.inputs.work[id] / work_per_second;
            let span = batch.span_enter_indexed("pipeline.pipelined", "job", id.0 as usize, start);
            batch.span_exit(span, end);
        }
        batch.counter_add(
            "pipeline.pipelined",
            "jobs_scheduled",
            &[("mode", mode.name())],
            ids.len() as u64,
        );
        batch.gauge_set(
            "pipeline.pipelined",
            "makespan_seconds",
            &[("mode", mode.name())],
            makespan,
        );
        batch.span_exit(root, makespan);
    }

    Ok(PipelinedReport {
        makespan,
        mean_completion,
        finish: state.finish,
        opt_finish: state.opt_finish,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};
    use adas_workload::job::Job;
    use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};
    use adas_workload::{DatasetId, TemplateId};

    fn job(id: u64, submit: u64, scale: i64, inputs: Vec<u64>, outputs: Vec<u64>) -> Job {
        // Larger `scale` → wider range filter → more work.
        Job {
            id: JobId(id),
            template: TemplateId(id),
            plan: LogicalPlan::scan("events")
                .filter(Predicate::single(2, CmpOp::Le, scale))
                .aggregate(vec![1]),
            submit_time: submit,
            inputs: inputs.into_iter().map(DatasetId).collect(),
            outputs: outputs.into_iter().map(DatasetId).collect(),
        }
    }

    #[test]
    fn dependencies_gate_start_times() {
        let trace = Trace::new(vec![
            job(0, 0, 500, vec![], vec![1]),
            job(1, 0, 500, vec![1], vec![]),
        ]);
        let catalog = Catalog::standard();
        let r = schedule(&trace, &catalog, 4, 1e6, Policy::Fifo).unwrap();
        assert!(r.finish[&JobId(1)] > r.finish[&JobId(0)]);
    }

    #[test]
    fn critical_path_beats_fifo_on_contended_chain() {
        // One long chain plus independent fillers; one slot of contention.
        // FIFO interleaves fillers ahead of the chain; critical-path runs
        // the chain first, shrinking the makespan.
        let mut jobs = vec![
            job(0, 0, 700, vec![], vec![1]),
            job(1, 1, 700, vec![1], vec![2]),
            job(2, 2, 700, vec![2], vec![]),
        ];
        for i in 0..6 {
            jobs.push(job(10 + i, 0, 600, vec![], vec![]));
        }
        let trace = Trace::new(jobs);
        let catalog = Catalog::standard();
        let fifo = schedule(&trace, &catalog, 2, 1e6, Policy::Fifo).unwrap();
        let cp = schedule(&trace, &catalog, 2, 1e6, Policy::CriticalPath).unwrap();
        assert!(
            cp.makespan <= fifo.makespan,
            "cp {} vs fifo {}",
            cp.makespan,
            fifo.makespan
        );
    }

    #[test]
    fn single_slot_serializes_everything() {
        let trace = Trace::new(vec![
            job(0, 0, 300, vec![], vec![]),
            job(1, 0, 300, vec![], vec![]),
        ]);
        let catalog = Catalog::standard();
        let r = schedule(&trace, &catalog, 1, 1e6, Policy::Fifo).unwrap();
        let f: Vec<f64> = {
            let mut v: Vec<f64> = r.finish.values().copied().collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        };
        assert!(
            f[1] >= 2.0 * f[0] - 1e-6,
            "jobs must not overlap on one slot"
        );
    }

    #[test]
    fn kernel_schedule_matches_legacy_bit_for_bit() {
        let w = WorkloadGenerator::new(GeneratorConfig {
            days: 2,
            jobs_per_day: 80,
            ..Default::default()
        })
        .unwrap()
        .generate()
        .unwrap();
        for policy in [Policy::Fifo, Policy::CriticalPath] {
            for slots in [1, 3, 8] {
                let kernel =
                    schedule_with_obs(&w.trace, &w.catalog, slots, 1e7, policy, &Obs::disabled())
                        .unwrap();
                let legacy =
                    schedule_legacy(&w.trace, &w.catalog, slots, 1e7, policy, &Obs::disabled())
                        .unwrap();
                assert_eq!(kernel.finish.len(), legacy.finish.len());
                for (id, f) in &legacy.finish {
                    assert_eq!(
                        kernel.finish[id].to_bits(),
                        f.to_bits(),
                        "job {id:?} finish diverged ({policy:?}, {slots} slots)"
                    );
                }
                assert_eq!(kernel.makespan.to_bits(), legacy.makespan.to_bits());
                assert_eq!(
                    kernel.mean_completion.to_bits(),
                    legacy.mean_completion.to_bits()
                );
            }
        }
    }

    #[test]
    fn pipelined_mode_overlaps_optimizer_with_execution() {
        // Independent equal jobs: serial alternates optimize/execute, so
        // its makespan is ~n·(opt+exec); pipelined hides optimization
        // behind execution after the first job.
        let jobs: Vec<Job> = (0..8).map(|i| job(i, 0, 500, vec![], vec![])).collect();
        let trace = Trace::new(jobs);
        let catalog = Catalog::standard();
        let serial = schedule_pipelined(
            &trace,
            &catalog,
            1,
            1e6,
            5.0,
            Policy::Fifo,
            OptimizerMode::Serial,
            &Obs::disabled(),
        )
        .unwrap();
        let pipelined = schedule_pipelined(
            &trace,
            &catalog,
            1,
            1e6,
            5.0,
            Policy::Fifo,
            OptimizerMode::Pipelined,
            &Obs::disabled(),
        )
        .unwrap();
        assert_eq!(serial.finish.len(), 8);
        assert_eq!(pipelined.finish.len(), 8);
        assert!(
            pipelined.makespan < serial.makespan,
            "pipelined {} should beat serial {}",
            pipelined.makespan,
            serial.makespan
        );
        // Every job is optimized before it finishes executing, in both modes.
        for r in [&serial, &pipelined] {
            for (id, &end) in &r.finish {
                assert!(r.opt_finish[id] <= end, "optimization precedes finish");
            }
        }
        // In serial mode the optimizer never overlapped execution: the k-th
        // optimization starts only after the (k-1)-th execution finished.
        let mut opt_times: Vec<f64> = serial.opt_finish.values().copied().collect();
        let mut exec_times: Vec<f64> = serial.finish.values().copied().collect();
        opt_times.sort_by(f64::total_cmp);
        exec_times.sort_by(f64::total_cmp);
        for k in 1..opt_times.len() {
            assert!(
                opt_times[k] - 5.0 >= exec_times[k - 1] - 1e-9,
                "serial optimizer started during execution"
            );
        }
    }

    #[test]
    fn generated_workload_schedules_cleanly() {
        let w = WorkloadGenerator::new(GeneratorConfig {
            days: 1,
            jobs_per_day: 60,
            ..Default::default()
        })
        .unwrap()
        .generate()
        .unwrap();
        let r = schedule(&w.trace, &w.catalog, 8, 1e7, Policy::CriticalPath).unwrap();
        assert_eq!(r.finish.len(), w.trace.len());
        assert!(r.makespan > 0.0);
        assert!(r.mean_completion > 0.0);
    }
}
