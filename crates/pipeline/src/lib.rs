//! Pipeline optimization and dependency-aware scheduling.
//!
//! "Production workloads not only have many recurrent queries, but also many
//! recurrent query pipelines, where queries are interconnected by their
//! outputs and inputs. For example, 70% of daily SCOPE jobs have inter-job
//! dependencies. We analyzed the interdependency to facilitate job
//! scheduling \[8\] and developed a pipeline optimizer to optimize these
//! recurrent pipelines \[14\], including collecting pipeline-aware statistics
//! and pushing common subexpressions across consumer jobs to their producer
//! job." (Sec 4.2)
//!
//! * [`graph`] — the inter-job dependency graph and pipeline-aware
//!   statistics (pipeline membership, sizes, recurrence).
//! * [`pushdown`] — the Pipemizer transformation: a subexpression computed
//!   by several consumers of one producer is computed once in the producer
//!   and shipped as an extra output.
//! * [`sched`] — dependency-aware job scheduling (Wing, \[8\]): comparing
//!   dependency-blind FIFO with critical-path-aware ordering on a bounded
//!   pool of job slots.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph;
pub mod pushdown;
pub mod sched;

pub use graph::{PipelineGraph, PipelineStats};
pub use pushdown::{optimize_pipelines, PushdownReport};
pub use sched::{
    schedule, schedule_legacy, schedule_pipelined, schedule_with_obs, OptimizerMode,
    PipelinedReport, Policy, ScheduleReport,
};
