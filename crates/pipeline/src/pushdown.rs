//! The Pipemizer transformation: pushing common subexpressions across
//! consumer jobs into their producer job.
//!
//! When several consumers of one producer each compute the same
//! subexpression, the optimized pipeline computes it once — the producer
//! gains the subexpression as an extra output (materialized to a new
//! dataset), and each consumer replaces its copy with a scan of that
//! dataset. Savings are measured in true work units.

use crate::graph::PipelineGraph;
use adas_engine::cardinality::{CardinalityModel, TrueCardinality};
use adas_engine::cost::CostModel;
use adas_engine::Result;
use adas_workload::catalog::{Catalog, TableMeta};
use adas_workload::job::{Job, Trace};
use adas_workload::plan::LogicalPlan;
use adas_workload::signature::{strict_signature, Signature};
use adas_workload::JobId;
use serde::Serialize;
use std::collections::HashMap;

/// Result of optimizing a trace's pipelines.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PushdownReport {
    /// Producers that gained at least one pushed subexpression.
    pub producers_extended: usize,
    /// Subexpressions pushed (each shared by >= 2 consumers).
    pub subexpressions_pushed: usize,
    /// Consumer plan rewrites applied.
    pub consumer_rewrites: usize,
    /// Total true work before optimization.
    pub baseline_work: f64,
    /// Total true work after optimization (incl. one-time computation of
    /// each pushed subexpression).
    pub optimized_work: f64,
    /// Relative work reduction.
    pub work_reduction: f64,
}

fn replace_subplan(
    plan: &LogicalPlan,
    target: Signature,
    table: &str,
    hits: &mut usize,
) -> LogicalPlan {
    if plan.node_count() >= 2 && strict_signature(plan) == target {
        *hits += 1;
        return LogicalPlan::scan(table);
    }
    LogicalPlan {
        kind: plan.kind.clone(),
        children: plan
            .children
            .iter()
            .map(|c| replace_subplan(c, target, table, hits))
            .collect(),
    }
}

/// Optimizes all pipelines in a trace. Returns the rewritten jobs, the
/// catalog extended with the pushed datasets, and the report.
pub fn optimize_pipelines(
    trace: &Trace,
    catalog: &Catalog,
) -> Result<(Vec<Job>, Catalog, PushdownReport)> {
    let graph = PipelineGraph::build(trace);
    let truth = TrueCardinality::new(catalog);
    let cost_model = CostModel::default();
    let by_id: HashMap<JobId, &Job> = trace.jobs().iter().map(|j| (j.id, j)).collect();

    let mut rewritten: HashMap<JobId, Job> =
        trace.jobs().iter().map(|j| (j.id, j.clone())).collect();
    let mut extended = catalog.clone();
    let mut producers_extended = 0usize;
    let mut subexpressions_pushed = 0usize;
    let mut consumer_rewrites = 0usize;
    let mut pushed_extra_work = 0.0f64;

    // Examine every producer with >= 2 consumers.
    let mut producer_ids: Vec<JobId> = trace
        .jobs()
        .iter()
        .map(|j| j.id)
        .filter(|&id| graph.consumers(id).len() >= 2)
        .collect();
    producer_ids.sort();
    for producer in producer_ids {
        let consumers = graph.consumers(producer);
        // Count non-trivial subplans shared across distinct consumers.
        let mut counts: HashMap<Signature, (usize, LogicalPlan)> = HashMap::new();
        for &cid in consumers {
            let job = by_id[&cid];
            let mut seen: Vec<Signature> = Vec::new();
            for sub in job.plan.subplans() {
                if sub.node_count() < 2 {
                    continue;
                }
                let sig = strict_signature(sub);
                if seen.contains(&sig) {
                    continue;
                }
                seen.push(sig);
                counts.entry(sig).or_insert_with(|| (0, sub.clone())).0 += 1;
            }
        }
        // Deterministic order: by signature.
        let mut shared: Vec<(Signature, usize, LogicalPlan)> = counts
            .into_iter()
            .filter(|(_, (n, _))| *n >= 2)
            .map(|(sig, (n, plan))| (sig, n, plan))
            .collect();
        shared.sort_by_key(|(sig, _, _)| *sig);
        // Keep only maximal subexpressions (not contained in another pushed one).
        let maximal: Vec<(Signature, usize, LogicalPlan)> = shared
            .iter()
            .filter(|(sig, _, plan)| {
                !shared.iter().any(|(other_sig, _, other_plan)| {
                    other_sig != sig
                        && other_plan.node_count() > plan.node_count()
                        && other_plan
                            .subplans()
                            .iter()
                            .any(|s| s.node_count() >= 2 && strict_signature(s) == *sig)
                })
            })
            .cloned()
            .collect();
        if maximal.is_empty() {
            continue;
        }
        producers_extended += 1;
        for (sig, _, sub) in maximal {
            subexpressions_pushed += 1;
            let rows = truth.estimate(&sub)?;
            let build = cost_model.total_cost(&sub, &truth)?;
            pushed_extra_work += build;
            let table_name = format!("pushed_{:016x}", sig.0);
            let columns = sub
                .base_table()
                .and_then(|t| catalog.table(t).ok())
                .map(|t| t.columns.clone())
                .unwrap_or_default();
            extended.add_table(TableMeta {
                name: table_name.clone(),
                rows: rows.max(1.0) as u64,
                columns,
            });
            extended.register_view(&table_name, sub.clone());
            for &cid in consumers {
                let job = rewritten.get_mut(&cid).expect("job present");
                let mut hits = 0usize;
                job.plan = replace_subplan(&job.plan, sig, &table_name, &mut hits);
                consumer_rewrites += hits;
            }
        }
    }

    // Work accounting.
    let mut baseline_work = 0.0;
    for job in trace.jobs() {
        baseline_work += cost_model.total_cost(&job.plan, &truth)?;
    }
    let mut optimized_work = pushed_extra_work;
    let truth_ext = TrueCardinality::new(&extended);
    let mut jobs: Vec<Job> = rewritten.into_values().collect();
    jobs.sort_by_key(|j| j.id);
    for job in &jobs {
        optimized_work += cost_model.total_cost(&job.plan, &truth_ext)?;
    }
    let work_reduction = if baseline_work > 0.0 {
        (baseline_work - optimized_work) / baseline_work
    } else {
        0.0
    };
    Ok((
        jobs,
        extended,
        PushdownReport {
            producers_extended,
            subexpressions_pushed,
            consumer_rewrites,
            baseline_work,
            optimized_work,
            work_reduction,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_workload::plan::{CmpOp, Predicate};
    use adas_workload::{DatasetId, TemplateId};

    fn shared_expr() -> LogicalPlan {
        LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 3)),
            LogicalPlan::scan("users"),
            0,
            0,
        )
    }

    /// Producer feeding two consumers that both compute `shared_expr`.
    fn pipeline_trace() -> Trace {
        let producer = Job {
            id: JobId(0),
            template: TemplateId(0),
            plan: LogicalPlan::scan("sessions").aggregate(vec![1]),
            submit_time: 0,
            inputs: vec![],
            outputs: vec![DatasetId(1)],
        };
        let consumer = |id: u64, group: usize| Job {
            id: JobId(id),
            template: TemplateId(id),
            plan: shared_expr().aggregate(vec![group]),
            submit_time: 10 * id,
            inputs: vec![DatasetId(1)],
            outputs: vec![],
        };
        Trace::new(vec![producer, consumer(1, 0), consumer(2, 1)])
    }

    #[test]
    fn shared_consumer_subexpression_pushed() {
        let catalog = Catalog::standard();
        let (jobs, extended, report) = optimize_pipelines(&pipeline_trace(), &catalog).unwrap();
        assert_eq!(report.producers_extended, 1);
        assert!(report.subexpressions_pushed >= 1);
        assert_eq!(report.consumer_rewrites, 2);
        assert!(report.work_reduction > 0.0, "{report:?}");
        // Consumers now scan the pushed dataset.
        let pushed_tables: Vec<&str> = extended
            .tables()
            .iter()
            .map(|t| t.name.as_str())
            .filter(|n| n.starts_with("pushed_"))
            .collect();
        assert!(!pushed_tables.is_empty());
        for job in &jobs[1..] {
            assert!(
                job.plan.iter().any(|n| matches!(&n.kind,
                    adas_workload::plan::PlanKind::Scan { table } if table.starts_with("pushed_")))
            );
        }
    }

    #[test]
    fn maximal_subexpression_preferred() {
        // The whole shared_expr (join) contains the filter subtree; only the
        // join (maximal) should be pushed, not both.
        let catalog = Catalog::standard();
        let (_, _, report) = optimize_pipelines(&pipeline_trace(), &catalog).unwrap();
        assert_eq!(report.subexpressions_pushed, 1);
    }

    #[test]
    fn single_consumer_pipelines_untouched() {
        let producer = Job {
            id: JobId(0),
            template: TemplateId(0),
            plan: LogicalPlan::scan("sessions").aggregate(vec![1]),
            submit_time: 0,
            inputs: vec![],
            outputs: vec![DatasetId(1)],
        };
        let consumer = Job {
            id: JobId(1),
            template: TemplateId(1),
            plan: shared_expr().aggregate(vec![0]),
            submit_time: 10,
            inputs: vec![DatasetId(1)],
            outputs: vec![],
        };
        let catalog = Catalog::standard();
        let (_, _, report) =
            optimize_pipelines(&Trace::new(vec![producer, consumer]), &catalog).unwrap();
        assert_eq!(report.producers_extended, 0);
        assert_eq!(report.work_reduction, 0.0);
    }

    #[test]
    fn disjoint_consumers_share_nothing() {
        let producer = Job {
            id: JobId(0),
            template: TemplateId(0),
            plan: LogicalPlan::scan("sessions").aggregate(vec![1]),
            submit_time: 0,
            inputs: vec![],
            outputs: vec![DatasetId(1)],
        };
        let c1 = Job {
            id: JobId(1),
            template: TemplateId(1),
            plan: LogicalPlan::scan("events")
                .filter(Predicate::single(1, CmpOp::Eq, 1))
                .aggregate(vec![0]),
            submit_time: 10,
            inputs: vec![DatasetId(1)],
            outputs: vec![],
        };
        let c2 = Job {
            id: JobId(2),
            template: TemplateId(2),
            plan: LogicalPlan::scan("events")
                .filter(Predicate::single(1, CmpOp::Eq, 2))
                .aggregate(vec![0]),
            submit_time: 20,
            inputs: vec![DatasetId(1)],
            outputs: vec![],
        };
        let catalog = Catalog::standard();
        let (_, _, report) =
            optimize_pipelines(&Trace::new(vec![producer, c1, c2]), &catalog).unwrap();
        assert_eq!(report.subexpressions_pushed, 0);
    }
}
