//! Inter-job dependency graphs and pipeline-aware statistics.

use adas_workload::job::Trace;
use adas_workload::{DatasetId, JobId};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap, HashSet};

/// The dependency graph over one trace's jobs.
#[derive(Debug, Clone, Default)]
pub struct PipelineGraph {
    /// Edges `(producer, consumer)`.
    edges: Vec<(JobId, JobId)>,
    /// Downstream adjacency.
    downstream: HashMap<JobId, Vec<JobId>>,
    /// Upstream adjacency.
    upstream: HashMap<JobId, Vec<JobId>>,
    /// Pipeline (weakly connected component with >= 2 jobs) membership.
    pipelines: Vec<Vec<JobId>>,
}

impl PipelineGraph {
    /// Builds the graph by matching produced to consumed datasets.
    pub fn build(trace: &Trace) -> Self {
        let mut producer_of: HashMap<DatasetId, JobId> = HashMap::new();
        for job in trace.jobs() {
            for out in &job.outputs {
                producer_of.insert(*out, job.id);
            }
        }
        let mut edges = Vec::new();
        let mut downstream: HashMap<JobId, Vec<JobId>> = HashMap::new();
        let mut upstream: HashMap<JobId, Vec<JobId>> = HashMap::new();
        for job in trace.jobs() {
            for input in &job.inputs {
                if let Some(&producer) = producer_of.get(input) {
                    edges.push((producer, job.id));
                    downstream.entry(producer).or_default().push(job.id);
                    upstream.entry(job.id).or_default().push(producer);
                }
            }
        }

        // Weakly connected components via union-find over job ids.
        let mut parent: BTreeMap<JobId, JobId> =
            trace.jobs().iter().map(|j| (j.id, j.id)).collect();
        fn find(parent: &mut BTreeMap<JobId, JobId>, x: JobId) -> JobId {
            let mut root = x;
            while parent[&root] != root {
                root = parent[&root];
            }
            let mut cur = x;
            while parent[&cur] != root {
                let next = parent[&cur];
                parent.insert(cur, root);
                cur = next;
            }
            root
        }
        for &(a, b) in &edges {
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra != rb {
                parent.insert(ra, rb);
            }
        }
        let mut components: BTreeMap<JobId, Vec<JobId>> = BTreeMap::new();
        let ids: Vec<JobId> = parent.keys().copied().collect();
        for id in ids {
            let root = find(&mut parent, id);
            components.entry(root).or_default().push(id);
        }
        let pipelines: Vec<Vec<JobId>> =
            components.into_values().filter(|c| c.len() >= 2).collect();

        Self {
            edges,
            downstream,
            upstream,
            pipelines,
        }
    }

    /// Dependency edges `(producer, consumer)`.
    pub fn edges(&self) -> &[(JobId, JobId)] {
        &self.edges
    }

    /// Jobs directly consuming `job`'s outputs.
    pub fn consumers(&self, job: JobId) -> &[JobId] {
        self.downstream.get(&job).map_or(&[], Vec::as_slice)
    }

    /// Jobs whose outputs `job` consumes.
    pub fn producers(&self, job: JobId) -> &[JobId] {
        self.upstream.get(&job).map_or(&[], Vec::as_slice)
    }

    /// The pipelines (components with >= 2 jobs), deterministic order.
    pub fn pipelines(&self) -> &[Vec<JobId>] {
        &self.pipelines
    }

    /// Pipeline-aware statistics for a trace.
    pub fn stats(&self, trace: &Trace) -> PipelineStats {
        let in_pipeline: HashSet<JobId> = self.pipelines.iter().flatten().copied().collect();
        let total = trace.len();
        PipelineStats {
            total_jobs: total,
            pipelined_jobs: in_pipeline.len(),
            pipelined_fraction: if total == 0 {
                0.0
            } else {
                in_pipeline.len() as f64 / total as f64
            },
            pipeline_count: self.pipelines.len(),
            max_pipeline_len: self.pipelines.iter().map(Vec::len).max().unwrap_or(0),
            edge_count: self.edges.len(),
        }
    }
}

/// Headline pipeline statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PipelineStats {
    /// Jobs in the trace.
    pub total_jobs: usize,
    /// Jobs belonging to some pipeline.
    pub pipelined_jobs: usize,
    /// Fraction of jobs in pipelines (paper: 0.7).
    pub pipelined_fraction: f64,
    /// Number of pipelines.
    pub pipeline_count: usize,
    /// Largest pipeline (jobs).
    pub max_pipeline_len: usize,
    /// Total dependency edges.
    pub edge_count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};
    use adas_workload::job::Job;
    use adas_workload::plan::LogicalPlan;
    use adas_workload::TemplateId;

    fn job(id: u64, inputs: Vec<u64>, outputs: Vec<u64>) -> Job {
        Job {
            id: JobId(id),
            template: TemplateId(0),
            plan: LogicalPlan::scan("events"),
            submit_time: id * 10,
            inputs: inputs.into_iter().map(DatasetId).collect(),
            outputs: outputs.into_iter().map(DatasetId).collect(),
        }
    }

    #[test]
    fn chain_forms_one_pipeline() {
        let trace = Trace::new(vec![
            job(0, vec![], vec![100]),
            job(1, vec![100], vec![101]),
            job(2, vec![101], vec![]),
            job(3, vec![], vec![]), // loner
        ]);
        let g = PipelineGraph::build(&trace);
        assert_eq!(g.edges().len(), 2);
        assert_eq!(g.pipelines().len(), 1);
        assert_eq!(g.pipelines()[0].len(), 3);
        let stats = g.stats(&trace);
        assert_eq!(stats.pipelined_jobs, 3);
        assert_eq!(stats.max_pipeline_len, 3);
        assert!((stats.pipelined_fraction - 0.75).abs() < 1e-9);
    }

    #[test]
    fn fan_out_consumers() {
        let trace = Trace::new(vec![
            job(0, vec![], vec![100]),
            job(1, vec![100], vec![]),
            job(2, vec![100], vec![]),
        ]);
        let g = PipelineGraph::build(&trace);
        assert_eq!(g.consumers(JobId(0)), &[JobId(1), JobId(2)]);
        assert_eq!(g.producers(JobId(1)), &[JobId(0)]);
        assert_eq!(g.pipelines().len(), 1);
    }

    #[test]
    fn generated_workload_hits_dependency_target() {
        let w = WorkloadGenerator::new(GeneratorConfig::default())
            .unwrap()
            .generate()
            .unwrap();
        let g = PipelineGraph::build(&w.trace);
        let stats = g.stats(&w.trace);
        assert!(
            (0.6..=0.8).contains(&stats.pipelined_fraction),
            "pipelined fraction {}",
            stats.pipelined_fraction
        );
        assert!(stats.pipeline_count > 0);
    }

    #[test]
    fn empty_trace() {
        let g = PipelineGraph::build(&Trace::default());
        assert!(g.pipelines().is_empty());
        assert_eq!(g.stats(&Trace::default()).pipelined_fraction, 0.0);
    }
}
