//! Service layer: automating customer-facing decisions (Sec 4.3).
//!
//! "The primary goal of the autonomous cloud services is to automate as many
//! customer-facing decisions and options as possible." Four deployed systems
//! from the paper, each built on the model-granularity spectrum (global /
//! segment / individual) that Insight 2 discusses:
//!
//! * [`seagull`] — backup-window scheduling for PostgreSQL/MySQL fleets via
//!   per-server (individual) load forecasts; the paper reports 99% low-load
//!   window accuracy, with a simple previous-day heuristic already at 96%.
//! * [`moneyball`] — proactive pause/resume for Azure SQL Serverless; 77%
//!   of usage is predictable, and forecasting it cuts cold-start resumes at
//!   bounded compute cost.
//! * [`doppler`] — SKU recommendation for on-prem→cloud migration using
//!   segment models plus a per-customer price-performance ranking; >95%
//!   recommendation accuracy.
//! * [`sparktune`] — Spark configuration auto-tuning: a global model trained
//!   on benchmarks provides the starting point, fine-tuned per application
//!   as observations accumulate.

//! # Example: Seagull in three lines
//!
//! ```
//! use adas_service::seagull::{generate_fleet, schedule_fleet, BackupForecaster};
//!
//! let fleet = generate_fleet(50, 14, 0.7, 0.2, 1);
//! let report = schedule_fleet(&fleet, BackupForecaster::MlModel, 2, 0.25);
//! assert!(report.accuracy > 0.9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod doppler;
pub mod moneyball;
pub mod seagull;
pub mod sparktune;
