//! Spark configuration auto-tuning (Sec 4.3, \[45\]).
//!
//! "Another example involves auto-tuning configurations for Spark, built on
//! top of the resource usage predictor. We use iterative tuning algorithms
//! to replace the manual process for customers. We start with a global model
//! trained using data from multiple benchmark queries. While the global
//! model may not be highly accurate, it serves as a reasonable starting
//! point and is fine-tuned for each application as more observational data
//! becomes available."
//!
//! Applications have a hidden response surface over `(executors, memory)`;
//! running a configuration observes its cost (latency + resource price).
//! The tuner hill-climbs from a starting point; the experiment compares a
//! cold start against the global-model start (AutoToken-style executor
//! prediction from application features).

use adas_ml::dataset::Dataset;
use adas_ml::linear::LinearRegression;
use adas_ml::{Regressor, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A Spark configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SparkConfig {
    /// Number of executors (1..=64).
    pub executors: u32,
    /// Memory per executor, GB (2..=64, powers of two in practice).
    pub memory_gb: u32,
}

impl SparkConfig {
    /// Clamps into the valid range.
    pub fn clamped(self) -> Self {
        Self {
            executors: self.executors.clamp(1, 64),
            memory_gb: self.memory_gb.clamp(2, 64),
        }
    }

    /// The 4-neighbourhood in config space (±4 executors, ±2x memory-ish
    /// steps), clamped.
    pub fn neighbors(self) -> Vec<SparkConfig> {
        vec![
            Self {
                executors: self.executors.saturating_add(4),
                ..self
            }
            .clamped(),
            Self {
                executors: self.executors.saturating_sub(4).max(1),
                ..self
            }
            .clamped(),
            Self {
                memory_gb: self.memory_gb.saturating_add(4),
                ..self
            }
            .clamped(),
            Self {
                memory_gb: self.memory_gb.saturating_sub(4).max(2),
                ..self
            }
            .clamped(),
        ]
    }
}

/// An application with a hidden response surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparkApp {
    /// Observable feature: input size, GB.
    pub input_gb: f64,
    /// Observable feature: number of stages.
    pub stages: f64,
    /// Hidden: total work units.
    work: f64,
    /// Hidden: parallelism beyond this wastes executors.
    parallelism_cap: f64,
    /// Hidden: memory (GB/executor) below which spill slows the app.
    memory_need: f64,
}

impl SparkApp {
    /// Generates `n` heterogeneous applications.
    pub fn generate(n: usize, seed: u64) -> Vec<SparkApp> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let input_gb = rng.gen_range(5.0..500.0);
                let stages = rng.gen_range(4.0..60.0f64);
                SparkApp {
                    input_gb,
                    stages,
                    work: input_gb * rng.gen_range(8.0..12.0),
                    parallelism_cap: (input_gb / 8.0 + stages / 4.0).clamp(2.0, 64.0),
                    memory_need: (input_gb / 16.0).clamp(2.0, 48.0),
                }
            })
            .collect()
    }

    /// True cost of running a configuration: latency plus resource price.
    /// Deterministic (the tuner's observations are noise-free; production
    /// noise only slows convergence without changing the comparison).
    pub fn cost(&self, config: SparkConfig) -> f64 {
        let config = config.clamped();
        let effective = (config.executors as f64).min(self.parallelism_cap);
        let mut latency = self.work / effective + 5.0;
        if (config.memory_gb as f64) < self.memory_need {
            // Spill penalty grows with the shortfall.
            latency *= 1.0 + 1.5 * (self.memory_need - config.memory_gb as f64) / self.memory_need;
        }
        let price = config.executors as f64 * (1.0 + config.memory_gb as f64 / 32.0);
        latency + 0.8 * price
    }

    /// Exhaustive-search optimum over the config grid (the oracle).
    pub fn oracle(&self) -> (SparkConfig, f64) {
        let mut best = (
            SparkConfig {
                executors: 1,
                memory_gb: 2,
            },
            f64::INFINITY,
        );
        for executors in (1..=64u32).step_by(1) {
            for memory_gb in (2..=64u32).step_by(2) {
                let c = SparkConfig {
                    executors,
                    memory_gb,
                };
                let cost = self.cost(c);
                if cost < best.1 {
                    best = (c, cost);
                }
            }
        }
        best
    }
}

/// The global model: predicts a starting configuration from observable
/// features, trained on benchmark apps whose best configs were found by
/// exhaustive search ("data from multiple benchmark queries").
pub struct GlobalModel {
    executors_model: LinearRegression,
    memory_model: LinearRegression,
}

impl GlobalModel {
    /// Trains on a benchmark population.
    pub fn train(benchmarks: &[SparkApp]) -> Result<Self> {
        let features: Vec<Vec<f64>> = benchmarks
            .iter()
            .map(|a| vec![a.input_gb, a.stages])
            .collect();
        let best: Vec<(SparkConfig, f64)> = benchmarks.iter().map(SparkApp::oracle).collect();
        let executors_model = LinearRegression::fit(&Dataset::new(
            features.clone(),
            best.iter().map(|(c, _)| c.executors as f64).collect(),
        )?)?;
        let memory_model = LinearRegression::fit(&Dataset::new(
            features,
            best.iter().map(|(c, _)| c.memory_gb as f64).collect(),
        )?)?;
        Ok(Self {
            executors_model,
            memory_model,
        })
    }

    /// Suggested starting configuration for an application.
    pub fn suggest(&self, app: &SparkApp) -> SparkConfig {
        let f = vec![app.input_gb, app.stages];
        SparkConfig {
            executors: self.executors_model.predict(&f).round().max(1.0) as u32,
            memory_gb: self.memory_model.predict(&f).round().max(2.0) as u32,
        }
        .clamped()
    }
}

/// Iterative per-application tuner: greedy hill climbing over the config
/// neighbourhood, one observation per iteration.
///
/// Returns the best cost observed after each iteration (the convergence
/// curve of experiment C11).
pub fn tune(app: &SparkApp, start: SparkConfig, iterations: usize) -> Vec<f64> {
    let mut current = start.clamped();
    let mut current_cost = app.cost(current);
    let mut curve = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let (best_neighbor, best_cost) = current
            .neighbors()
            .into_iter()
            .map(|c| (c, app.cost(c)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("neighbourhood is non-empty");
        if best_cost < current_cost {
            current = best_neighbor;
            current_cost = best_cost;
        }
        curve.push(current_cost);
    }
    curve
}

/// Comparison of cold-start vs global-model-start tuning (experiment C11).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SparkTuneReport {
    /// Applications tuned.
    pub apps: usize,
    /// Mean relative regret (cost/oracle − 1) after `iterations` of
    /// cold-start tuning.
    pub cold_regret: f64,
    /// Mean relative regret with the global-model start.
    pub global_regret: f64,
    /// Mean regret of running the global suggestion with no tuning at all.
    pub global_start_regret: f64,
}

/// Runs the comparison over a set of applications.
pub fn compare_starts(
    apps: &[SparkApp],
    model: &GlobalModel,
    iterations: usize,
) -> SparkTuneReport {
    let cold = SparkConfig {
        executors: 8,
        memory_gb: 8,
    };
    let mut cold_sum = 0.0;
    let mut global_sum = 0.0;
    let mut start_sum = 0.0;
    for app in apps {
        let (_, oracle_cost) = app.oracle();
        let cold_curve = tune(app, cold, iterations);
        let suggestion = model.suggest(app);
        let global_curve = tune(app, suggestion, iterations);
        cold_sum += cold_curve.last().expect("iterations >= 1") / oracle_cost - 1.0;
        global_sum += global_curve.last().expect("iterations >= 1") / oracle_cost - 1.0;
        start_sum += app.cost(suggestion) / oracle_cost - 1.0;
    }
    let n = apps.len().max(1) as f64;
    SparkTuneReport {
        apps: apps.len(),
        cold_regret: cold_sum / n,
        global_regret: global_sum / n,
        global_start_regret: start_sum / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_surface_sensible() {
        let app = &SparkApp::generate(1, 5)[0];
        // More executors help until the cap, then price dominates.
        let few = app.cost(SparkConfig {
            executors: 1,
            memory_gb: 32,
        });
        let cap = app.parallelism_cap as u32;
        let at_cap = app.cost(SparkConfig {
            executors: cap.max(2),
            memory_gb: 32,
        });
        let way_over = app.cost(SparkConfig {
            executors: 64,
            memory_gb: 32,
        });
        assert!(at_cap < few);
        assert!(way_over > at_cap);
        // Starving memory hurts.
        let starved = app.cost(SparkConfig {
            executors: cap.max(2),
            memory_gb: 2,
        });
        assert!(starved > at_cap);
    }

    #[test]
    fn tuning_monotonically_improves() {
        let app = &SparkApp::generate(1, 5)[0];
        let curve = tune(
            app,
            SparkConfig {
                executors: 1,
                memory_gb: 2,
            },
            30,
        );
        assert!(curve.windows(2).all(|w| w[1] <= w[0] + 1e-9));
        let (_, oracle) = app.oracle();
        assert!(curve.last().unwrap() / oracle < 1.3);
    }

    #[test]
    fn global_start_converges_faster_than_cold() {
        let benchmarks = SparkApp::generate(60, 1);
        let model = GlobalModel::train(&benchmarks).unwrap();
        let apps = SparkApp::generate(30, 2);
        let few_iters = compare_starts(&apps, &model, 3);
        assert!(
            few_iters.global_regret <= few_iters.cold_regret,
            "global {} vs cold {}",
            few_iters.global_regret,
            few_iters.cold_regret
        );
        // The untouched global suggestion is already reasonable.
        assert!(few_iters.global_start_regret < 1.0);
    }

    #[test]
    fn more_iterations_reduce_regret() {
        let benchmarks = SparkApp::generate(60, 1);
        let model = GlobalModel::train(&benchmarks).unwrap();
        let apps = SparkApp::generate(20, 9);
        let short = compare_starts(&apps, &model, 2);
        let long = compare_starts(&apps, &model, 25);
        assert!(long.cold_regret <= short.cold_regret);
        assert!(long.global_regret <= short.global_regret + 1e-9);
    }

    #[test]
    fn config_clamping() {
        let c = SparkConfig {
            executors: 1000,
            memory_gb: 1,
        }
        .clamped();
        assert_eq!(c.executors, 64);
        assert_eq!(c.memory_gb, 2);
        assert!(c
            .neighbors()
            .iter()
            .all(|n| n.executors >= 1 && n.memory_gb >= 2));
    }
}
