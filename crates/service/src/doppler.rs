//! Doppler: automated SKU recommendation for cloud migration (Sec 4.3, \[6\]).
//!
//! "We proposed a profiling model that compares new customers to existing
//! segments of Azure customers. … We achieved a recommendation accuracy of
//! over 95% by combining the segment-wise knowledge with a per-customer
//! price-performance curve that offers a customized rank of all SKU
//! options."
//!
//! Customers are generated from segment archetypes with true resource
//! requirements; the recommender sees only a *noisy profile* (on-prem
//! telemetry is imperfect). The naive rule picks the cheapest SKU whose
//! specs cover the noisy profile and errs whenever noise crosses a SKU
//! boundary. Doppler's pipeline — k-means segmentation, segment-level
//! requirement knowledge, then a per-customer price-performance ranking —
//! smooths the noise out.

use adas_ml::cluster::KMeans;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A purchasable SKU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sku {
    /// SKU name.
    pub name: String,
    /// vCores provided.
    pub vcores: f64,
    /// Memory provided, GB.
    pub memory_gb: f64,
    /// Price per month, USD.
    pub price: f64,
}

/// The SKU ladder used across the experiments (vcores/memory double as
/// price climbs, mirroring real cloud SKU families).
pub fn standard_skus() -> Vec<Sku> {
    let mut out = Vec::new();
    let mut vcores = 2.0;
    let mut memory = 8.0;
    let mut price = 120.0;
    for i in 0..12 {
        out.push(Sku {
            name: format!("GP_{}", i + 1),
            vcores,
            memory_gb: memory,
            price,
        });
        vcores *= 1.5;
        memory *= 1.5;
        price *= 1.45;
    }
    out
}

/// A customer with true requirements and the noisy observed profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Customer {
    /// Segment archetype index (ground truth; hidden from the recommender).
    pub segment_truth: usize,
    /// True vCore requirement.
    pub true_vcores: f64,
    /// True memory requirement, GB.
    pub true_memory_gb: f64,
    /// Observed (noisy) vCores.
    pub observed_vcores: f64,
    /// Observed (noisy) memory.
    pub observed_memory_gb: f64,
}

impl Customer {
    /// Feature vector for clustering/matching (log scale to tame ranges).
    pub fn features(&self) -> Vec<f64> {
        vec![self.observed_vcores.ln(), self.observed_memory_gb.ln()]
    }
}

/// Cheapest SKU covering the given requirements; `None` if nothing fits.
pub fn cheapest_covering(skus: &[Sku], vcores: f64, memory_gb: f64) -> Option<usize> {
    skus.iter()
        .enumerate()
        .filter(|(_, s)| s.vcores >= vcores && s.memory_gb >= memory_gb)
        .min_by(|a, b| {
            a.1.price
                .partial_cmp(&b.1.price)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
}

/// The ground-truth best SKU for a customer.
pub fn true_best_sku(skus: &[Sku], c: &Customer) -> Option<usize> {
    cheapest_covering(skus, c.true_vcores, c.true_memory_gb)
}

/// Generates `n` customers from `segments` archetypes with observation
/// noise of ±`noise` (relative).
pub fn generate_customers(n: usize, segments: usize, noise: f64, seed: u64) -> Vec<Customer> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Archetype centers spread across the SKU ladder, sitting mid-gap
    // between adjacent SKU capacities: real workload segments map onto SKU
    // families rather than straddling their boundaries.
    let centers: Vec<(f64, f64)> = (0..segments)
        .map(|s| {
            let scale = 1.5f64.powi(s as i32);
            (2.6 * scale, 10.5 * scale)
        })
        .collect();
    (0..n)
        .map(|i| {
            let segment = i % segments;
            let (cv, cm) = centers[segment];
            // Within-segment spread is small relative to the gap between
            // segments (that's what makes them segments).
            let true_vcores = cv * (1.0 + rng.gen_range(-0.1..=0.1));
            let true_memory_gb = cm * (1.0 + rng.gen_range(-0.1..=0.1));
            let observed_vcores = true_vcores * (1.0 + rng.gen_range(-noise..=noise));
            let observed_memory_gb = true_memory_gb * (1.0 + rng.gen_range(-noise..=noise));
            Customer {
                segment_truth: segment,
                true_vcores,
                true_memory_gb,
                observed_vcores,
                observed_memory_gb,
            }
        })
        .collect()
}

/// The trained Doppler recommender.
pub struct Doppler {
    skus: Vec<Sku>,
    kmeans: KMeans,
    /// Per-cluster requirement estimate `(vcores, memory)`: the median of
    /// the cluster's observed profiles (noise is symmetric, so the median
    /// recovers the segment's true center).
    cluster_requirements: Vec<(f64, f64)>,
}

impl Doppler {
    /// Trains on a labeled-free training population: clusters profiles with
    /// k-means and aggregates per-cluster requirements.
    pub fn train(train: &[Customer], skus: Vec<Sku>, k: usize, seed: u64) -> adas_ml::Result<Self> {
        let points: Vec<Vec<f64>> = train.iter().map(Customer::features).collect();
        let kmeans = KMeans::fit(&points, k, 100, seed)?;
        let mut members: Vec<Vec<&Customer>> = vec![Vec::new(); k];
        for (c, p) in train.iter().zip(&points) {
            members[kmeans.assign(p)].push(c);
        }
        let pct = |mut xs: Vec<f64>, p: f64| -> f64 {
            if xs.is_empty() {
                return 0.0;
            }
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            xs[((xs.len() as f64 * p) as usize).min(xs.len() - 1)]
        };
        let cluster_requirements = members
            .iter()
            .map(|ms| {
                (
                    pct(ms.iter().map(|c| c.observed_vcores).collect(), 0.5),
                    pct(ms.iter().map(|c| c.observed_memory_gb).collect(), 0.5),
                )
            })
            .collect();
        Ok(Self {
            skus,
            kmeans,
            cluster_requirements,
        })
    }

    /// Recommends a SKU index for a new customer: segment knowledge blended
    /// with the individual profile, then the price-performance ranking
    /// (cheapest SKU covering the blended requirement).
    pub fn recommend(&self, customer: &Customer) -> Option<usize> {
        let cluster = self.kmeans.assign(&customer.features());
        let (seg_v, seg_m) = self.cluster_requirements[cluster];
        // Blend: the segment aggregate damps individual observation noise
        // (segment-weighted, since within-segment spread is far smaller
        // than per-customer telemetry noise).
        let v = 0.7 * seg_v + 0.3 * customer.observed_vcores;
        let m = 0.7 * seg_m + 0.3 * customer.observed_memory_gb;
        cheapest_covering(&self.skus, v, m)
    }

    /// The naive baseline: cheapest SKU covering the raw noisy profile.
    pub fn naive(&self, customer: &Customer) -> Option<usize> {
        cheapest_covering(
            &self.skus,
            customer.observed_vcores,
            customer.observed_memory_gb,
        )
    }

    /// Price-performance curve for one customer: all SKUs that cover the
    /// blended requirement, ranked by price (the "customized rank of all
    /// SKU options").
    pub fn price_performance_rank(&self, customer: &Customer) -> Vec<usize> {
        let cluster = self.kmeans.assign(&customer.features());
        let (seg_v, seg_m) = self.cluster_requirements[cluster];
        let v = 0.7 * seg_v + 0.3 * customer.observed_vcores;
        let m = 0.7 * seg_m + 0.3 * customer.observed_memory_gb;
        let mut fits: Vec<usize> = (0..self.skus.len())
            .filter(|&i| self.skus[i].vcores >= v && self.skus[i].memory_gb >= m)
            .collect();
        fits.sort_by(|&a, &b| {
            self.skus[a]
                .price
                .partial_cmp(&self.skus[b].price)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        fits
    }
}

/// Accuracy evaluation (experiment C10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DopplerReport {
    /// Customers evaluated.
    pub customers: usize,
    /// Top-1 accuracy of the Doppler pipeline (paper: > 0.95).
    pub doppler_accuracy: f64,
    /// Top-1 accuracy of the naive cheapest-covering rule on raw profiles.
    pub naive_accuracy: f64,
}

/// Evaluates Doppler vs the naive rule on a test population.
pub fn evaluate(doppler: &Doppler, test: &[Customer]) -> DopplerReport {
    let mut doppler_hits = 0usize;
    let mut naive_hits = 0usize;
    for c in test {
        let truth = true_best_sku(&doppler.skus, c);
        if doppler.recommend(c) == truth {
            doppler_hits += 1;
        }
        if doppler.naive(c) == truth {
            naive_hits += 1;
        }
    }
    let n = test.len().max(1) as f64;
    DopplerReport {
        customers: test.len(),
        doppler_accuracy: doppler_hits as f64 / n,
        naive_accuracy: naive_hits as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Doppler, Vec<Customer>) {
        let train = generate_customers(1600, 8, 0.12, 3);
        let test = generate_customers(400, 8, 0.12, 4);
        let doppler = Doppler::train(&train, standard_skus(), 8, 7).unwrap();
        (doppler, test)
    }

    #[test]
    fn doppler_hits_paper_accuracy() {
        let (doppler, test) = setup();
        let report = evaluate(&doppler, &test);
        assert!(
            report.doppler_accuracy > 0.95,
            "doppler {}",
            report.doppler_accuracy
        );
        assert!(
            report.doppler_accuracy > report.naive_accuracy,
            "doppler {} vs naive {}",
            report.doppler_accuracy,
            report.naive_accuracy
        );
    }

    #[test]
    fn cheapest_covering_picks_min_price_fit() {
        let skus = standard_skus();
        let idx = cheapest_covering(&skus, 2.5, 10.0).unwrap();
        assert!(skus[idx].vcores >= 2.5 && skus[idx].memory_gb >= 10.0);
        // Nothing cheaper fits.
        for (i, s) in skus.iter().enumerate() {
            if s.price < skus[idx].price {
                assert!(
                    s.vcores < 2.5 || s.memory_gb < 10.0,
                    "sku {i} should not fit"
                );
            }
        }
        assert_eq!(cheapest_covering(&skus, 1e9, 1.0), None);
    }

    #[test]
    fn price_performance_rank_sorted_and_covering() {
        let (doppler, test) = setup();
        let rank = doppler.price_performance_rank(&test[0]);
        assert!(!rank.is_empty());
        let prices: Vec<f64> = rank.iter().map(|&i| doppler.skus[i].price).collect();
        assert!(prices.windows(2).all(|w| w[0] <= w[1]));
        // Top-ranked equals the recommendation.
        assert_eq!(doppler.recommend(&test[0]), rank.first().copied());
    }

    #[test]
    fn segments_recovered_by_clustering() {
        let customers = generate_customers(800, 8, 0.1, 11);
        let doppler = Doppler::train(&customers, standard_skus(), 8, 7).unwrap();
        // Customers from the same true segment should mostly land in the
        // same cluster.
        let mut agreement = 0usize;
        let mut total = 0usize;
        for pair in customers.chunks(16) {
            for (a, b) in pair.iter().zip(pair.iter().skip(8)) {
                total += 1;
                let ca = doppler.kmeans.assign(&a.features());
                let cb = doppler.kmeans.assign(&b.features());
                if a.segment_truth == b.segment_truth {
                    if ca == cb {
                        agreement += 1;
                    }
                } else if ca != cb {
                    agreement += 1;
                }
            }
        }
        assert!(agreement as f64 / total as f64 > 0.9);
    }
}
