//! Moneyball: proactive pause/resume for serverless databases (Sec 4.1,
//! \[41\]).
//!
//! "We demonstrated that 77% of Azure SQL Database Serverless usage is
//! predictable and used ML forecasts to pause/resume databases proactively."
//!
//! The synthetic fleet mixes databases with periodic usage (predictable) and
//! erratic ones. The classifier labels each database by the seasonal
//! strength of its usage trace; predictable databases are paused during
//! forecast-idle hours and resumed *ahead* of forecast activity, while the
//! rest fall back to a reactive idle-timeout policy. A *cold resume* (user
//! arrives while paused) is the QoS failure; *provisioned idle hours* are
//! the cost.

use adas_telemetry::seasonal::{classify_pattern, Pattern};
use adas_telemetry::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hours per day.
pub const HOURS: usize = 24;

/// One database's hourly activity (true future included for evaluation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbUsage {
    /// Whether the generator made this database periodic (ground truth).
    pub predictable_truth: bool,
    /// Hourly activity history: `true` = at least one request that hour.
    pub history: Vec<bool>,
    /// Next-day activity (evaluation target).
    pub next_day: Vec<bool>,
}

/// Generates `n` databases with `days` of history; `predictable_frac` of
/// them follow a stable daily active window, the rest are random.
pub fn generate_usage(n: usize, days: usize, predictable_frac: f64, seed: u64) -> Vec<DbUsage> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let predictable = (i as f64 / n as f64) < predictable_frac;
            if predictable {
                let start = rng.gen_range(6..12usize);
                let len = rng.gen_range(6..12usize);
                let active = |h: usize| h >= start && h < start + len;
                // Small dropout/extra noise, keeping the pattern dominant.
                let gen_day = |rng: &mut StdRng| -> Vec<bool> {
                    (0..HOURS)
                        .map(|h| {
                            let base = active(h);
                            if rng.gen::<f64>() < 0.03 {
                                !base
                            } else {
                                base
                            }
                        })
                        .collect()
                };
                let mut history = Vec::with_capacity(days * HOURS);
                for _ in 0..days {
                    history.extend(gen_day(&mut rng));
                }
                DbUsage {
                    predictable_truth: true,
                    history,
                    next_day: (0..HOURS).map(active).collect(),
                }
            } else {
                let p = rng.gen_range(0.1..0.6);
                let gen_day = |rng: &mut StdRng| -> Vec<bool> {
                    (0..HOURS).map(|_| rng.gen::<f64>() < p).collect()
                };
                let mut history = Vec::with_capacity(days * HOURS);
                for _ in 0..days {
                    history.extend(gen_day(&mut rng));
                }
                let next_day = gen_day(&mut rng);
                DbUsage {
                    predictable_truth: false,
                    history,
                    next_day,
                }
            }
        })
        .collect()
}

/// Classifies a database as predictable from its history alone, via the
/// lag-24 autocorrelation of the activity series.
pub fn is_predictable(db: &DbUsage, threshold: f64) -> bool {
    let series = TimeSeries::evenly_spaced(
        0,
        3600,
        db.history.iter().map(|&a| if a { 1.0 } else { 0.0 }),
    );
    matches!(
        classify_pattern(&series, &[HOURS], threshold, 0.05),
        Pattern::Seasonal { .. }
    )
}

/// Pause/resume policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PausePolicy {
    /// Never pause (maximum cost, zero cold resumes).
    AlwaysOn,
    /// Pause after `idle_hours` consecutive inactive hours; resume on demand
    /// (always cold).
    Reactive {
        /// Consecutive idle hours before pausing.
        idle_hours: usize,
    },
    /// Moneyball: predictable databases follow the forecast (pause when the
    /// same hour yesterday was idle, pre-resume when it was active);
    /// unpredictable ones use the reactive fallback.
    Proactive {
        /// Reactive fallback idle threshold for unpredictable databases.
        idle_hours: usize,
        /// Autocorrelation threshold for the predictability classifier.
        threshold: f64,
    },
}

/// Fleet-level evaluation over the next day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MoneyballReport {
    /// Databases evaluated.
    pub databases: usize,
    /// Fraction classified predictable (paper: 0.77).
    pub predictable_fraction: f64,
    /// Classifier accuracy against generator ground truth.
    pub classifier_accuracy: f64,
    /// Cold resumes per database-day (QoS failure rate).
    pub cold_resumes_per_db: f64,
    /// Provisioned-but-idle hours per database-day (cost).
    pub idle_hours_per_db: f64,
}

/// Simulates one policy over the fleet's next day.
pub fn simulate_policy(fleet: &[DbUsage], policy: PausePolicy) -> MoneyballReport {
    let mut cold = 0usize;
    let mut idle_hours = 0usize;
    let mut predicted_predictable = 0usize;
    let mut classifier_hits = 0usize;

    for db in fleet {
        let predictable = match policy {
            PausePolicy::Proactive { threshold, .. } => is_predictable(db, threshold),
            _ => false,
        };
        if predictable {
            predicted_predictable += 1;
        }
        if matches!(policy, PausePolicy::Proactive { .. }) && predictable == db.predictable_truth {
            classifier_hits += 1;
        }

        // Hour-by-hour next-day walk. `on` = database is provisioned.
        let mut consecutive_idle = db.history.iter().rev().take_while(|&&a| !a).count();
        let yesterday = &db.history[db.history.len() - HOURS..];
        for (h, &active) in db.next_day.iter().enumerate() {
            let on = match policy {
                PausePolicy::AlwaysOn => true,
                PausePolicy::Reactive { idle_hours } => consecutive_idle < idle_hours,
                PausePolicy::Proactive { idle_hours, .. } => {
                    if predictable {
                        // Forecast = same hour yesterday; pre-resume one hour early.
                        yesterday[h] || yesterday[(h + 1) % HOURS]
                    } else {
                        consecutive_idle < idle_hours
                    }
                }
            };
            match (on, active) {
                (true, false) => idle_hours += 1,
                (false, true) => cold += 1, // user hits a paused database
                _ => {}
            }
            consecutive_idle = if active { 0 } else { consecutive_idle + 1 };
        }
    }

    let n = fleet.len().max(1) as f64;
    MoneyballReport {
        databases: fleet.len(),
        predictable_fraction: predicted_predictable as f64 / n,
        classifier_accuracy: if matches!(policy, PausePolicy::Proactive { .. }) {
            classifier_hits as f64 / n
        } else {
            0.0
        },
        cold_resumes_per_db: cold as f64 / n,
        idle_hours_per_db: idle_hours as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Vec<DbUsage> {
        generate_usage(400, 14, 0.77, 19)
    }

    #[test]
    fn classifier_recovers_predictable_share() {
        let fleet = fleet();
        let report = simulate_policy(
            &fleet,
            PausePolicy::Proactive {
                idle_hours: 2,
                threshold: 0.4,
            },
        );
        assert!(
            (report.predictable_fraction - 0.77).abs() < 0.06,
            "predictable fraction {}",
            report.predictable_fraction
        );
        assert!(
            report.classifier_accuracy > 0.9,
            "{}",
            report.classifier_accuracy
        );
    }

    #[test]
    fn always_on_has_no_cold_resumes_max_cost() {
        let fleet = fleet();
        let r = simulate_policy(&fleet, PausePolicy::AlwaysOn);
        assert_eq!(r.cold_resumes_per_db, 0.0);
        assert!(r.idle_hours_per_db > 5.0);
    }

    #[test]
    fn proactive_dominates_reactive() {
        let fleet = fleet();
        let reactive = simulate_policy(&fleet, PausePolicy::Reactive { idle_hours: 2 });
        let proactive = simulate_policy(
            &fleet,
            PausePolicy::Proactive {
                idle_hours: 2,
                threshold: 0.4,
            },
        );
        // Fewer QoS failures at comparable or lower cost.
        assert!(
            proactive.cold_resumes_per_db < reactive.cold_resumes_per_db,
            "proactive {} vs reactive {}",
            proactive.cold_resumes_per_db,
            reactive.cold_resumes_per_db
        );
        assert!(proactive.idle_hours_per_db < reactive.idle_hours_per_db + 2.0);
    }

    #[test]
    fn usage_generation_deterministic() {
        let a = generate_usage(20, 7, 0.5, 3);
        let b = generate_usage(20, 7, 0.5, 3);
        assert_eq!(a, b);
        assert_eq!(a[0].history.len(), 7 * 24);
    }

    #[test]
    fn truly_periodic_db_classified_predictable() {
        let fleet = generate_usage(50, 14, 1.0, 7);
        assert!(fleet.iter().filter(|db| is_predictable(db, 0.4)).count() >= 48);
        let noisy = generate_usage(50, 14, 0.0, 7);
        assert!(noisy.iter().filter(|db| is_predictable(db, 0.4)).count() <= 5);
    }
}
