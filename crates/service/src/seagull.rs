//! Seagull: ML-scheduled backups in low-load windows (Sec 4.3, \[40\]).
//!
//! "To automate the scheduling of backups for PostgreSQL and MySQL servers,
//! we used ML models to forecast user load for each specific server. The
//! system identifies low load windows with 99% accuracy." And from Insight
//! 1: "for PostgreSQL or MySQL servers that follow a stable daily or a
//! weekly pattern, a simple heuristic that predicts the load of a server
//! based on that of the previous day was already sufficient to generate 96%
//! accuracy."
//!
//! The synthetic fleet mixes daily-patterned, weekly-patterned, and noisy
//! servers. Both schedulers forecast the next day hourly and pick the
//! lowest-load `k`-hour window; a placement counts as *accurate* when the
//! true load of the chosen window is within a tolerance of the true optimal
//! window's load.

use adas_ml::forecast::{Forecaster, HoltWinters, HwConfig, SeasonalNaive};
use adas_obs::{digest_f64, Obs, Provenance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hours per day (window scheduling granularity).
pub const HOURS: usize = 24;

/// A server's load archetype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadPattern {
    /// Same profile every day.
    Daily,
    /// Weekday/weekend distinction.
    Weekly,
    /// No reliable structure.
    Noisy,
}

/// A simulated server with its hourly load history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerLoad {
    /// Pattern generating this server's load.
    pub pattern: LoadPattern,
    /// Hourly load history (len = days * 24), arbitrary load units.
    pub history: Vec<f64>,
    /// The *noise-free* load for the evaluation day (next day after the
    /// history) — the ground truth the scheduler is judged against.
    pub truth_next_day: Vec<f64>,
}

/// Generates a fleet of `n` servers with `days` of history.
///
/// `daily_frac` and `weekly_frac` control the archetype mixture; the rest
/// are noisy.
pub fn generate_fleet(
    n: usize,
    days: usize,
    daily_frac: f64,
    weekly_frac: f64,
    seed: u64,
) -> Vec<ServerLoad> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let u = i as f64 / n as f64;
            let pattern = if u < daily_frac {
                LoadPattern::Daily
            } else if u < daily_frac + weekly_frac {
                LoadPattern::Weekly
            } else {
                LoadPattern::Noisy
            };
            // Per-server profile: a trough at a random night hour, peak
            // during business hours.
            let trough = rng.gen_range(0..6usize);
            let scale = rng.gen_range(50.0..500.0);
            let profile = |hour: usize, weekend: bool| -> f64 {
                let busy = (9..18).contains(&hour);
                let near_trough = (hour as i64 - trough as i64)
                    .rem_euclid(24)
                    .min((trough as i64 - hour as i64).rem_euclid(24))
                    <= 1;
                let mut load = if busy { 1.0 } else { 0.35 };
                if near_trough {
                    load = 0.05;
                }
                if weekend && matches!(pattern, LoadPattern::Weekly) {
                    load *= 0.3;
                }
                load * scale
            };
            let noise_level: f64 = match pattern {
                LoadPattern::Daily | LoadPattern::Weekly => 0.08,
                LoadPattern::Noisy => 0.9,
            };
            let mut history = Vec::with_capacity(days * HOURS);
            for d in 0..days {
                let weekend = d % 7 >= 5;
                for h in 0..HOURS {
                    let base = profile(h, weekend);
                    let jitter = 1.0 + rng.gen_range(-noise_level..=noise_level);
                    history.push((base * jitter).max(0.0));
                }
            }
            let next_weekend = days % 7 >= 5;
            let truth_next_day: Vec<f64> = (0..HOURS).map(|h| profile(h, next_weekend)).collect();
            ServerLoad {
                pattern,
                history,
                truth_next_day,
            }
        })
        .collect()
}

/// Forecasting strategy for the next day's hourly load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackupForecaster {
    /// Previous-day heuristic (seasonal naive, period 24).
    PreviousDay,
    /// Holt-Winters with daily seasonality — the "ML model".
    MlModel,
}

impl BackupForecaster {
    /// Stable model identifier for flight-recorder provenance.
    pub fn model_id(self) -> &'static str {
        match self {
            BackupForecaster::PreviousDay => "seagull-previous-day",
            BackupForecaster::MlModel => "seagull-holt-winters",
        }
    }
}

/// Forecasts the next day's 24 hourly loads for a server.
pub fn forecast_next_day(server: &ServerLoad, method: BackupForecaster) -> Vec<f64> {
    match method {
        BackupForecaster::PreviousDay => SeasonalNaive::fit(&server.history, HOURS)
            .map(|m| m.forecast(HOURS))
            .unwrap_or_else(|_| vec![0.0; HOURS]),
        BackupForecaster::MlModel => HoltWinters::fit(&server.history, HOURS, HwConfig::default())
            .map(|m| m.forecast(HOURS))
            .unwrap_or_else(|_| vec![0.0; HOURS]),
    }
}

/// Index of the lowest-load contiguous `window` hours (non-wrapping).
pub fn lowest_window(loads: &[f64], window: usize) -> usize {
    assert!(
        window >= 1 && window <= loads.len(),
        "window must fit in the day"
    );
    let mut best = 0;
    let mut best_sum = f64::INFINITY;
    for start in 0..=(loads.len() - window) {
        let sum: f64 = loads[start..start + window].iter().sum();
        if sum < best_sum {
            best_sum = sum;
            best = start;
        }
    }
    best
}

/// Scores one placement: `(accurate, chosen/best load ratio, chosen window
/// true load)`. Shared by the direct and gateway-served schedulers so both
/// apply the identical accuracy bar.
fn score_placement(
    server: &ServerLoad,
    chosen: usize,
    window_hours: usize,
    tolerance: f64,
) -> (bool, f64, f64) {
    let load_of = |start: usize| -> f64 {
        server.truth_next_day[start..start + window_hours]
            .iter()
            .sum()
    };
    let best = lowest_window(&server.truth_next_day, window_hours);
    let chosen_load = load_of(chosen);
    let best_load = load_of(best);
    let mean_load = server.truth_next_day.iter().sum::<f64>() / server.truth_next_day.len() as f64;
    let ok = chosen_load <= best_load * (1.0 + tolerance)
        || (chosen_load - best_load) <= 0.05 * mean_load * window_hours as f64;
    let ratio = if best_load > 0.0 {
        chosen_load / best_load
    } else {
        1.0
    };
    (ok, ratio, chosen_load)
}

/// Fleet-level scheduling report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SeagullReport {
    /// Servers evaluated.
    pub servers: usize,
    /// Fraction of servers whose chosen backup window's true load is within
    /// `tolerance` of the optimal window's (the paper's "accuracy").
    pub accuracy: f64,
    /// Mean ratio of chosen-window true load to optimal-window load.
    pub mean_load_ratio: f64,
}

/// Schedules a `window_hours` backup on every server using `method` and
/// scores the placements against ground truth.
///
/// A placement is accurate when `true_load(chosen) <= true_load(best) *
/// (1 + tolerance)` or the absolute excess is negligible relative to the
/// server's mean load.
pub fn schedule_fleet(
    fleet: &[ServerLoad],
    method: BackupForecaster,
    window_hours: usize,
    tolerance: f64,
) -> SeagullReport {
    schedule_fleet_with_obs(fleet, method, window_hours, tolerance, &Obs::disabled())
}

/// Like [`schedule_fleet`], recording one flight-recorder decision per
/// server: the forecaster's identity, a digest of the load history it saw,
/// the *forecast* load of the chosen window (predicted) vs. its *true* load
/// (observed), and whether the placement met the accuracy bar.
pub fn schedule_fleet_with_obs(
    fleet: &[ServerLoad],
    method: BackupForecaster,
    window_hours: usize,
    tolerance: f64,
    obs: &Obs,
) -> SeagullReport {
    // The forecasters below are pure, so the whole fleet sweep records
    // through one batch: one lock acquisition instead of several per server.
    let mut batch = obs.batch();
    let span = batch.span_enter("service.seagull", "schedule_fleet", 0.0);
    let mut hits = 0usize;
    let mut ratio_sum = 0.0f64;
    for server in fleet {
        let forecast = forecast_next_day(server, method);
        let chosen = lowest_window(&forecast, window_hours);
        let (ok, ratio, chosen_load) = score_placement(server, chosen, window_hours, tolerance);
        if ok {
            hits += 1;
        }
        ratio_sum += ratio;
        if batch.is_recording() {
            let predicted_load: f64 = forecast[chosen..chosen + window_hours].iter().sum();
            let provenance = Provenance::new(
                method.model_id(),
                1,
                digest_f64(server.history.iter().copied()),
            );
            batch.record_decision(
                "service.seagull",
                "backup_window",
                &provenance,
                predicted_load,
                Some(chosen_load),
                if ok { "accurate" } else { "inaccurate" },
                false,
                HOURS as u64, // outcome observed one simulated day later
                chosen as f64,
            );
            batch.counter_add(
                "service.seagull",
                "placements",
                &[("method", method.model_id())],
                1,
            );
            if ok {
                batch.counter_add(
                    "service.seagull",
                    "accurate_placements",
                    &[("method", method.model_id())],
                    1,
                );
            }
        }
    }
    if batch.is_recording() && !fleet.is_empty() {
        batch.gauge_set(
            "service.seagull",
            "accuracy",
            &[("method", method.model_id())],
            hits as f64 / fleet.len() as f64,
        );
    }
    batch.span_exit(span, HOURS as f64);
    drop(batch);
    SeagullReport {
        servers: fleet.len(),
        accuracy: if fleet.is_empty() {
            0.0
        } else {
            hits as f64 / fleet.len() as f64
        },
        mean_load_ratio: if fleet.is_empty() {
            1.0
        } else {
            ratio_sum / fleet.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Vec<ServerLoad> {
        // Paper's setting: most servers follow stable daily/weekly patterns.
        generate_fleet(300, 28, 0.6, 0.3, 41)
    }

    #[test]
    fn ml_model_hits_paper_accuracy() {
        let report = schedule_fleet(&fleet(), BackupForecaster::MlModel, 2, 0.25);
        assert!(report.accuracy >= 0.97, "ML accuracy {}", report.accuracy);
    }

    #[test]
    fn previous_day_heuristic_close_behind() {
        let heuristic = schedule_fleet(&fleet(), BackupForecaster::PreviousDay, 2, 0.25);
        assert!(
            heuristic.accuracy >= 0.90,
            "heuristic accuracy {}",
            heuristic.accuracy
        );
        let ml = schedule_fleet(&fleet(), BackupForecaster::MlModel, 2, 0.25);
        assert!(ml.accuracy >= heuristic.accuracy - 0.02);
    }

    #[test]
    fn lowest_window_finds_trough() {
        let mut loads = vec![10.0; 24];
        loads[3] = 0.1;
        loads[4] = 0.1;
        assert_eq!(lowest_window(&loads, 2), 3);
        assert_eq!(lowest_window(&loads, 1), 3);
    }

    #[test]
    fn patterned_servers_beat_noisy_ones() {
        let patterned = generate_fleet(100, 28, 1.0, 0.0, 5);
        let noisy = generate_fleet(100, 28, 0.0, 0.0, 5);
        let p = schedule_fleet(&patterned, BackupForecaster::MlModel, 2, 0.25);
        let n = schedule_fleet(&noisy, BackupForecaster::MlModel, 2, 0.25);
        assert!(p.accuracy >= n.accuracy);
        assert!(p.mean_load_ratio <= n.mean_load_ratio + 1e-9);
    }

    #[test]
    fn fleet_generation_is_deterministic() {
        let a = generate_fleet(10, 7, 0.5, 0.3, 9);
        let b = generate_fleet(10, 7, 0.5, 0.3, 9);
        assert_eq!(a, b);
        assert_eq!(a[0].history.len(), 7 * 24);
        assert_eq!(a[0].truth_next_day.len(), 24);
    }
}

/// Builds the feature vector the served window model consumes:
/// `[window_hours, history...]`.
pub fn window_features(server: &ServerLoad, window_hours: usize) -> Vec<f64> {
    let mut features = Vec::with_capacity(server.history.len() + 1);
    features.push(window_hours as f64);
    features.extend_from_slice(&server.history);
    features
}

/// Pure served-model body: fit `method`'s forecaster over the history in
/// `features`, forecast the next day, return the lowest-load window start.
fn window_from_features(features: &[f64], method: BackupForecaster) -> f64 {
    let window = (features[0] as usize).clamp(1, HOURS);
    let server = ServerLoad {
        pattern: LoadPattern::Daily, // irrelevant to forecasting
        history: features[1..].to_vec(),
        truth_next_day: Vec::new(),
    };
    let forecast = forecast_next_day(&server, method);
    lowest_window(&forecast, window) as f64
}

/// Publishes the window-picking model for `method` into a serving gateway
/// (named by [`BackupForecaster::model_id`]). The registered fallback is
/// the previous-day heuristic — the paper's Insight 1: when the ML model is
/// degraded, "a simple heuristic that predicts the load of a server based
/// on that of the previous day" still gets ~96% accuracy.
pub fn publish_window_model(
    gateway: &adas_serve::Gateway,
    method: BackupForecaster,
) -> adas_serve::ModelHandle {
    let handle = gateway.register(method.model_id(), |features: &[f64]| {
        window_from_features(features, BackupForecaster::PreviousDay)
    });
    gateway
        .publish(
            handle,
            std::sync::Arc::new(adas_serve::FnModel(move |features: &[f64]| {
                window_from_features(features, method)
            })),
            0.0,
        )
        .expect("freshly registered handle");
    handle
}

/// Gateway-served variant of [`schedule_fleet`]: every window choice is a
/// prediction served through `gateway` (cache, breaker, heuristic
/// fallback). Scoring is identical to the direct path. Server index is used
/// as the simulated request time.
pub fn schedule_fleet_served(
    fleet: &[ServerLoad],
    gateway: &adas_serve::Gateway,
    handle: adas_serve::ModelHandle,
    window_hours: usize,
    tolerance: f64,
) -> SeagullReport {
    let mut hits = 0usize;
    let mut ratio_sum = 0.0f64;
    for (i, server) in fleet.iter().enumerate() {
        let features = window_features(server, window_hours);
        let prediction = gateway
            .predict(handle, &features, i as f64)
            .expect("handle registered at publish time");
        let chosen = (prediction.value.max(0.0) as usize).min(HOURS - window_hours);
        let (ok, ratio, _) = score_placement(server, chosen, window_hours, tolerance);
        if ok {
            hits += 1;
        }
        ratio_sum += ratio;
    }
    SeagullReport {
        servers: fleet.len(),
        accuracy: if fleet.is_empty() {
            0.0
        } else {
            hits as f64 / fleet.len() as f64
        },
        mean_load_ratio: if fleet.is_empty() {
            1.0
        } else {
            ratio_sum / fleet.len() as f64
        },
    }
}

#[cfg(test)]
mod serving_tests {
    use super::*;
    use adas_serve::{Gateway, GatewayConfig};

    #[test]
    fn served_schedule_matches_direct() {
        let fleet = generate_fleet(60, 28, 0.6, 0.3, 41);
        let direct = schedule_fleet(&fleet, BackupForecaster::MlModel, 2, 0.25);
        let gateway = Gateway::new(GatewayConfig::standard());
        let handle = publish_window_model(&gateway, BackupForecaster::MlModel);
        let served = schedule_fleet_served(&fleet, &gateway, handle, 2, 0.25);
        assert_eq!(served.servers, direct.servers);
        assert_eq!(served.accuracy, direct.accuracy);
        assert!((served.mean_load_ratio - direct.mean_load_ratio).abs() < 1e-12);
    }

    #[test]
    fn outage_degrades_to_previous_day_heuristic() {
        use adas_faultsim::ModelFaults;
        let fleet = generate_fleet(60, 28, 0.6, 0.3, 41);
        let mut config = GatewayConfig::standard();
        config.cache_capacity = 0;
        let gateway = Gateway::new(config);
        let handle = publish_window_model(&gateway, BackupForecaster::MlModel);
        // Permanent timeouts: every choice comes from the fallback, which is
        // exactly the previous-day heuristic.
        gateway
            .inject_faults(handle, ModelFaults::new(11, 0.0, 1.0, 1.0))
            .unwrap();
        let served = schedule_fleet_served(&fleet, &gateway, handle, 2, 0.25);
        let heuristic = schedule_fleet(&fleet, BackupForecaster::PreviousDay, 2, 0.25);
        assert_eq!(served.accuracy, heuristic.accuracy);
        assert!(gateway.stats().fallbacks as usize >= fleet.len());
    }
}

/// A coordinated fleet schedule: per-server backup window starts plus the
/// per-window assignment counts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CoordinatedSchedule {
    /// Chosen window start hour per server (same order as the fleet).
    pub starts: Vec<usize>,
    /// Servers whose backup begins in each hour.
    pub per_hour: Vec<usize>,
    /// Mean ratio of each server's chosen-window true load to its optimal
    /// window's load (1.0 = every server got its own optimum).
    pub mean_load_ratio: f64,
}

/// Schedules the whole fleet with a shared-infrastructure constraint: at
/// most `capacity_per_hour` backups may *start* in any hour (backup traffic
/// hits shared storage, so the fleet cannot all pile into the same global
/// trough). Servers are assigned greedily in fleet order to their
/// cheapest-forecast window with remaining capacity.
///
/// This is the fleet-coordination half of Seagull: the per-server
/// forecaster says *where* each server's trough is, and the coordinator
/// spreads the fleet across those troughs.
pub fn schedule_fleet_coordinated(
    fleet: &[ServerLoad],
    method: BackupForecaster,
    window_hours: usize,
    capacity_per_hour: usize,
) -> CoordinatedSchedule {
    assert!(
        capacity_per_hour >= 1,
        "capacity must admit at least one backup per hour"
    );
    let mut per_hour = vec![0usize; HOURS];
    let mut starts = Vec::with_capacity(fleet.len());
    let mut ratio_sum = 0.0f64;
    for server in fleet {
        let forecast = forecast_next_day(server, method);
        // Rank candidate starts by forecast load of their window.
        let mut candidates: Vec<usize> = (0..=(HOURS - window_hours)).collect();
        candidates.sort_by(|&a, &b| {
            let la: f64 = forecast[a..a + window_hours].iter().sum();
            let lb: f64 = forecast[b..b + window_hours].iter().sum();
            la.partial_cmp(&lb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let chosen = candidates
            .iter()
            .copied()
            .find(|&start| per_hour[start] < capacity_per_hour)
            // Capacity exhausted everywhere: fall back to the least-loaded
            // start hour (overload rather than skip the backup).
            .unwrap_or_else(|| {
                (0..=(HOURS - window_hours))
                    .min_by_key(|&s| per_hour[s])
                    .expect("window fits in a day")
            });
        per_hour[chosen] += 1;
        starts.push(chosen);

        let load_of = |start: usize| -> f64 {
            server.truth_next_day[start..start + window_hours]
                .iter()
                .sum()
        };
        let best = lowest_window(&server.truth_next_day, window_hours);
        let (chosen_load, best_load) = (load_of(chosen), load_of(best));
        ratio_sum += if best_load > 0.0 {
            chosen_load / best_load
        } else {
            1.0
        };
    }
    CoordinatedSchedule {
        starts,
        per_hour,
        mean_load_ratio: if fleet.is_empty() {
            1.0
        } else {
            ratio_sum / fleet.len() as f64
        },
    }
}

#[cfg(test)]
mod coordination_tests {
    use super::*;

    #[test]
    fn capacity_respected_and_quality_degrades_gracefully() {
        let fleet = generate_fleet(200, 28, 0.7, 0.2, 51);
        // Troughs cluster in the small hours (the generator places them in
        // 0..6), so capacity 30 keeps the night windows sufficient for the
        // whole fleet while still forcing some spreading.
        let tight = schedule_fleet_coordinated(&fleet, BackupForecaster::MlModel, 2, 30);
        assert!(
            tight.per_hour.iter().all(|&n| n <= 30),
            "{:?}",
            tight.per_hour
        );
        assert_eq!(tight.starts.len(), 200);
        // Quality: bounded degradation versus the uncoordinated ideal.
        let free = schedule_fleet_coordinated(&fleet, BackupForecaster::MlModel, 2, 200);
        assert!(free.mean_load_ratio <= tight.mean_load_ratio + 1e-9);
        assert!(
            tight.mean_load_ratio < 3.0,
            "coordination cost too high: {}",
            tight.mean_load_ratio
        );
    }

    #[test]
    fn unconstrained_matches_per_server_optimum() {
        let fleet = generate_fleet(50, 28, 1.0, 0.0, 13);
        let free = schedule_fleet_coordinated(&fleet, BackupForecaster::MlModel, 2, 50);
        // With pure daily patterns and no contention, everyone lands at (or
        // indistinguishably near) their own trough.
        assert!(free.mean_load_ratio < 1.15, "{}", free.mean_load_ratio);
    }

    #[test]
    fn contention_spreads_the_fleet() {
        // Servers with identical troughs must spill into adjacent windows.
        let fleet = generate_fleet(60, 28, 1.0, 0.0, 13);
        let coordinated = schedule_fleet_coordinated(&fleet, BackupForecaster::MlModel, 2, 4);
        let distinct: std::collections::HashSet<usize> =
            coordinated.starts.iter().copied().collect();
        assert!(
            distinct.len() >= 60 / 4,
            "only {} distinct starts",
            distinct.len()
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let fleet = generate_fleet(2, 28, 1.0, 0.0, 1);
        let _ = schedule_fleet_coordinated(&fleet, BackupForecaster::MlModel, 2, 0);
    }
}
