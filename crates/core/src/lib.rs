//! The autonomous data service control plane.
//!
//! The paper's individual systems (crates `infra`, `learned`, `checkpoint`,
//! `reuse`, `pipeline`, `service`) each automate one decision. What makes a
//! *service* autonomous is the operational machinery around them — the
//! recurring patterns the paper distils in its Insights and Future
//! Directions. This crate implements that machinery:
//!
//! * [`granularity`] — the global / segment / individual model hierarchy of
//!   Sec 4.3 and Insight 2 ("One size does not fit all"): route each entity
//!   to the most specific model that has earned trust.
//! * [`feedback`] — Insight 3 ("Feedback loop is indispensable"): a
//!   versioned model registry with live error monitoring, drift detection,
//!   retrain triggers and fast rollback.
//! * [`guardrails`] — Direction 4 (Responsible AI): regression guards, cost
//!   guards, and a fairness check that flags when an autonomous decision
//!   systematically disadvantages a customer group.
//! * [`rai`] — the per-project RAI *assessment*: a checklist mixing the
//!   automated checks above with the manual attestations the paper says
//!   still require domain experts.
//! * [`store`] — Direction 1 (Reuse): the *AlgorithmStore*, "a project
//!   gallery with predefined algorithm templates" with a search interface.
//! * [`joint`] — Direction 3: coordinate-descent joint optimization across
//!   components, compared against one-shot sequential tuning.

//! # Example: the guarded-deployment flow
//!
//! ```
//! use adas_core::{AlgorithmStore, Decision, GuardrailSet, Verdict};
//!
//! // Direction 1: discover the primitive.
//! let store = AlgorithmStore::standard();
//! assert!(!store.search("forecast seasonal").is_empty());
//!
//! // Direction 4: gate the decision.
//! let guards = GuardrailSet::standard();
//! let decision = Decision {
//!     predicted_perf: 90.0,
//!     baseline_perf: 100.0,
//!     predicted_cost: 10.5,
//!     baseline_cost: 10.0,
//!     group: 0,
//! };
//! assert_eq!(guards.check(&decision), Verdict::Allow);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod feedback;
pub mod granularity;
pub mod guardrails;
pub mod joint;
pub mod rai;
pub mod store;

pub use feedback::{FeedbackLoop, LoopConfig, ModelRegistry, MonitorVerdict};
pub use granularity::{GranularityRouter, ModelScope};
pub use guardrails::{
    CostGuard, Decision, FairnessCheck, Guardrail, GuardrailSet, RegressionGuard, Verdict,
};
pub use joint::{joint_optimize, sequential_optimize, Component, JointReport};
pub use rai::{Assessment, AssessmentStatus};
pub use store::{AlgorithmEntry, AlgorithmStore, Category};
