//! Joint optimization across components (Direction 3).
//!
//! "Sequentially optimizing each individual component is unlikely to yield
//! optimal overall performance. Conversely, … it is impractical to create a
//! massive optimization problem that simultaneously optimizes all
//! components. … Ongoing efforts continue to jointly optimize a selection of
//! components."
//!
//! Each [`Component`] owns a discrete candidate set for its configuration
//! value (a pool size, a cap, a threshold…). [`sequential_optimize`] tunes
//! each component once, in ownership order, holding the others fixed — the
//! per-team status quo. [`joint_optimize`] runs coordinate descent to a
//! fixpoint, letting components react to each other. On interacting
//! objectives the joint optimum is strictly better.

use serde::Serialize;

/// One tunable system component.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Component {
    /// Component name (e.g. `vm-pool-size`).
    pub name: String,
    /// Candidate configuration values, in the component owner's preference
    /// order (the first is the default).
    pub candidates: Vec<f64>,
}

impl Component {
    /// Creates a component.
    pub fn new(name: &str, candidates: Vec<f64>) -> Self {
        assert!(
            !candidates.is_empty(),
            "component needs at least one candidate"
        );
        Self {
            name: name.to_string(),
            candidates,
        }
    }
}

/// Result of an optimization run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JointReport {
    /// Chosen value per component (same order as the input).
    pub settings: Vec<f64>,
    /// Objective value at the chosen settings (lower is better).
    pub objective: f64,
    /// Coordinate-descent rounds executed (1 for sequential).
    pub rounds: usize,
    /// Objective evaluations performed.
    pub evaluations: usize,
}

fn best_for_component(
    idx: usize,
    settings: &[f64],
    component: &Component,
    objective: &dyn Fn(&[f64]) -> f64,
    evaluations: &mut usize,
) -> f64 {
    let mut probe = settings.to_vec();
    component
        .candidates
        .iter()
        .copied()
        .map(|c| {
            probe[idx] = c;
            *evaluations += 1;
            (c, objective(&probe))
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(c, _)| c)
        .expect("non-empty candidates")
}

/// One pass: each component optimized once, in order, holding the others at
/// their current values. This models each product team tuning its own knob
/// against the deployed state of the rest.
pub fn sequential_optimize(
    components: &[Component],
    objective: impl Fn(&[f64]) -> f64,
) -> JointReport {
    let mut settings: Vec<f64> = components.iter().map(|c| c.candidates[0]).collect();
    let mut evaluations = 0usize;
    for (i, c) in components.iter().enumerate() {
        settings[i] = best_for_component(i, &settings, c, &objective, &mut evaluations);
    }
    let objective_value = objective(&settings);
    JointReport {
        settings,
        objective: objective_value,
        rounds: 1,
        evaluations,
    }
}

/// Coordinate descent to a fixpoint (or `max_rounds`): components keep
/// re-optimizing against each other's latest settings.
pub fn joint_optimize(
    components: &[Component],
    objective: impl Fn(&[f64]) -> f64,
    max_rounds: usize,
) -> JointReport {
    let mut settings: Vec<f64> = components.iter().map(|c| c.candidates[0]).collect();
    let mut evaluations = 0usize;
    let mut rounds = 0usize;
    for _ in 0..max_rounds {
        rounds += 1;
        let before = settings.clone();
        for (i, c) in components.iter().enumerate() {
            settings[i] = best_for_component(i, &settings, c, &objective, &mut evaluations);
        }
        if settings == before {
            break;
        }
    }
    let objective_value = objective(&settings);
    JointReport {
        settings,
        objective: objective_value,
        rounds,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A narrow diagonal valley: strong interaction between x and y.
    fn valley(s: &[f64]) -> f64 {
        let (x, y) = (s[0], s[1]);
        (x + y - 10.0).powi(2) + 2.0 * (x - y).powi(2)
    }

    fn components() -> Vec<Component> {
        let grid: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        vec![Component::new("x", grid.clone()), Component::new("y", grid)]
    }

    #[test]
    fn joint_beats_sequential_on_interacting_objective() {
        let comps = components();
        let seq = sequential_optimize(&comps, valley);
        let joint = joint_optimize(&comps, valley, 20);
        assert!(
            joint.objective <= seq.objective,
            "joint {} vs sequential {}",
            joint.objective,
            seq.objective
        );
        // The true optimum is x = y = 5.
        assert_eq!(joint.settings, vec![5.0, 5.0]);
        assert_eq!(joint.objective, 0.0);
        assert!(joint.rounds >= 2, "needed iteration to converge");
    }

    #[test]
    fn separable_objective_needs_one_round() {
        let comps = components();
        let separable = |s: &[f64]| (s[0] - 3.0).powi(2) + (s[1] - 7.0).powi(2);
        let seq = sequential_optimize(&comps, separable);
        let joint = joint_optimize(&comps, separable, 20);
        assert_eq!(seq.settings, vec![3.0, 7.0]);
        assert_eq!(joint.settings, seq.settings);
        assert_eq!(joint.rounds, 2); // one improving round + one fixpoint check
    }

    #[test]
    fn three_component_coordination() {
        let grid: Vec<f64> = (0..=6).map(|i| i as f64).collect();
        let comps = vec![
            Component::new("pool", grid.clone()),
            Component::new("cap", grid.clone()),
            Component::new("threshold", grid),
        ];
        // Total must hit 9 with balanced shares.
        let f = |s: &[f64]| {
            let total: f64 = s.iter().sum();
            let imbalance: f64 = s.windows(2).map(|w| (w[0] - w[1]).powi(2)).sum();
            (total - 9.0).powi(2) + imbalance
        };
        let joint = joint_optimize(&comps, f, 30);
        assert_eq!(joint.settings, vec![3.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panic() {
        let _ = Component::new("bad", vec![]);
    }

    #[test]
    fn evaluation_budget_accounted() {
        let comps = components();
        let seq = sequential_optimize(&comps, valley);
        assert_eq!(seq.evaluations, 22); // 11 candidates x 2 components
        let joint = joint_optimize(&comps, valley, 20);
        assert!(joint.evaluations >= seq.evaluations);
    }
}
