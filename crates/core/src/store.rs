//! The AlgorithmStore: function-level reuse (Direction 1).
//!
//! "Our proposal is to create a *AlgorithmStore* (analogous to a GitHub for
//! models), which is a project gallery with predefined algorithm templates.
//! The previously developed algorithm can be discovered and adapted to
//! address new scenarios quickly."
//!
//! The store is a searchable catalog: entries carry a name, description,
//! category and tags; [`AlgorithmStore::search`] ranks by simple keyword
//! relevance. [`AlgorithmStore::standard`] pre-registers every algorithm
//! this workspace implements, so the catalog is also a usable index into
//! the codebase.

use serde::{Deserialize, Serialize};

/// Coarse category of an algorithm template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Category {
    /// Time-series forecasting.
    Forecasting,
    /// Regression models.
    Regression,
    /// Classification / clustering.
    Classification,
    /// Online decision making (bandits, tuning loops).
    OnlineDecision,
    /// Query-plan and workload analysis.
    WorkloadAnalysis,
    /// Resource management / scheduling.
    ResourceManagement,
}

/// One catalog entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmEntry {
    /// Unique name, e.g. `holt-winters`.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Category.
    pub category: Category,
    /// Free-form search tags.
    pub tags: Vec<String>,
    /// Path to the implementation in this workspace, e.g.
    /// `adas_ml::forecast::HoltWinters`.
    pub implementation: String,
}

/// The searchable catalog.
#[derive(Debug, Clone, Default)]
pub struct AlgorithmStore {
    entries: Vec<AlgorithmEntry>,
}

impl AlgorithmStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an entry, replacing any entry with the same name.
    pub fn register(&mut self, entry: AlgorithmEntry) {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.name == entry.name) {
            *existing = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in a category.
    pub fn by_category(&self, category: Category) -> Vec<&AlgorithmEntry> {
        self.entries
            .iter()
            .filter(|e| e.category == category)
            .collect()
    }

    /// Keyword search: each whitespace-separated query term scores 3 for a
    /// name hit, 2 for a tag hit, 1 for a description hit. Results are
    /// ranked by total score (ties by name) and zero-score entries dropped.
    pub fn search(&self, query: &str) -> Vec<&AlgorithmEntry> {
        let terms: Vec<String> = query.split_whitespace().map(str::to_lowercase).collect();
        let mut scored: Vec<(i64, &AlgorithmEntry)> = self
            .entries
            .iter()
            .map(|e| {
                let mut score = 0i64;
                for t in &terms {
                    if e.name.to_lowercase().contains(t) {
                        score += 3;
                    }
                    if e.tags.iter().any(|tag| tag.to_lowercase().contains(t)) {
                        score += 2;
                    }
                    if e.description.to_lowercase().contains(t) {
                        score += 1;
                    }
                }
                (score, e)
            })
            .filter(|(s, _)| *s > 0)
            .collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.name.cmp(&b.1.name)));
        scored.into_iter().map(|(_, e)| e).collect()
    }

    /// The catalog of everything implemented in this workspace.
    pub fn standard() -> Self {
        let mut store = Self::new();
        let entries = [
            (
                "seasonal-naive",
                "Previous-period forecast; the Seagull 96% heuristic",
                Category::Forecasting,
                vec!["forecast", "seasonal", "heuristic", "previous-day"],
                "adas_ml::forecast::SeasonalNaive",
            ),
            (
                "holt-winters",
                "Additive level/trend/seasonal exponential smoothing",
                Category::Forecasting,
                vec!["forecast", "seasonal", "trend", "smoothing"],
                "adas_ml::forecast::HoltWinters",
            ),
            (
                "ols-linear",
                "Ordinary least squares / ridge linear regression",
                Category::Regression,
                vec!["linear", "interpretable", "machine-behavior"],
                "adas_ml::linear::LinearRegression",
            ),
            (
                "decision-tree",
                "CART variance-reduction regression tree",
                Category::Regression,
                vec!["tree", "interpretable"],
                "adas_ml::tree::DecisionTree",
            ),
            (
                "random-forest",
                "Bagged trees with feature subsampling",
                Category::Regression,
                vec!["ensemble", "tree"],
                "adas_ml::forest::RandomForest",
            ),
            (
                "gradient-boosting",
                "Boosted shallow trees, squared loss",
                Category::Regression,
                vec!["ensemble", "tree", "cost-model"],
                "adas_ml::gbm::GradientBoosting",
            ),
            (
                "kmeans",
                "K-means++ clustering for customer segmentation",
                Category::Classification,
                vec!["cluster", "segment", "doppler"],
                "adas_ml::cluster::KMeans",
            ),
            (
                "logistic",
                "Binary logistic regression",
                Category::Classification,
                vec!["classifier", "validation-model"],
                "adas_ml::logistic::LogisticRegression",
            ),
            (
                "knn",
                "Exact k-nearest-neighbour regression/classification",
                Category::Classification,
                vec!["similarity", "profile"],
                "adas_ml::knn::KNearest",
            ),
            (
                "epsilon-greedy",
                "Epsilon-greedy bandit over discrete arms",
                Category::OnlineDecision,
                vec!["bandit", "steering", "explore"],
                "adas_ml::bandit::EpsilonGreedy",
            ),
            (
                "linucb",
                "LinUCB contextual bandit",
                Category::OnlineDecision,
                vec!["bandit", "contextual", "steering"],
                "adas_ml::bandit::LinUcb",
            ),
            (
                "hill-climb-tuner",
                "Iterative config tuning from a global-model start",
                Category::OnlineDecision,
                vec!["tuning", "spark", "autotune"],
                "adas_service::sparktune::tune",
            ),
            (
                "plan-signature",
                "FNV-1a strict/template plan signatures",
                Category::WorkloadAnalysis,
                vec!["signature", "subexpression", "cloudviews", "template"],
                "adas_workload::signature",
            ),
            (
                "workload-templatization",
                "Recurrence, sharing and dependency analysis",
                Category::WorkloadAnalysis,
                vec!["peregrine", "template", "recurring"],
                "adas_workload::analyze::WorkloadAnalysis",
            ),
            (
                "cardinality-micromodels",
                "Per-template learned cardinality with pruning",
                Category::WorkloadAnalysis,
                vec!["cardinality", "micromodel", "optimizer"],
                "adas_learned::cardinality::LearnedCardinality",
            ),
            (
                "checkpoint-cuts",
                "Phoebe stage-DAG checkpoint placement",
                Category::ResourceManagement,
                vec!["checkpoint", "dag", "recovery", "temp-storage"],
                "adas_checkpoint::plan_checkpoints",
            ),
            (
                "low-load-window",
                "Lowest-load window detection for maintenance",
                Category::ResourceManagement,
                vec!["backup", "seagull", "window"],
                "adas_telemetry::window::lowest_load_run",
            ),
            (
                "proactive-pool",
                "Forecast-driven warm-pool sizing",
                Category::ResourceManagement,
                vec!["provisioning", "pool", "pareto", "serverless"],
                "adas_infra::provision",
            ),
            (
                "kea-caps",
                "Model-driven per-SKU container cap tuning",
                Category::ResourceManagement,
                vec!["scheduler", "kea", "hotspot"],
                "adas_infra::kea::tune_caps",
            ),
            (
                "mlos-tuner",
                "Surrogate-model (forest + UCB) parameter search",
                Category::OnlineDecision,
                vec!["mlos", "kernel", "surrogate", "bayesian"],
                "adas_infra::vmtune::mlos_tune",
            ),
            (
                "hedged-requests",
                "Hedge-delay derivation for tail-latency control",
                Category::ResourceManagement,
                vec!["tail", "p99", "hedging", "cluster-init"],
                "adas_infra::initsim::derive_optimal_hedge",
            ),
            (
                "power-caps",
                "Model-driven rack power-budget allocation",
                Category::ResourceManagement,
                vec!["power", "rack", "capping"],
                "adas_infra::power::allocate_power",
            ),
            (
                "predictive-autoscaler",
                "Forecast-ahead capacity scaling",
                Category::ResourceManagement,
                vec!["autoscale", "forecast", "sla"],
                "adas_infra::autoscale::simulate_autoscaler",
            ),
            (
                "model-bundle",
                "Versioned portable model container (ONNX-style)",
                Category::WorkloadAnalysis,
                vec!["interchange", "onnx", "deployment", "container"],
                "adas_ml::bundle::ModelBundle",
            ),
            (
                "plan-interchange",
                "Versioned cross-engine plan document (Substrait-style)",
                Category::WorkloadAnalysis,
                vec!["interchange", "substrait", "plan"],
                "adas_workload::interchange::PlanDocument",
            ),
        ];
        for (name, desc, category, tags, implementation) in entries {
            store.register(AlgorithmEntry {
                name: name.to_string(),
                description: desc.to_string(),
                category,
                tags: tags.into_iter().map(str::to_string).collect(),
                implementation: implementation.to_string(),
            });
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_nonempty_and_categorized() {
        let store = AlgorithmStore::standard();
        assert!(store.len() >= 15);
        assert!(!store.by_category(Category::Forecasting).is_empty());
        assert!(!store.by_category(Category::ResourceManagement).is_empty());
    }

    #[test]
    fn search_ranks_name_hits_first() {
        let store = AlgorithmStore::standard();
        let results = store.search("bandit");
        assert!(results.len() >= 2);
        // Tag hits for both bandits; the description/name mix keeps them on top.
        assert!(results.iter().any(|e| e.name == "linucb"));
        assert!(results.iter().any(|e| e.name == "epsilon-greedy"));
    }

    #[test]
    fn search_multi_term_and_miss() {
        let store = AlgorithmStore::standard();
        let results = store.search("seasonal forecast");
        assert_eq!(results[0].category, Category::Forecasting);
        assert!(store.search("quantum-blockchain").is_empty());
    }

    #[test]
    fn register_replaces_same_name() {
        let mut store = AlgorithmStore::new();
        let entry = |desc: &str| AlgorithmEntry {
            name: "x".into(),
            description: desc.into(),
            category: Category::Regression,
            tags: vec![],
            implementation: "y".into(),
        };
        store.register(entry("first"));
        store.register(entry("second"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.search("second").len(), 1);
    }
}
