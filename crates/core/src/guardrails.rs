//! Responsible-AI guardrails (Direction 4).
//!
//! "We introduce guardrails to protect customers from expensive solutions
//! and from performance regressions, and we regularly check that our
//! ML-driven decisions serve all customers fairly."
//!
//! A [`Guardrail`] inspects one proposed autonomous [`Decision`] against its
//! baseline; a [`GuardrailSet`] runs them all and blocks on the first
//! failure. [`FairnessCheck`] operates on a *batch* of decisions, flagging
//! customer groups whose outcomes systematically lag the fleet.

use adas_obs::{Obs, Provenance};
use serde::Serialize;

/// A proposed autonomous decision, described by its predicted effects
/// relative to doing nothing (the baseline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Decision {
    /// Predicted performance metric under the decision (lower is better,
    /// e.g. latency).
    pub predicted_perf: f64,
    /// Performance under the current/baseline configuration.
    pub baseline_perf: f64,
    /// Predicted cost under the decision (e.g. $/h).
    pub predicted_cost: f64,
    /// Cost under the baseline.
    pub baseline_cost: f64,
    /// Customer group the decision applies to (for fairness analysis).
    pub group: u32,
}

/// Outcome of a guardrail check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// The decision may proceed.
    Allow,
    /// The decision is blocked, with the reason.
    Block(String),
}

/// A single guardrail.
pub trait Guardrail {
    /// Checks one decision.
    fn check(&self, decision: &Decision) -> Verdict;
    /// Name used in block messages and reports.
    fn name(&self) -> &str;
}

/// Blocks decisions predicted to regress performance beyond a tolerance.
#[derive(Debug, Clone, Copy)]
pub struct RegressionGuard {
    /// Allowed relative performance regression (0.05 = 5% worse).
    pub tolerance: f64,
}

impl Guardrail for RegressionGuard {
    fn check(&self, d: &Decision) -> Verdict {
        if d.baseline_perf > 0.0 && d.predicted_perf > d.baseline_perf * (1.0 + self.tolerance) {
            Verdict::Block(format!(
                "regression guard: predicted perf {:.3} exceeds baseline {:.3} by more than {:.0}%",
                d.predicted_perf,
                d.baseline_perf,
                self.tolerance * 100.0
            ))
        } else {
            Verdict::Allow
        }
    }

    fn name(&self) -> &str {
        "regression"
    }
}

/// Blocks decisions predicted to raise cost beyond a budget multiplier —
/// "protect customers from expensive solutions".
#[derive(Debug, Clone, Copy)]
pub struct CostGuard {
    /// Allowed relative cost increase (0.1 = 10% more).
    pub tolerance: f64,
}

impl Guardrail for CostGuard {
    fn check(&self, d: &Decision) -> Verdict {
        if d.baseline_cost > 0.0 && d.predicted_cost > d.baseline_cost * (1.0 + self.tolerance) {
            Verdict::Block(format!(
                "cost guard: predicted cost {:.3} exceeds baseline {:.3} by more than {:.0}%",
                d.predicted_cost,
                d.baseline_cost,
                self.tolerance * 100.0
            ))
        } else {
            Verdict::Allow
        }
    }

    fn name(&self) -> &str {
        "cost"
    }
}

/// An ordered set of guardrails; the first block wins.
#[derive(Default)]
pub struct GuardrailSet {
    guards: Vec<Box<dyn Guardrail + Send + Sync>>,
    obs: Obs,
}

impl GuardrailSet {
    /// The paper-default set: 5% regression tolerance, 10% cost tolerance.
    pub fn standard() -> Self {
        let mut set = Self::default();
        set.add(RegressionGuard { tolerance: 0.05 });
        set.add(CostGuard { tolerance: 0.10 });
        set
    }

    /// Attaches an observability handle; [`GuardrailSet::check_recorded`]
    /// logs every verdict — and in particular every veto — into its flight
    /// recorder.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Adds a guardrail.
    pub fn add(&mut self, guard: impl Guardrail + Send + Sync + 'static) {
        self.guards.push(Box::new(guard));
    }

    /// Checks a decision against every guardrail in order.
    pub fn check(&self, decision: &Decision) -> Verdict {
        self.evaluate(decision).0
    }

    /// Like [`GuardrailSet::check`], but also writes a flight-recorder
    /// [`DecisionRecord`](adas_obs::DecisionRecord): the model's provenance,
    /// the predicted performance, the measured baseline it was judged
    /// against (as the observed outcome), and the verdict. Vetoes increment
    /// a per-guard `vetoes` counter.
    pub fn check_recorded(
        &self,
        decision: &Decision,
        provenance: &Provenance<'_>,
        sim_time: f64,
    ) -> Verdict {
        let (verdict, guard_name) = self.evaluate(decision);
        if self.obs.is_enabled() {
            let (verdict_str, vetoed) = match &verdict {
                Verdict::Allow => ("allow".to_string(), false),
                Verdict::Block(reason) => (format!("block: {reason}"), true),
            };
            let mut batch = self.obs.batch();
            batch.counter_add("core.guardrails", "checks", &[], 1);
            if vetoed {
                batch.counter_add(
                    "core.guardrails",
                    "vetoes",
                    &[("guard", guard_name.unwrap_or("unknown"))],
                    1,
                );
            }
            batch.record_decision(
                "core.guardrails",
                "autonomy_decision",
                provenance,
                decision.predicted_perf,
                Some(decision.baseline_perf),
                &verdict_str,
                vetoed,
                0,
                sim_time,
            );
        }
        verdict
    }

    fn evaluate(&self, decision: &Decision) -> (Verdict, Option<&str>) {
        for guard in &self.guards {
            if let Verdict::Block(reason) = guard.check(decision) {
                return (Verdict::Block(reason), Some(guard.name()));
            }
        }
        (Verdict::Allow, None)
    }

    /// Number of guardrails installed.
    pub fn len(&self) -> usize {
        self.guards.len()
    }

    /// True when no guardrails are installed.
    pub fn is_empty(&self) -> bool {
        self.guards.is_empty()
    }
}

/// Per-group fairness report entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GroupOutcome {
    /// Group identifier.
    pub group: u32,
    /// Decisions applied to this group.
    pub decisions: usize,
    /// Mean relative performance improvement for the group.
    pub mean_improvement: f64,
}

/// Batch fairness analysis: "we regularly check that our ML-driven decisions
/// serve all customers fairly … customers, big or small, do not get
/// marginalized".
#[derive(Debug, Clone, Copy)]
pub struct FairnessCheck {
    /// Maximum allowed gap between the fleet mean improvement and the
    /// worst group's mean improvement.
    pub max_disparity: f64,
}

impl FairnessCheck {
    /// Computes per-group outcomes and returns the groups whose improvement
    /// lags the fleet mean by more than `max_disparity`.
    pub fn flag_groups(&self, decisions: &[Decision]) -> (Vec<GroupOutcome>, Vec<u32>) {
        use std::collections::BTreeMap;
        let mut per_group: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for d in decisions {
            let improvement = if d.baseline_perf > 0.0 {
                (d.baseline_perf - d.predicted_perf) / d.baseline_perf
            } else {
                0.0
            };
            per_group.entry(d.group).or_default().push(improvement);
        }
        let outcomes: Vec<GroupOutcome> = per_group
            .iter()
            .map(|(&group, imps)| GroupOutcome {
                group,
                decisions: imps.len(),
                mean_improvement: imps.iter().sum::<f64>() / imps.len() as f64,
            })
            .collect();
        let fleet_mean = if outcomes.is_empty() {
            0.0
        } else {
            outcomes.iter().map(|o| o.mean_improvement).sum::<f64>() / outcomes.len() as f64
        };
        let flagged = outcomes
            .iter()
            .filter(|o| fleet_mean - o.mean_improvement > self.max_disparity)
            .map(|o| o.group)
            .collect();
        (outcomes, flagged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(perf: f64, cost: f64) -> Decision {
        Decision {
            predicted_perf: perf,
            baseline_perf: 100.0,
            predicted_cost: cost,
            baseline_cost: 10.0,
            group: 0,
        }
    }

    #[test]
    fn regression_guard_blocks_slowdowns() {
        let g = RegressionGuard { tolerance: 0.05 };
        assert_eq!(g.check(&decision(90.0, 10.0)), Verdict::Allow);
        assert_eq!(g.check(&decision(104.0, 10.0)), Verdict::Allow);
        assert!(matches!(g.check(&decision(110.0, 10.0)), Verdict::Block(_)));
    }

    #[test]
    fn cost_guard_blocks_expensive_solutions() {
        let g = CostGuard { tolerance: 0.10 };
        assert_eq!(g.check(&decision(90.0, 10.5)), Verdict::Allow);
        assert!(matches!(g.check(&decision(90.0, 12.0)), Verdict::Block(_)));
    }

    #[test]
    fn set_blocks_on_first_failure() {
        let set = GuardrailSet::standard();
        assert_eq!(set.len(), 2);
        assert_eq!(set.check(&decision(95.0, 10.0)), Verdict::Allow);
        // Both guards would fail; the regression message comes first.
        match set.check(&decision(200.0, 50.0)) {
            Verdict::Block(reason) => assert!(reason.contains("regression")),
            Verdict::Allow => panic!("should block"),
        }
    }

    #[test]
    fn fairness_flags_marginalized_group() {
        let mut decisions = Vec::new();
        // Groups 0 and 1 improve 20%; group 2 regresses 10%.
        for g in 0..3u32 {
            for _ in 0..10 {
                let perf = if g == 2 { 110.0 } else { 80.0 };
                decisions.push(Decision {
                    group: g,
                    ..decision(perf, 10.0)
                });
            }
        }
        let check = FairnessCheck {
            max_disparity: 0.15,
        };
        let (outcomes, flagged) = check.flag_groups(&decisions);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(flagged, vec![2]);
        assert!(outcomes[2].mean_improvement < 0.0);
    }

    #[test]
    fn fairness_quiet_when_balanced() {
        let decisions: Vec<Decision> = (0..20)
            .map(|i| Decision {
                group: i % 4,
                ..decision(85.0, 10.0)
            })
            .collect();
        let check = FairnessCheck { max_disparity: 0.1 };
        let (_, flagged) = check.flag_groups(&decisions);
        assert!(flagged.is_empty());
    }
}
