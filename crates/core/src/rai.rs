//! Responsible-AI assessment (Direction 4).
//!
//! "For the ML-related projects, we perform a comprehensive RAI assessment
//! which is for now a manual and prolonged process by domain experts.
//! Several automation tools were developed, however, ad-hoc solutions are
//! still required for many cases."
//!
//! An [`Assessment`] is the per-project checklist: each [`CheckItem`] is
//! either *manual* (a domain expert attests) or *automated* (a check
//! function runs against the project's decision batch — wiring the
//! guardrail and fairness machinery into the assessment). The assessment
//! reaches [`AssessmentStatus::Approved`] only when every required item
//! passes — reproducing the gate the paper describes, with the automatable
//! parts actually automated.

use crate::guardrails::{Decision, FairnessCheck, GuardrailSet, Verdict};
use serde::Serialize;

/// The RAI principles the paper enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Principle {
    /// Privacy and security.
    Privacy,
    /// Fairness.
    Fairness,
    /// Inclusiveness.
    Inclusiveness,
    /// Reliability and safety.
    Reliability,
    /// Transparency.
    Transparency,
    /// Accountability.
    Accountability,
}

/// Result of evaluating one checklist item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ItemStatus {
    /// Not yet evaluated.
    Pending,
    /// Passed (automated check succeeded or expert attested).
    Passed,
    /// Failed, with the reason.
    Failed(String),
}

/// One checklist item.
pub struct CheckItem {
    /// Short identifier, e.g. `no-regressions`.
    pub id: String,
    /// Principle the item belongs to.
    pub principle: Principle,
    /// What is being verified.
    pub description: String,
    /// Whether approval requires this item.
    pub required: bool,
    /// Automated check over the decision batch, if one exists; manual items
    /// hold `None` and are resolved by [`Assessment::attest`].
    check: Option<BatchCheck>,
    status: ItemStatus,
}

/// An automated check over a decision batch.
type BatchCheck = Box<dyn Fn(&[Decision]) -> ItemStatus + Send + Sync>;

/// Overall assessment state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum AssessmentStatus {
    /// Some required items are pending.
    Incomplete,
    /// Every required item passed.
    Approved,
    /// At least one required item failed.
    Rejected,
}

/// The per-project RAI assessment.
pub struct Assessment {
    /// Project under assessment.
    pub project: String,
    items: Vec<CheckItem>,
}

impl Assessment {
    /// Creates an empty assessment.
    pub fn new(project: &str) -> Self {
        Self {
            project: project.to_string(),
            items: Vec::new(),
        }
    }

    /// The standard assessment the paper's gate implies: automated
    /// regression/cost and fairness checks, plus the manual attestations
    /// that remain "ad-hoc".
    pub fn standard(project: &str) -> Self {
        let mut a = Self::new(project);
        a.add_automated(
            "no-blocked-decisions",
            Principle::Reliability,
            "No decision in the evaluation batch trips the regression or cost guardrails",
            true,
            |decisions| {
                let guards = GuardrailSet::standard();
                for d in decisions {
                    if let Verdict::Block(reason) = guards.check(d) {
                        return ItemStatus::Failed(reason);
                    }
                }
                ItemStatus::Passed
            },
        );
        a.add_automated(
            "group-fairness",
            Principle::Fairness,
            "No customer group's mean improvement lags the fleet by more than 20pp",
            true,
            |decisions| {
                let (_, flagged) = FairnessCheck { max_disparity: 0.2 }.flag_groups(decisions);
                if flagged.is_empty() {
                    ItemStatus::Passed
                } else {
                    ItemStatus::Failed(format!("marginalized groups: {flagged:?}"))
                }
            },
        );
        a.add_manual(
            "privacy-review",
            Principle::Privacy,
            "Training telemetry contains no customer-identifying content",
            true,
        );
        a.add_manual(
            "transparency-docs",
            Principle::Transparency,
            "Customer-facing decisions have a succinct, intuitive rationale",
            true,
        );
        a.add_manual(
            "incident-runbook",
            Principle::Accountability,
            "An on-call runbook covers rollback of this model",
            false,
        );
        a
    }

    /// Adds an automated item.
    pub fn add_automated(
        &mut self,
        id: &str,
        principle: Principle,
        description: &str,
        required: bool,
        check: impl Fn(&[Decision]) -> ItemStatus + Send + Sync + 'static,
    ) {
        self.items.push(CheckItem {
            id: id.to_string(),
            principle,
            description: description.to_string(),
            required,
            check: Some(Box::new(check)),
            status: ItemStatus::Pending,
        });
    }

    /// Adds a manual item.
    pub fn add_manual(
        &mut self,
        id: &str,
        principle: Principle,
        description: &str,
        required: bool,
    ) {
        self.items.push(CheckItem {
            id: id.to_string(),
            principle,
            description: description.to_string(),
            required,
            check: None,
            status: ItemStatus::Pending,
        });
    }

    /// Runs every automated check against the decision batch.
    pub fn run_automated(&mut self, decisions: &[Decision]) {
        for item in &mut self.items {
            if let Some(check) = &item.check {
                item.status = check(decisions);
            }
        }
    }

    /// Records an expert attestation for a manual item. Returns false when
    /// the id is unknown or the item is automated.
    pub fn attest(&mut self, id: &str, passed: bool, note: &str) -> bool {
        match self
            .items
            .iter_mut()
            .find(|i| i.id == id && i.check.is_none())
        {
            Some(item) => {
                item.status = if passed {
                    ItemStatus::Passed
                } else {
                    ItemStatus::Failed(note.to_string())
                };
                true
            }
            None => false,
        }
    }

    /// Current overall status.
    pub fn status(&self) -> AssessmentStatus {
        let mut pending = false;
        for item in self.items.iter().filter(|i| i.required) {
            match &item.status {
                ItemStatus::Failed(_) => return AssessmentStatus::Rejected,
                ItemStatus::Pending => pending = true,
                ItemStatus::Passed => {}
            }
        }
        if pending {
            AssessmentStatus::Incomplete
        } else {
            AssessmentStatus::Approved
        }
    }

    /// `(id, principle, required, status)` rows for reporting.
    pub fn report(&self) -> Vec<(&str, Principle, bool, &ItemStatus)> {
        self.items
            .iter()
            .map(|i| (i.id.as_str(), i.principle, i.required, &i.status))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_decision(group: u32) -> Decision {
        Decision {
            predicted_perf: 80.0,
            baseline_perf: 100.0,
            predicted_cost: 10.0,
            baseline_cost: 10.0,
            group,
        }
    }

    #[test]
    fn approval_requires_everything() {
        let mut a = Assessment::standard("seagull");
        assert_eq!(a.status(), AssessmentStatus::Incomplete);
        let batch: Vec<Decision> = (0..12).map(|i| good_decision(i % 3)).collect();
        a.run_automated(&batch);
        assert_eq!(
            a.status(),
            AssessmentStatus::Incomplete,
            "manual items still pending"
        );
        assert!(a.attest("privacy-review", true, ""));
        assert!(a.attest("transparency-docs", true, ""));
        assert_eq!(
            a.status(),
            AssessmentStatus::Approved,
            "optional item may stay pending"
        );
    }

    #[test]
    fn guardrail_failure_rejects() {
        let mut a = Assessment::standard("doppler");
        let mut batch: Vec<Decision> = (0..5).map(|i| good_decision(i % 2)).collect();
        batch.push(Decision {
            predicted_cost: 50.0,
            ..good_decision(0)
        }); // cost blowup
        a.run_automated(&batch);
        assert_eq!(a.status(), AssessmentStatus::Rejected);
    }

    #[test]
    fn fairness_failure_rejects() {
        let mut a = Assessment::standard("steering");
        let mut batch = Vec::new();
        for _ in 0..10 {
            // Group 0 improves 60%; group 1 mildly regresses (still inside
            // the 5% regression guard) — a >20pp fairness gap.
            batch.push(Decision {
                predicted_perf: 40.0,
                ..good_decision(0)
            });
            batch.push(Decision {
                predicted_perf: 104.0,
                ..good_decision(1)
            });
        }
        a.run_automated(&batch);
        assert_eq!(a.status(), AssessmentStatus::Rejected);
        let report = a.report();
        assert!(report
            .iter()
            .any(|(id, _, _, s)| *id == "group-fairness" && matches!(s, ItemStatus::Failed(_))));
    }

    #[test]
    fn failed_attestation_rejects() {
        let mut a = Assessment::standard("phoebe");
        a.run_automated(&[good_decision(0)]);
        a.attest("privacy-review", false, "telemetry contains query text");
        assert_eq!(a.status(), AssessmentStatus::Rejected);
    }

    #[test]
    fn attest_rejects_unknown_and_automated_items() {
        let mut a = Assessment::standard("x");
        assert!(!a.attest("nonexistent", true, ""));
        assert!(
            !a.attest("group-fairness", true, ""),
            "automated items cannot be attested"
        );
    }
}
