//! The global / segment / individual model hierarchy (Sec 4.3, Insight 2).
//!
//! "We can develop models with different levels of granularity: 1) a global
//! model that is broad but may not be precise, 2) a segment model that
//! groups similar customers or applications and shares insights within the
//! group, and 3) an individual model for each customer or application that
//! requires sufficient data observations."
//!
//! The [`GranularityRouter`] holds one regressor per scope and routes each
//! prediction to the most specific scope that has accumulated enough
//! observations — with the observation counts maintained by the router
//! itself, so callers just stream `(entity, segment, features, target)`
//! tuples and ask for predictions.

use adas_ml::Regressor;
use serde::Serialize;
use std::collections::HashMap;

/// Which scope served a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ModelScope {
    /// Entity-specific model.
    Individual,
    /// Segment-shared model.
    Segment,
    /// Fleet-wide model.
    Global,
}

/// A hierarchy of regressors with observation-count-based routing.
///
/// `G`, `S`, `I` are the model types at each level (often the same type).
pub struct GranularityRouter<G, S, I> {
    global: G,
    segments: HashMap<u64, S>,
    individuals: HashMap<u64, I>,
    segment_counts: HashMap<u64, usize>,
    individual_counts: HashMap<u64, usize>,
    /// Observations a segment needs before its model is trusted.
    pub min_segment_observations: usize,
    /// Observations an entity needs before its model is trusted.
    pub min_individual_observations: usize,
}

impl<G, S, I> GranularityRouter<G, S, I>
where
    G: Regressor,
    S: Regressor,
    I: Regressor,
{
    /// Creates a router with only the global model.
    pub fn new(global: G, min_segment: usize, min_individual: usize) -> Self {
        Self {
            global,
            segments: HashMap::new(),
            individuals: HashMap::new(),
            segment_counts: HashMap::new(),
            individual_counts: HashMap::new(),
            min_segment_observations: min_segment,
            min_individual_observations: min_individual,
        }
    }

    /// Installs a segment model.
    pub fn set_segment_model(&mut self, segment: u64, model: S) {
        self.segments.insert(segment, model);
    }

    /// Installs an individual model for an entity.
    pub fn set_individual_model(&mut self, entity: u64, model: I) {
        self.individuals.insert(entity, model);
    }

    /// Records that an observation for `(entity, segment)` was collected
    /// (counts gate which scope is trusted).
    pub fn record_observation(&mut self, entity: u64, segment: u64) {
        *self.segment_counts.entry(segment).or_insert(0) += 1;
        *self.individual_counts.entry(entity).or_insert(0) += 1;
    }

    /// The scope that would serve a prediction for `(entity, segment)`.
    pub fn scope_for(&self, entity: u64, segment: u64) -> ModelScope {
        if self.individuals.contains_key(&entity)
            && self.individual_counts.get(&entity).copied().unwrap_or(0)
                >= self.min_individual_observations
        {
            ModelScope::Individual
        } else if self.segments.contains_key(&segment)
            && self.segment_counts.get(&segment).copied().unwrap_or(0)
                >= self.min_segment_observations
        {
            ModelScope::Segment
        } else {
            ModelScope::Global
        }
    }

    /// Predicts for `(entity, segment)` and reports which scope served it.
    pub fn predict(&self, entity: u64, segment: u64, features: &[f64]) -> (f64, ModelScope) {
        match self.scope_for(entity, segment) {
            ModelScope::Individual => (
                self.individuals[&entity].predict(features),
                ModelScope::Individual,
            ),
            ModelScope::Segment => (
                self.segments[&segment].predict(features),
                ModelScope::Segment,
            ),
            ModelScope::Global => (self.global.predict(features), ModelScope::Global),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A constant "model" for routing tests.
    struct Constant(f64);
    impl Regressor for Constant {
        fn predict(&self, _features: &[f64]) -> f64 {
            self.0
        }
    }

    fn router() -> GranularityRouter<Constant, Constant, Constant> {
        let mut r = GranularityRouter::new(Constant(1.0), 3, 5);
        r.set_segment_model(7, Constant(2.0));
        r.set_individual_model(42, Constant(3.0));
        r
    }

    #[test]
    fn cold_entity_routes_to_global() {
        let r = router();
        assert_eq!(r.scope_for(42, 7), ModelScope::Global);
        assert_eq!(r.predict(42, 7, &[]), (1.0, ModelScope::Global));
    }

    #[test]
    fn warming_promotes_segment_then_individual() {
        let mut r = router();
        for _ in 0..3 {
            r.record_observation(42, 7);
        }
        assert_eq!(r.scope_for(42, 7), ModelScope::Segment);
        assert_eq!(r.predict(42, 7, &[]).0, 2.0);
        for _ in 0..2 {
            r.record_observation(42, 7);
        }
        assert_eq!(r.scope_for(42, 7), ModelScope::Individual);
        assert_eq!(r.predict(42, 7, &[]).0, 3.0);
    }

    #[test]
    fn entity_without_models_stays_global_despite_counts() {
        let mut r = router();
        for _ in 0..10 {
            r.record_observation(1, 2); // segment 2 has no model
        }
        assert_eq!(r.scope_for(1, 2), ModelScope::Global);
    }

    #[test]
    fn segment_counts_shared_across_entities() {
        let mut r = router();
        // Three different entities in segment 7 warm the segment model.
        for e in [1u64, 2, 3] {
            r.record_observation(e, 7);
        }
        assert_eq!(r.scope_for(99, 7), ModelScope::Segment);
    }
}

use adas_ml::dataset::Dataset;
use adas_ml::linear::LinearRegression;

/// An observation streamed into the [`HierarchicalTrainer`].
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Entity the observation belongs to.
    pub entity: u64,
    /// Segment the entity belongs to.
    pub segment: u64,
    /// Feature vector.
    pub features: Vec<f64>,
    /// Target value.
    pub target: f64,
}

/// Streams observations and *trains* the hierarchy automatically: the global
/// model refits on everything, a segment model appears once a segment has
/// `min_segment_observations`, an individual model once an entity has
/// `min_individual_observations` — the full Insight 2 mechanism, not just
/// the routing.
pub struct HierarchicalTrainer {
    observations: Vec<Observation>,
    router: Option<GranularityRouter<LinearRegression, LinearRegression, LinearRegression>>,
    min_segment: usize,
    min_individual: usize,
}

impl HierarchicalTrainer {
    /// Creates a trainer with the given promotion thresholds.
    pub fn new(min_segment: usize, min_individual: usize) -> Self {
        Self {
            observations: Vec::new(),
            router: None,
            min_segment,
            min_individual,
        }
    }

    /// Records one observation (call [`Self::refit`] to rebuild models).
    pub fn observe(&mut self, observation: Observation) {
        self.observations.push(observation);
    }

    /// Number of observations recorded.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    fn fit(rows: &[&Observation]) -> Option<LinearRegression> {
        let data = Dataset::new(
            rows.iter().map(|o| o.features.clone()).collect(),
            rows.iter().map(|o| o.target).collect(),
        )
        .ok()?;
        // Ridge guards against degenerate per-entity feature spreads.
        LinearRegression::fit_ridge(&data, 1e-6).ok()
    }

    /// Rebuilds every level from the recorded observations. Returns `false`
    /// when even the global model cannot be fitted yet.
    pub fn refit(&mut self) -> bool {
        use std::collections::HashMap;
        let all: Vec<&Observation> = self.observations.iter().collect();
        let Some(global) = Self::fit(&all) else {
            return false;
        };
        let mut router = GranularityRouter::new(global, self.min_segment, self.min_individual);

        let mut by_segment: HashMap<u64, Vec<&Observation>> = HashMap::new();
        let mut by_entity: HashMap<u64, Vec<&Observation>> = HashMap::new();
        for o in &self.observations {
            by_segment.entry(o.segment).or_default().push(o);
            by_entity.entry(o.entity).or_default().push(o);
            router.record_observation(o.entity, o.segment);
        }
        for (segment, rows) in by_segment {
            if rows.len() >= self.min_segment {
                if let Some(model) = Self::fit(&rows) {
                    router.set_segment_model(segment, model);
                }
            }
        }
        for (entity, rows) in by_entity {
            if rows.len() >= self.min_individual {
                if let Some(model) = Self::fit(&rows) {
                    router.set_individual_model(entity, model);
                }
            }
        }
        self.router = Some(router);
        true
    }

    /// Predicts for `(entity, segment)` using the most specific trained
    /// scope; `None` until the first successful [`Self::refit`].
    pub fn predict(
        &self,
        entity: u64,
        segment: u64,
        features: &[f64],
    ) -> Option<(f64, ModelScope)> {
        self.router
            .as_ref()
            .map(|r| r.predict(entity, segment, features))
    }
}

#[cfg(test)]
mod trainer_tests {
    use super::*;

    /// Entities in segment s follow `y = (s + 1) * x`, except entity 99
    /// which follows its own law `y = 10x`.
    fn observations() -> Vec<Observation> {
        let mut out = Vec::new();
        for segment in 0..3u64 {
            for entity in 0..4u64 {
                let id = segment * 10 + entity;
                for i in 0..5 {
                    let x = i as f64 + 1.0;
                    out.push(Observation {
                        entity: id,
                        segment,
                        features: vec![x],
                        target: (segment + 1) as f64 * x,
                    });
                }
            }
        }
        for i in 0..12 {
            let x = i as f64 + 1.0;
            out.push(Observation {
                entity: 99,
                segment: 0,
                features: vec![x],
                target: 10.0 * x,
            });
        }
        out
    }

    #[test]
    fn hierarchy_trains_and_routes_by_specificity() {
        let mut trainer = HierarchicalTrainer::new(10, 12);
        assert!(trainer.is_empty());
        for o in observations() {
            trainer.observe(o);
        }
        assert!(trainer.refit());

        // A known entity with its own model gets the individual law.
        let (p, scope) = trainer.predict(99, 0, &[2.0]).expect("fitted");
        assert_eq!(scope, ModelScope::Individual);
        assert!((p - 20.0).abs() < 0.1, "individual prediction {p}");

        // A segment-2 entity without enough personal data gets the segment law.
        let (p, scope) = trainer.predict(21, 2, &[2.0]).expect("fitted");
        assert_eq!(scope, ModelScope::Segment);
        assert!((p - 6.0).abs() < 0.1, "segment prediction {p}");

        // A brand-new entity in a brand-new segment falls back to global.
        let (_, scope) = trainer.predict(500, 77, &[2.0]).expect("fitted");
        assert_eq!(scope, ModelScope::Global);
    }

    #[test]
    fn refit_fails_gracefully_without_data() {
        let mut trainer = HierarchicalTrainer::new(5, 5);
        assert!(!trainer.refit());
        assert!(trainer.predict(1, 1, &[1.0]).is_none());
    }

    #[test]
    fn more_data_promotes_scopes() {
        let mut trainer = HierarchicalTrainer::new(6, 10);
        // 3 observations: global only.
        for i in 0..3 {
            trainer.observe(Observation {
                entity: 1,
                segment: 1,
                features: vec![i as f64],
                target: 2.0 * i as f64,
            });
        }
        trainer.refit();
        assert_eq!(
            trainer.predict(1, 1, &[1.0]).expect("fitted").1,
            ModelScope::Global
        );
        // 7 more: segment appears (>= 6), then individual (>= 10).
        for i in 3..10 {
            trainer.observe(Observation {
                entity: 1,
                segment: 1,
                features: vec![i as f64],
                target: 2.0 * i as f64,
            });
        }
        trainer.refit();
        assert_eq!(
            trainer.predict(1, 1, &[1.0]).expect("fitted").1,
            ModelScope::Individual
        );
    }
}
