//! The feedback loop: monitoring, drift detection, retraining, rollback
//! (Insight 3).
//!
//! "The dynamic nature of cloud data services … leads to requirements for
//! (1) a thorough monitoring system to spot potential changes in real-time,
//! continually assess, and initiate fine-tuning of the model, and (2) a
//! rollback mechanism that reacts fast and avoids regression."
//!
//! [`ModelRegistry`] keeps every deployed version; [`FeedbackLoop`] streams
//! `(prediction, actual)` pairs, compares recent error against the error the
//! deployed version showed at deployment time, and either requests a
//! retrain or rolls back to the best previous version.

use adas_obs::{Obs, Provenance};
use serde::Serialize;
use std::collections::VecDeque;

/// A deployed model version.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelVersion<M> {
    /// Monotonically increasing version number.
    pub version: u64,
    /// The model artifact.
    pub model: M,
    /// Validation error recorded when this version was deployed.
    pub deployment_error: f64,
}

/// Versioned model storage with rollback.
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry<M> {
    versions: Vec<ModelVersion<M>>,
    obs: Obs,
}

impl<M: Clone> ModelRegistry<M> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            versions: Vec::new(),
            obs: Obs::disabled(),
        }
    }

    /// Creates an empty registry that emits `model_deployed` /
    /// `model_rolled_back` trace events into `obs`. The registry has no
    /// simulated clock of its own, so events carry `sim_time` 0; their
    /// sequence numbers still totally order them against the rest of the
    /// trace.
    pub fn with_obs(obs: Obs) -> Self {
        Self {
            versions: Vec::new(),
            obs,
        }
    }

    /// Deploys a new version; returns its version number.
    pub fn deploy(&mut self, model: M, deployment_error: f64) -> u64 {
        let version = self.versions.last().map_or(1, |v| v.version + 1);
        self.versions.push(ModelVersion {
            version,
            model,
            deployment_error,
        });
        self.obs.event(
            "core.feedback",
            "model_deployed",
            0.0,
            &[
                ("version", &version.to_string()),
                ("deployment_error", &format!("{deployment_error}")),
            ],
        );
        version
    }

    /// The currently deployed version.
    pub fn current(&self) -> Option<&ModelVersion<M>> {
        self.versions.last()
    }

    /// Rolls back to the *best* earlier version (lowest deployment error),
    /// redeploying it as a new version. Returns the new version number, or
    /// `None` when there is no earlier version.
    pub fn rollback(&mut self) -> Option<u64> {
        if self.versions.len() < 2 {
            return None;
        }
        let best = self.versions[..self.versions.len() - 1]
            .iter()
            .min_by(|a, b| {
                a.deployment_error
                    .partial_cmp(&b.deployment_error)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("at least one earlier version")
            .clone();
        self.obs.event(
            "core.feedback",
            "model_rolled_back",
            0.0,
            &[("restored_version", &best.version.to_string())],
        );
        Some(self.deploy(best.model, best.deployment_error))
    }

    /// Number of versions ever deployed.
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// The version number the *next* [`ModelRegistry::deploy`] call will
    /// assign — used to label a staged candidate (shadow/canary) before it
    /// is actually deployed.
    pub fn next_version(&self) -> u64 {
        self.versions.last().map_or(1, |v| v.version + 1)
    }
}

/// What the monitor concluded after an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MonitorVerdict {
    /// Error is in line with deployment-time behaviour.
    Healthy,
    /// Error drifted above the retrain threshold: fine-tune/retrain.
    Retrain,
    /// Error exceeded the rollback threshold: roll back immediately.
    Rollback,
    /// Not enough recent observations to judge.
    Warming,
}

/// Configuration for [`FeedbackLoop`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LoopConfig {
    /// Sliding window length (observations) for the live error estimate.
    pub window: usize,
    /// Live error above `retrain_factor * deployment_error` requests a
    /// retrain.
    pub retrain_factor: f64,
    /// Live error above `rollback_factor * deployment_error` triggers
    /// rollback (should exceed `retrain_factor`).
    pub rollback_factor: f64,
}

impl Default for LoopConfig {
    fn default() -> Self {
        Self {
            window: 50,
            retrain_factor: 1.5,
            rollback_factor: 3.0,
        }
    }
}

/// The live monitoring half of the feedback loop.
#[derive(Debug, Clone)]
pub struct FeedbackLoop {
    config: LoopConfig,
    recent: VecDeque<f64>,
    obs: Obs,
}

impl FeedbackLoop {
    /// Creates a loop with the given configuration.
    pub fn new(config: LoopConfig) -> Self {
        Self::with_obs(config, Obs::disabled())
    }

    /// Creates a loop whose [`FeedbackLoop::observe_recorded`] logs monitor
    /// verdicts into `obs`.
    pub fn with_obs(config: LoopConfig, obs: Obs) -> Self {
        Self {
            config,
            recent: VecDeque::with_capacity(config.window),
            obs,
        }
    }

    /// Records one `(prediction, actual)` pair and returns the verdict
    /// against the deployed version's `deployment_error`.
    pub fn observe(
        &mut self,
        prediction: f64,
        actual: f64,
        deployment_error: f64,
    ) -> MonitorVerdict {
        let err = (prediction - actual).abs();
        if self.recent.len() == self.config.window {
            self.recent.pop_front();
        }
        self.recent.push_back(err);
        if self.recent.len() < self.config.window {
            return MonitorVerdict::Warming;
        }
        let live = self.recent.iter().sum::<f64>() / self.recent.len() as f64;
        let baseline = deployment_error.max(1e-12);
        if live > self.config.rollback_factor * baseline {
            MonitorVerdict::Rollback
        } else if live > self.config.retrain_factor * baseline {
            MonitorVerdict::Retrain
        } else {
            MonitorVerdict::Healthy
        }
    }

    /// Like [`FeedbackLoop::observe`], additionally recording the
    /// observation as a flight-recorder decision: the model's provenance,
    /// predicted vs. observed value, the monitor verdict, and the feedback
    /// latency in simulated ticks (how long the outcome took to arrive).
    /// A `Rollback` verdict is recorded as a veto.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_recorded(
        &mut self,
        prediction: f64,
        actual: f64,
        deployment_error: f64,
        provenance: &Provenance<'_>,
        feedback_latency_ticks: u64,
        sim_time: f64,
    ) -> MonitorVerdict {
        let verdict = self.observe(prediction, actual, deployment_error);
        if self.obs.is_enabled() {
            let verdict_str = match verdict {
                MonitorVerdict::Healthy => "healthy",
                MonitorVerdict::Retrain => "retrain",
                MonitorVerdict::Rollback => "rollback",
                MonitorVerdict::Warming => "warming",
            };
            let mut batch = self.obs.batch();
            batch.counter_add("core.feedback", "verdicts", &[("verdict", verdict_str)], 1);
            batch.histogram_observe(
                "core.feedback",
                "feedback_latency_ticks",
                &[],
                feedback_latency_ticks as f64,
            );
            batch.record_decision(
                "core.feedback",
                "monitor_verdict",
                provenance,
                prediction,
                Some(actual),
                verdict_str,
                verdict == MonitorVerdict::Rollback,
                feedback_latency_ticks,
                sim_time,
            );
        }
        verdict
    }

    /// Clears the window (call after a rollback or redeploy so the new
    /// version is judged on its own observations).
    pub fn reset(&mut self) {
        self.recent.clear();
    }

    /// Current live mean absolute error, if the window is full.
    pub fn live_error(&self) -> Option<f64> {
        (self.recent.len() == self.config.window)
            .then(|| self.recent.iter().sum::<f64>() / self.recent.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_versions_monotone() {
        let mut reg = ModelRegistry::new();
        assert!(reg.current().is_none());
        assert_eq!(reg.next_version(), 1);
        assert_eq!(reg.deploy("m1", 0.1), 1);
        assert_eq!(reg.next_version(), 2);
        assert_eq!(reg.deploy("m2", 0.2), 2);
        assert_eq!(reg.current().unwrap().version, 2);
        assert_eq!(reg.version_count(), 2);
        assert_eq!(reg.next_version(), 3);
    }

    #[test]
    fn rollback_restores_best_earlier_version() {
        let mut reg = ModelRegistry::new();
        reg.deploy("ok", 0.2);
        reg.deploy("great", 0.05);
        reg.deploy("bad", 0.9);
        let v = reg.rollback().unwrap();
        assert_eq!(v, 4);
        assert_eq!(reg.current().unwrap().model, "great");
        assert_eq!(reg.current().unwrap().deployment_error, 0.05);
    }

    #[test]
    fn rollback_requires_history() {
        let mut reg: ModelRegistry<&str> = ModelRegistry::new();
        assert!(reg.rollback().is_none());
        reg.deploy("only", 0.1);
        assert!(reg.rollback().is_none());
    }

    #[test]
    fn loop_warms_then_judges() {
        let mut fl = FeedbackLoop::new(LoopConfig {
            window: 5,
            ..Default::default()
        });
        for _ in 0..4 {
            assert_eq!(fl.observe(1.0, 1.05, 0.05), MonitorVerdict::Warming);
        }
        assert_eq!(fl.observe(1.0, 1.05, 0.05), MonitorVerdict::Healthy);
        assert!(fl.live_error().is_some());
    }

    #[test]
    fn drift_escalates_to_retrain_then_rollback() {
        let config = LoopConfig {
            window: 5,
            retrain_factor: 1.5,
            rollback_factor: 3.0,
        };
        let mut fl = FeedbackLoop::new(config);
        // Deployment error 0.1; live error 0.2 → retrain zone.
        for _ in 0..4 {
            fl.observe(0.0, 0.2, 0.1);
        }
        assert_eq!(fl.observe(0.0, 0.2, 0.1), MonitorVerdict::Retrain);
        // Live error 0.5 → rollback zone once the window fills with it.
        for _ in 0..5 {
            fl.observe(0.0, 0.5, 0.1);
        }
        assert_eq!(fl.observe(0.0, 0.5, 0.1), MonitorVerdict::Rollback);
        fl.reset();
        assert_eq!(fl.observe(0.0, 0.5, 0.1), MonitorVerdict::Warming);
    }

    #[test]
    fn end_to_end_loop_with_registry() {
        // A concept-drift scenario: v2 regresses, the loop rolls back.
        let mut reg = ModelRegistry::new();
        reg.deploy(1.0f64, 0.02); // model = constant predictor value
        reg.deploy(5.0f64, 0.02); // bad model deployed with optimistic error
        let mut fl = FeedbackLoop::new(LoopConfig {
            window: 10,
            ..Default::default()
        });
        let mut rolled_back = false;
        for _ in 0..20 {
            let current = reg.current().unwrap();
            let prediction = current.model;
            let actual = 1.0; // the world still looks like v1
            if fl.observe(prediction, actual, current.deployment_error) == MonitorVerdict::Rollback
            {
                reg.rollback();
                fl.reset();
                rolled_back = true;
                break;
            }
        }
        assert!(rolled_back);
        assert_eq!(reg.current().unwrap().model, 1.0);
    }
}
