use crate::{MetricId, ResourceId, Result, TelemetryError, TimeSeries};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Concurrent in-memory telemetry store keyed by `(resource, metric)`.
///
/// This is the workspace's stand-in for the telemetry sinks the paper names
/// (Kusto, SQL Server): simulators append counters, learned components read
/// series back out. A `BTreeMap` keeps enumeration deterministic, which the
/// experiment harness relies on for reproducible output.
#[derive(Debug, Default)]
pub struct TelemetryStore {
    inner: RwLock<BTreeMap<(ResourceId, MetricId), TimeSeries>>,
}

impl TelemetryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample for `(resource, metric)`.
    ///
    /// Out-of-order timestamps within one series are rejected, matching the
    /// append-only semantics of production telemetry pipelines.
    pub fn append(&self, resource: &ResourceId, metric: &MetricId, timestamp: u64, value: f64) {
        let mut inner = self.inner.write();
        let series = inner.entry((resource.clone(), metric.clone())).or_default();
        // Out-of-order appends indicate a simulator bug; drop them silently
        // would hide it, so keep the invariant but surface via debug assert.
        let pushed = series.push(timestamp, value);
        debug_assert!(pushed.is_ok(), "out-of-order telemetry append: {pushed:?}");
    }

    /// Returns a clone of the series for `(resource, metric)`.
    pub fn series(&self, resource: &ResourceId, metric: &MetricId) -> Result<TimeSeries> {
        self.inner
            .read()
            .get(&(resource.clone(), metric.clone()))
            .cloned()
            .ok_or_else(|| TelemetryError::UnknownSeries {
                resource: resource.to_string(),
                metric: metric.to_string(),
            })
    }

    /// Returns the resources that have at least one sample for `metric`,
    /// in deterministic (sorted) order.
    pub fn resources_with_metric(&self, metric: &MetricId) -> Vec<ResourceId> {
        self.inner
            .read()
            .keys()
            .filter(|(_, m)| m == metric)
            .map(|(r, _)| r.clone())
            .collect()
    }

    /// Returns all metrics recorded for `resource`, in deterministic order.
    pub fn metrics_for_resource(&self, resource: &ResourceId) -> Vec<MetricId> {
        self.inner
            .read()
            .keys()
            .filter(|(r, _)| r == resource)
            .map(|(_, m)| m.clone())
            .collect()
    }

    /// Total number of `(resource, metric)` series stored.
    pub fn series_count(&self) -> usize {
        self.inner.read().len()
    }

    /// Total number of samples across all series.
    pub fn sample_count(&self) -> usize {
        self.inner.read().values().map(TimeSeries::len).sum()
    }

    /// Applies `f` to every `(resource, metric, series)` triple in
    /// deterministic order without cloning the series.
    pub fn for_each(&self, mut f: impl FnMut(&ResourceId, &MetricId, &TimeSeries)) {
        for ((r, m), s) in self.inner.read().iter() {
            f(r, m, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn append_and_read_back() {
        let store = TelemetryStore::new();
        let r = ResourceId::new("vm-1");
        let m = MetricId::new("cpu");
        store.append(&r, &m, 0, 0.5);
        store.append(&r, &m, 60, 0.6);
        let s = store.series(&r, &m).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.mean(), Some(0.55));
    }

    #[test]
    fn unknown_series_errors() {
        let store = TelemetryStore::new();
        let err = store
            .series(&ResourceId::new("vm-x"), &MetricId::new("cpu"))
            .unwrap_err();
        assert!(matches!(err, TelemetryError::UnknownSeries { .. }));
    }

    #[test]
    fn enumeration_is_sorted() {
        let store = TelemetryStore::new();
        let m = MetricId::new("cpu");
        for name in ["vm-3", "vm-1", "vm-2"] {
            store.append(&ResourceId::new(name), &m, 0, 1.0);
        }
        let names: Vec<String> = store
            .resources_with_metric(&m)
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(names, vec!["vm-1", "vm-2", "vm-3"]);
    }

    #[test]
    fn metrics_for_resource_filters() {
        let store = TelemetryStore::new();
        let r = ResourceId::new("vm-1");
        store.append(&r, &MetricId::new("cpu"), 0, 1.0);
        store.append(&r, &MetricId::new("mem"), 0, 1.0);
        store.append(&ResourceId::new("vm-2"), &MetricId::new("cpu"), 0, 1.0);
        assert_eq!(store.metrics_for_resource(&r).len(), 2);
        assert_eq!(store.series_count(), 3);
        assert_eq!(store.sample_count(), 3);
    }

    #[test]
    fn concurrent_appends_to_distinct_series() {
        let store = Arc::new(TelemetryStore::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let r = ResourceId::new(format!("vm-{i}"));
                    let m = MetricId::new("cpu");
                    for t in 0..100 {
                        store.append(&r, &m, t, t as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.series_count(), 8);
        assert_eq!(store.sample_count(), 800);
    }
}
