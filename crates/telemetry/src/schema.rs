//! Semantic metric normalization (the paper's Direction 2).
//!
//! > "CPU utilization metrics on Windows and Linux VMs possess the same
//! > meaning even though they may have different names."
//!
//! A [`SemanticSchema`] maps platform-specific metric names (e.g.
//! `\Processor(_Total)\% Processor Time` on Windows, `node_cpu_utilization`
//! on Linux) to canonical [`MetricId`]s so that models trained on one
//! platform's telemetry transfer to another — the prerequisite for the
//! paper's component-level reuse.

use crate::{MetricId, Result, TelemetryError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The unit a canonical metric is expressed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricUnit {
    /// Dimensionless ratio in `[0, 1]`.
    Ratio,
    /// A count of discrete items (containers, requests, …).
    Count,
    /// Bytes.
    Bytes,
    /// Seconds.
    Seconds,
    /// Operations (or requests) per second.
    PerSecond,
}

/// Description of one canonical metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanonicalMetric {
    /// Canonical identifier, e.g. `cpu_utilization`.
    pub id: MetricId,
    /// Unit of the canonical form.
    pub unit: MetricUnit,
    /// Human-readable meaning.
    pub description: String,
}

/// A registered alias: platform-specific name plus an affine conversion into
/// the canonical unit (`canonical = raw * scale + offset`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Alias {
    canonical: MetricId,
    scale: f64,
    offset: f64,
}

/// Registry mapping platform-specific metric names to canonical metrics.
#[derive(Debug, Clone, Default)]
pub struct SemanticSchema {
    canonical: HashMap<MetricId, CanonicalMetric>,
    aliases: HashMap<String, Alias>,
}

impl SemanticSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the schema used throughout the workspace, covering the
    /// counters the simulators emit with Windows- and Linux-style aliases.
    pub fn standard() -> Self {
        let mut schema = Self::new();
        schema.register(
            "cpu_utilization",
            MetricUnit::Ratio,
            "Fraction of CPU busy time across all cores",
        );
        schema.register(
            "running_containers",
            MetricUnit::Count,
            "Number of concurrently running containers on a machine",
        );
        schema.register(
            "task_execution_seconds",
            MetricUnit::Seconds,
            "Wall-clock execution time of a task",
        );
        schema.register(
            "temp_storage_bytes",
            MetricUnit::Bytes,
            "Local temp storage in use",
        );
        schema.register(
            "memory_utilization",
            MetricUnit::Ratio,
            "Fraction of RAM in use",
        );
        schema.register(
            "request_rate",
            MetricUnit::PerSecond,
            "Incoming request rate",
        );

        // Windows-style names report percentages; scale into ratios.
        schema
            .alias(
                r"\Processor(_Total)\% Processor Time",
                "cpu_utilization",
                0.01,
                0.0,
            )
            .expect("canonical registered");
        schema
            .alias(
                r"\Memory\% Committed Bytes In Use",
                "memory_utilization",
                0.01,
                0.0,
            )
            .expect("canonical registered");
        // Linux/node-exporter style names are already ratios.
        schema
            .alias("node_cpu_utilization", "cpu_utilization", 1.0, 0.0)
            .expect("canonical registered");
        schema
            .alias("node_memory_utilization", "memory_utilization", 1.0, 0.0)
            .expect("canonical registered");
        schema
    }

    /// Registers a canonical metric.
    pub fn register(&mut self, id: &str, unit: MetricUnit, description: &str) {
        let id = MetricId::new(id);
        self.canonical.insert(
            id.clone(),
            CanonicalMetric {
                id,
                unit,
                description: description.to_string(),
            },
        );
    }

    /// Registers a platform-specific alias with an affine unit conversion.
    ///
    /// Fails if the canonical metric has not been registered.
    pub fn alias(
        &mut self,
        raw_name: &str,
        canonical: &str,
        scale: f64,
        offset: f64,
    ) -> Result<()> {
        let canonical = MetricId::new(canonical);
        if !self.canonical.contains_key(&canonical) {
            return Err(TelemetryError::UnknownMetricName(canonical.to_string()));
        }
        self.aliases.insert(
            raw_name.to_string(),
            Alias {
                canonical,
                scale,
                offset,
            },
        );
        Ok(())
    }

    /// Normalizes a platform-specific `(name, value)` observation into its
    /// canonical `(metric, value)` form.
    ///
    /// Canonical names pass through unchanged.
    pub fn normalize(&self, raw_name: &str, raw_value: f64) -> Result<(MetricId, f64)> {
        if let Some(alias) = self.aliases.get(raw_name) {
            return Ok((
                alias.canonical.clone(),
                raw_value * alias.scale + alias.offset,
            ));
        }
        let id = MetricId::new(raw_name);
        if self.canonical.contains_key(&id) {
            return Ok((id, raw_value));
        }
        Err(TelemetryError::UnknownMetricName(raw_name.to_string()))
    }

    /// Looks up a canonical metric description.
    pub fn describe(&self, id: &MetricId) -> Option<&CanonicalMetric> {
        self.canonical.get(id)
    }

    /// Number of canonical metrics registered.
    pub fn canonical_count(&self) -> usize {
        self.canonical.len()
    }

    /// Number of aliases registered.
    pub fn alias_count(&self) -> usize {
        self.aliases.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_percentage_normalizes_to_ratio() {
        let schema = SemanticSchema::standard();
        let (id, v) = schema
            .normalize(r"\Processor(_Total)\% Processor Time", 85.0)
            .unwrap();
        assert_eq!(id.as_str(), "cpu_utilization");
        assert!((v - 0.85).abs() < 1e-12);
    }

    #[test]
    fn linux_ratio_passes_through_alias() {
        let schema = SemanticSchema::standard();
        let (id, v) = schema.normalize("node_cpu_utilization", 0.4).unwrap();
        assert_eq!(id.as_str(), "cpu_utilization");
        assert_eq!(v, 0.4);
    }

    #[test]
    fn canonical_names_pass_through() {
        let schema = SemanticSchema::standard();
        let (id, v) = schema.normalize("cpu_utilization", 0.7).unwrap();
        assert_eq!(id.as_str(), "cpu_utilization");
        assert_eq!(v, 0.7);
    }

    #[test]
    fn unknown_names_error() {
        let schema = SemanticSchema::standard();
        assert!(matches!(
            schema.normalize("mystery_metric", 1.0),
            Err(TelemetryError::UnknownMetricName(_))
        ));
    }

    #[test]
    fn alias_requires_canonical() {
        let mut schema = SemanticSchema::new();
        assert!(schema.alias("x", "nonexistent", 1.0, 0.0).is_err());
        schema.register("m", MetricUnit::Count, "a metric");
        assert!(schema.alias("x", "m", 2.0, 1.0).is_ok());
        let (_, v) = schema.normalize("x", 3.0).unwrap();
        assert_eq!(v, 7.0);
    }

    #[test]
    fn windows_and_linux_cpu_agree_after_normalization() {
        // The Direction-2 property: same physical reading, same canonical value.
        let schema = SemanticSchema::standard();
        let (_, windows) = schema
            .normalize(r"\Processor(_Total)\% Processor Time", 64.0)
            .unwrap();
        let (_, linux) = schema.normalize("node_cpu_utilization", 0.64).unwrap();
        assert!((windows - linux).abs() < 1e-12);
    }

    #[test]
    fn standard_schema_inventory() {
        let schema = SemanticSchema::standard();
        assert_eq!(schema.canonical_count(), 6);
        assert_eq!(schema.alias_count(), 4);
        assert!(schema.describe(&MetricId::new("cpu_utilization")).is_some());
        assert!(schema.describe(&MetricId::new("nope")).is_none());
    }
}
