//! Seasonality detection and decomposition.
//!
//! Seagull's backup-window scheduling and Moneyball's pause/resume both rest
//! on one empirical fact the paper highlights: most server load "follows a
//! stable daily or a weekly pattern". This module detects that structure and
//! decomposes a series into trend + seasonal + residual, a lightweight
//! additive variant of STL.

use crate::{Result, TelemetryError, TimeSeries};
use serde::{Deserialize, Serialize};

/// Result of an additive seasonal decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// Smoothed trend component (same length as input).
    pub trend: Vec<f64>,
    /// Repeating seasonal profile of length `period` (mean-centered).
    pub seasonal_profile: Vec<f64>,
    /// Residuals: `value - trend - seasonal` (same length as input).
    pub residual: Vec<f64>,
    /// The period used, in samples.
    pub period: usize,
}

impl Decomposition {
    /// Seasonal component aligned with the input series (profile tiled).
    pub fn seasonal(&self) -> Vec<f64> {
        (0..self.trend.len())
            .map(|i| self.seasonal_profile[i % self.period])
            .collect()
    }

    /// Seasonal strength in `[0, 1]`: `max(0, 1 - var(residual) /
    /// var(seasonal + residual))`, per Hyndman's definition.
    pub fn seasonal_strength(&self) -> f64 {
        let seasonal = self.seasonal();
        let detrended: Vec<f64> = seasonal
            .iter()
            .zip(&self.residual)
            .map(|(s, r)| s + r)
            .collect();
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
        };
        let vr = var(&self.residual);
        let vd = var(&detrended);
        if vd == 0.0 {
            0.0
        } else {
            (1.0 - vr / vd).max(0.0)
        }
    }
}

/// Additively decomposes `series` assuming a fixed `period` (in samples).
///
/// Requires at least two full periods of data. The trend is a centered
/// moving average of width `period` (rounded up to odd); the seasonal
/// profile is the per-phase mean of the detrended values, re-centered to
/// zero mean.
pub fn decompose(series: &TimeSeries, period: usize) -> Result<Decomposition> {
    let n = series.len();
    if period < 2 || n < 2 * period {
        return Err(TelemetryError::InvalidPeriod { period, len: n });
    }
    let window = if period % 2 == 0 { period + 1 } else { period };
    let trend: Vec<f64> = series.moving_average(window)?.values().collect();
    let values: Vec<f64> = series.values().collect();

    let mut phase_sums = vec![0.0f64; period];
    let mut phase_counts = vec![0usize; period];
    for i in 0..n {
        let detrended = values[i] - trend[i];
        phase_sums[i % period] += detrended;
        phase_counts[i % period] += 1;
    }
    let mut profile: Vec<f64> = phase_sums
        .iter()
        .zip(&phase_counts)
        .map(|(&s, &c)| s / c as f64)
        .collect();
    let profile_mean = profile.iter().sum::<f64>() / period as f64;
    for p in &mut profile {
        *p -= profile_mean;
    }

    let residual: Vec<f64> = (0..n)
        .map(|i| values[i] - trend[i] - profile[i % period])
        .collect();
    Ok(Decomposition {
        trend,
        seasonal_profile: profile,
        residual,
        period,
    })
}

/// Detects the dominant period among `candidates` (sample counts) using
/// autocorrelation, returning the candidate with the highest lag-k
/// autocorrelation if it exceeds `threshold`.
pub fn detect_period(series: &TimeSeries, candidates: &[usize], threshold: f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for &k in candidates {
        if let Some(ac) = series.autocorrelation(k) {
            if ac >= threshold && best.map_or(true, |(_, b)| ac > b) {
                best = Some((k, ac));
            }
        }
    }
    best.map(|(k, _)| k)
}

/// Classification of a series' temporal structure, used by Moneyball to
/// decide which usage patterns are forecastable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Strong periodicity at the detected period (in samples).
    Seasonal {
        /// Detected period length in samples.
        period: usize,
    },
    /// No significant periodicity but low variance around the mean.
    Stable,
    /// Neither periodic nor stable.
    Irregular,
}

/// Classifies the temporal pattern of `series`.
///
/// A series is `Seasonal` if some candidate period has autocorrelation at
/// least `season_threshold`; otherwise `Stable` if its coefficient of
/// variation is below `stability_cv`; otherwise `Irregular`.
pub fn classify_pattern(
    series: &TimeSeries,
    candidates: &[usize],
    season_threshold: f64,
    stability_cv: f64,
) -> Pattern {
    if let Some(period) = detect_period(series, candidates, season_threshold) {
        return Pattern::Seasonal { period };
    }
    match (series.mean(), series.std_dev()) {
        (Some(mean), Some(sd)) if mean.abs() > f64::EPSILON && sd / mean.abs() < stability_cv => {
            Pattern::Stable
        }
        _ => Pattern::Irregular,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daily_series(days: usize, noise: impl Fn(usize) -> f64) -> TimeSeries {
        // 24 samples per "day": load high during hours 8-18, low otherwise.
        let values = (0..days * 24).map(|i| {
            let hour = i % 24;
            let base = if (8..18).contains(&hour) { 10.0 } else { 2.0 };
            base + noise(i)
        });
        TimeSeries::evenly_spaced(0, 3600, values)
    }

    #[test]
    fn decompose_recovers_daily_profile() {
        let s = daily_series(7, |_| 0.0);
        let d = decompose(&s, 24).unwrap();
        // Peak phase minus trough phase should be near 8.0.
        let max = d.seasonal_profile.iter().cloned().fold(f64::MIN, f64::max);
        let min = d.seasonal_profile.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - min) > 6.0, "profile amplitude {:.2}", max - min);
        assert!(d.seasonal_strength() > 0.9);
    }

    #[test]
    fn decompose_validates_period() {
        let s = daily_series(1, |_| 0.0);
        assert!(decompose(&s, 24).is_err()); // only one period of data
        assert!(decompose(&s, 1).is_err()); // period too small
    }

    #[test]
    fn profile_is_mean_centered() {
        let s = daily_series(5, |i| (i % 3) as f64 * 0.1);
        let d = decompose(&s, 24).unwrap();
        let mean: f64 = d.seasonal_profile.iter().sum::<f64>() / 24.0;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn detect_period_prefers_true_period() {
        let s = daily_series(7, |_| 0.0);
        let p = detect_period(&s, &[12, 24, 48], 0.3);
        assert_eq!(p, Some(24));
    }

    #[test]
    fn detect_period_none_for_noise() {
        // Deterministic pseudo-noise with no period.
        let values = (0..200).map(|i| ((i * 2654435761u64) % 1000) as f64);
        let s = TimeSeries::evenly_spaced(0, 60, values);
        assert_eq!(detect_period(&s, &[24, 168], 0.5), None);
    }

    #[test]
    fn classify_patterns() {
        let seasonal = daily_series(7, |_| 0.0);
        assert_eq!(
            classify_pattern(&seasonal, &[24], 0.3, 0.1),
            Pattern::Seasonal { period: 24 }
        );

        let stable =
            TimeSeries::evenly_spaced(0, 60, (0..100).map(|i| 10.0 + 0.01 * (i % 2) as f64));
        assert_eq!(classify_pattern(&stable, &[24], 0.99, 0.1), Pattern::Stable);

        let irregular =
            TimeSeries::evenly_spaced(0, 60, (0..100).map(|i| ((i * 2654435761u64) % 1000) as f64));
        assert_eq!(
            classify_pattern(&irregular, &[24], 0.6, 0.05),
            Pattern::Irregular
        );
    }

    #[test]
    fn seasonal_strength_zero_for_flat() {
        let s = TimeSeries::evenly_spaced(0, 60, std::iter::repeat(5.0).take(96));
        let d = decompose(&s, 24).unwrap();
        assert!(d.seasonal_strength() < 1e-9);
    }
}
