//! Time-series telemetry substrate for autonomous data services.
//!
//! The paper ("Towards Building Autonomous Data Services on Azure",
//! SIGMOD-Companion 2023) repeatedly stresses that the cloud's key enabler
//! for autonomy is *telemetry*: "We have never before had access to such
//! detailed workload traces and system telemetries." This crate provides the
//! substrate every other crate in the workspace builds on:
//!
//! * [`TimeSeries`] — an ordered sequence of `(timestamp, value)` samples
//!   with resampling, windowed aggregation, and gap handling.
//! * [`TelemetryStore`] — a concurrent in-memory metric store keyed by
//!   `(resource, metric)` pairs, the stand-in for Kusto/SQL telemetry sinks
//!   named in the paper's Direction 1.
//! * [`schema`] — semantic metric normalization (the paper's Direction 2:
//!   "CPU utilization metrics on Windows and Linux VMs possess the same
//!   meaning even though they may have different names").
//! * [`seasonal`] — seasonality detection and decomposition used by the
//!   service-layer forecasters (Seagull, Moneyball).
//!
//! # Example
//!
//! ```
//! use adas_telemetry::{TimeSeries, TelemetryStore, MetricId, ResourceId};
//!
//! let store = TelemetryStore::new();
//! let res = ResourceId::new("vm-42");
//! let cpu = MetricId::new("cpu_utilization");
//! for t in 0..10 {
//!     store.append(&res, &cpu, t * 60, 0.5 + 0.01 * t as f64);
//! }
//! let series = store.series(&res, &cpu).expect("series exists");
//! assert_eq!(series.len(), 10);
//! assert!(series.mean().unwrap() > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod ids;
pub mod schema;
pub mod seasonal;
mod series;
mod store;
pub mod window;

pub use error::TelemetryError;
pub use ids::{MetricId, ResourceId};
pub use series::{Sample, TimeSeries};
pub use store::TelemetryStore;
pub use window::{Aggregate, WindowSpec};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TelemetryError>;
