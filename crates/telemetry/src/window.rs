//! Windowed aggregation over time series.
//!
//! The service-layer components (Seagull's low-load windows, Moneyball's
//! pause candidates) reason about fixed-width windows of telemetry; this
//! module provides the shared machinery.

use crate::{Result, TelemetryError, TimeSeries};
use serde::{Deserialize, Serialize};

/// How to reduce the samples inside a window to a single value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregate {
    /// Arithmetic mean of samples in the window.
    Mean,
    /// Minimum sample.
    Min,
    /// Maximum sample.
    Max,
    /// Sum of samples.
    Sum,
    /// Number of samples (as `f64`).
    Count,
}

impl Aggregate {
    fn apply(self, values: &[f64]) -> f64 {
        match self {
            Self::Mean => values.iter().sum::<f64>() / values.len() as f64,
            Self::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Self::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Self::Sum => values.iter().sum(),
            Self::Count => values.len() as f64,
        }
    }
}

/// A tumbling-window specification: contiguous `width`-second windows
/// starting at `origin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Timestamp at which the first window opens.
    pub origin: u64,
    /// Window width in seconds; must be positive.
    pub width: u64,
}

impl WindowSpec {
    /// Creates a window spec, validating the width.
    pub fn new(origin: u64, width: u64) -> Result<Self> {
        if width == 0 {
            return Err(TelemetryError::InvalidWindow(
                "window width must be > 0".into(),
            ));
        }
        Ok(Self { origin, width })
    }

    /// Index of the window containing `timestamp`, or `None` if it precedes
    /// the origin.
    pub fn index_of(&self, timestamp: u64) -> Option<u64> {
        timestamp.checked_sub(self.origin).map(|d| d / self.width)
    }

    /// Start timestamp of window `index`.
    pub fn start_of(&self, index: u64) -> u64 {
        self.origin + index * self.width
    }
}

/// One aggregated window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowValue {
    /// Window index relative to the spec origin.
    pub index: u64,
    /// Window start timestamp.
    pub start: u64,
    /// Aggregated value.
    pub value: f64,
}

/// Aggregates `series` into tumbling windows, skipping empty windows.
///
/// Samples before the spec origin are ignored.
pub fn aggregate_windows(
    series: &TimeSeries,
    spec: WindowSpec,
    agg: Aggregate,
) -> Vec<WindowValue> {
    let mut out: Vec<WindowValue> = Vec::new();
    let mut current: Option<(u64, Vec<f64>)> = None;
    for s in series.samples() {
        let Some(idx) = spec.index_of(s.timestamp) else {
            continue;
        };
        match &mut current {
            Some((cur_idx, values)) if *cur_idx == idx => values.push(s.value),
            _ => {
                if let Some((cur_idx, values)) = current.take() {
                    out.push(WindowValue {
                        index: cur_idx,
                        start: spec.start_of(cur_idx),
                        value: agg.apply(&values),
                    });
                }
                current = Some((idx, vec![s.value]));
            }
        }
    }
    if let Some((cur_idx, values)) = current {
        out.push(WindowValue {
            index: cur_idx,
            start: spec.start_of(cur_idx),
            value: agg.apply(&values),
        });
    }
    out
}

/// Finds the contiguous run of `k` windows with the smallest aggregate sum —
/// the "lowest-load window" primitive behind Seagull's backup scheduling.
///
/// Returns the starting position in `windows` of the best run, or `None`
/// when fewer than `k` windows exist or `k == 0`. Non-contiguous window
/// indices (gaps from empty windows) are allowed; the run is over the given
/// slice positions.
pub fn lowest_load_run(windows: &[WindowValue], k: usize) -> Option<usize> {
    if k == 0 || windows.len() < k {
        return None;
    }
    let mut best_start = 0usize;
    let mut best_sum = f64::INFINITY;
    let mut run_sum: f64 = windows[..k].iter().map(|w| w.value).sum();
    best_sum = best_sum.min(run_sum);
    for start in 1..=(windows.len() - k) {
        run_sum += windows[start + k - 1].value - windows[start - 1].value;
        if run_sum < best_sum {
            best_sum = run_sum;
            best_start = start;
        }
    }
    Some(best_start)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows(values: &[f64]) -> Vec<WindowValue> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| WindowValue {
                index: i as u64,
                start: i as u64 * 3600,
                value: v,
            })
            .collect()
    }

    #[test]
    fn spec_validates_width() {
        assert!(WindowSpec::new(0, 0).is_err());
        let spec = WindowSpec::new(100, 60).unwrap();
        assert_eq!(spec.index_of(50), None);
        assert_eq!(spec.index_of(100), Some(0));
        assert_eq!(spec.index_of(159), Some(0));
        assert_eq!(spec.index_of(160), Some(1));
        assert_eq!(spec.start_of(2), 220);
    }

    #[test]
    fn aggregate_mean_and_skip_empty() {
        let series = TimeSeries::from_pairs([(0, 2.0), (30, 4.0), (120, 8.0)]).unwrap();
        let spec = WindowSpec::new(0, 60).unwrap();
        let agg = aggregate_windows(&series, spec, Aggregate::Mean);
        assert_eq!(agg.len(), 2); // window 1 is empty and skipped
        assert_eq!(agg[0].index, 0);
        assert_eq!(agg[0].value, 3.0);
        assert_eq!(agg[1].index, 2);
        assert_eq!(agg[1].value, 8.0);
    }

    #[test]
    fn aggregate_variants() {
        let series = TimeSeries::from_pairs([(0, 2.0), (10, 6.0)]).unwrap();
        let spec = WindowSpec::new(0, 60).unwrap();
        let one = |a| aggregate_windows(&series, spec, a)[0].value;
        assert_eq!(one(Aggregate::Min), 2.0);
        assert_eq!(one(Aggregate::Max), 6.0);
        assert_eq!(one(Aggregate::Sum), 8.0);
        assert_eq!(one(Aggregate::Count), 2.0);
    }

    #[test]
    fn lowest_load_run_finds_trough() {
        let w = windows(&[5.0, 4.0, 1.0, 1.0, 6.0, 7.0]);
        assert_eq!(lowest_load_run(&w, 2), Some(2));
        assert_eq!(lowest_load_run(&w, 1), Some(2));
        assert_eq!(lowest_load_run(&w, 6), Some(0));
        assert_eq!(lowest_load_run(&w, 7), None);
        assert_eq!(lowest_load_run(&w, 0), None);
    }

    #[test]
    fn samples_before_origin_ignored() {
        let series = TimeSeries::from_pairs([(0, 100.0), (200, 1.0)]).unwrap();
        let spec = WindowSpec::new(100, 60).unwrap();
        let agg = aggregate_windows(&series, spec, Aggregate::Sum);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].value, 1.0);
    }
}
