use crate::{Result, TelemetryError};
use serde::{Deserialize, Serialize};

/// A single telemetry observation: a Unix-style timestamp (seconds) and a
/// floating-point value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Observation time, in seconds since the simulation epoch.
    pub timestamp: u64,
    /// Observed value.
    pub value: f64,
}

impl Sample {
    /// Creates a sample.
    pub fn new(timestamp: u64, value: f64) -> Self {
        Self { timestamp, value }
    }
}

/// An append-only, timestamp-ordered sequence of samples.
///
/// All analytical helpers (mean, percentiles, resampling, differencing) are
/// defined here so downstream crates can treat telemetry uniformly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a series from `(timestamp, value)` pairs, which must already
    /// be in non-decreasing timestamp order.
    pub fn from_pairs<I>(pairs: I) -> Result<Self>
    where
        I: IntoIterator<Item = (u64, f64)>,
    {
        let mut series = Self::new();
        for (t, v) in pairs {
            series.push(t, v)?;
        }
        Ok(series)
    }

    /// Creates a series of evenly spaced samples starting at `start`,
    /// `step` seconds apart, taking values from `values`.
    pub fn evenly_spaced<I>(start: u64, step: u64, values: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let samples = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| Sample::new(start + i as u64 * step, v))
            .collect();
        Self { samples }
    }

    /// Appends a sample; timestamps must be non-decreasing.
    pub fn push(&mut self, timestamp: u64, value: f64) -> Result<()> {
        if let Some(last) = self.samples.last() {
            if timestamp < last.timestamp {
                return Err(TelemetryError::OutOfOrderSample {
                    last: last.timestamp,
                    attempted: timestamp,
                });
            }
        }
        self.samples.push(Sample::new(timestamp, value));
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterator over the values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().map(|s| s.value)
    }

    /// Iterator over the timestamps only.
    pub fn timestamps(&self) -> impl Iterator<Item = u64> + '_ {
        self.samples.iter().map(|s| s.timestamp)
    }

    /// First sample, if any.
    pub fn first(&self) -> Option<Sample> {
        self.samples.first().copied()
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// Arithmetic mean of the values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.values().sum::<f64>() / self.len() as f64)
        }
    }

    /// Population standard deviation, or `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.values().map(|v| (v - mean).powi(2)).sum::<f64>() / self.len() as f64;
        Some(var.sqrt())
    }

    /// Minimum value, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.min(v)),
        })
    }

    /// Maximum value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.max(v)),
        })
    }

    /// Linear-interpolated percentile of the values (`p` in `[0, 1]`).
    ///
    /// Returns `None` when the series is empty or `p` is out of range.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.is_empty() || !(0.0..=1.0).contains(&p) {
            return None;
        }
        let mut values: Vec<f64> = self.values().collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = p * (values.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            Some(values[lo])
        } else {
            let frac = rank - lo as f64;
            Some(values[lo] * (1.0 - frac) + values[hi] * frac)
        }
    }

    /// Sub-series of samples with `start <= timestamp < end`.
    pub fn slice(&self, start: u64, end: u64) -> TimeSeries {
        let lo = self.samples.partition_point(|s| s.timestamp < start);
        let hi = self.samples.partition_point(|s| s.timestamp < end);
        TimeSeries {
            samples: self.samples[lo..hi].to_vec(),
        }
    }

    /// Resamples onto a regular grid of `step`-second buckets anchored at the
    /// first timestamp, averaging the samples that fall into each bucket.
    /// Empty buckets are filled by carrying the previous bucket forward.
    pub fn resample(&self, step: u64) -> Result<TimeSeries> {
        if step == 0 {
            return Err(TelemetryError::InvalidWindow(
                "resample step must be > 0".into(),
            ));
        }
        let Some(first) = self.first() else {
            return Ok(TimeSeries::new());
        };
        let last = self.last().expect("non-empty");
        let buckets = (last.timestamp - first.timestamp) / step + 1;
        let mut sums = vec![0.0f64; buckets as usize];
        let mut counts = vec![0u32; buckets as usize];
        for s in &self.samples {
            let idx = ((s.timestamp - first.timestamp) / step) as usize;
            sums[idx] += s.value;
            counts[idx] += 1;
        }
        let mut out = TimeSeries::new();
        let mut carry = first.value;
        for (i, (&sum, &count)) in sums.iter().zip(&counts).enumerate() {
            let v = if count > 0 {
                sum / f64::from(count)
            } else {
                carry
            };
            carry = v;
            out.push(first.timestamp + i as u64 * step, v)?;
        }
        Ok(out)
    }

    /// First difference of the series: `v[i] - v[i-1]` stamped at `t[i]`.
    pub fn diff(&self) -> TimeSeries {
        let samples = self
            .samples
            .windows(2)
            .map(|w| Sample::new(w[1].timestamp, w[1].value - w[0].value))
            .collect();
        TimeSeries { samples }
    }

    /// Centered moving average with the given odd window length.
    ///
    /// Edges use a truncated window. Returns an error for an even or zero
    /// window.
    pub fn moving_average(&self, window: usize) -> Result<TimeSeries> {
        if window == 0 || window % 2 == 0 {
            return Err(TelemetryError::InvalidWindow(format!(
                "moving average window must be odd and positive, got {window}"
            )));
        }
        let half = window / 2;
        let n = self.samples.len();
        let mut out = TimeSeries::new();
        for i in 0..n {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let mean = self.samples[lo..hi].iter().map(|s| s.value).sum::<f64>() / (hi - lo) as f64;
            out.push(self.samples[i].timestamp, mean)?;
        }
        Ok(out)
    }

    /// Lag-`k` autocorrelation of the values (Pearson, mean-centered).
    ///
    /// Returns `None` if fewer than `k + 2` samples or zero variance.
    pub fn autocorrelation(&self, k: usize) -> Option<f64> {
        let n = self.len();
        if n < k + 2 {
            return None;
        }
        let mean = self.mean()?;
        let var: f64 = self.values().map(|v| (v - mean).powi(2)).sum();
        if var == 0.0 {
            return None;
        }
        let cov: f64 = (0..n - k)
            .map(|i| (self.samples[i].value - mean) * (self.samples[i + k].value - mean))
            .sum();
        Some(cov / var)
    }

    /// Pointwise combination of two series sharing identical timestamps.
    ///
    /// Returns `None` if the timestamp grids differ.
    pub fn zip_with(&self, other: &TimeSeries, f: impl Fn(f64, f64) -> f64) -> Option<TimeSeries> {
        if self.len() != other.len() {
            return None;
        }
        let mut out = TimeSeries::new();
        for (a, b) in self.samples.iter().zip(&other.samples) {
            if a.timestamp != b.timestamp {
                return None;
            }
            out.push(a.timestamp, f(a.value, b.value)).ok()?;
        }
        Some(out)
    }
}

impl FromIterator<Sample> for TimeSeries {
    /// Collects samples, silently sorting them by timestamp first so the
    /// ordering invariant holds.
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        let mut samples: Vec<Sample> = iter.into_iter().collect();
        samples.sort_by_key(|s| s.timestamp);
        Self { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> TimeSeries {
        TimeSeries::evenly_spaced(0, 60, values.iter().copied())
    }

    #[test]
    fn push_rejects_out_of_order() {
        let mut s = TimeSeries::new();
        s.push(10, 1.0).unwrap();
        let err = s.push(5, 2.0).unwrap_err();
        assert_eq!(
            err,
            TelemetryError::OutOfOrderSample {
                last: 10,
                attempted: 5
            }
        );
        // Equal timestamps are allowed.
        s.push(10, 3.0).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn basic_statistics() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        let sd = s.std_dev().unwrap();
        assert!((sd - 1.118).abs() < 1e-3);
    }

    #[test]
    fn empty_statistics_are_none() {
        let s = TimeSeries::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.std_dev(), None);
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn percentile_interpolates() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(1.0), Some(4.0));
        assert_eq!(s.percentile(0.5), Some(2.5));
        assert_eq!(s.percentile(1.5), None);
    }

    #[test]
    fn slice_is_half_open() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]); // at t = 0, 60, 120, 180
        let sub = s.slice(60, 180);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.first().unwrap().timestamp, 60);
        assert_eq!(sub.last().unwrap().timestamp, 120);
    }

    #[test]
    fn resample_averages_and_fills() {
        let s = TimeSeries::from_pairs([(0, 1.0), (30, 3.0), (180, 5.0)]).unwrap();
        let r = s.resample(60).unwrap();
        // Buckets: [0,60) avg=2, [60,120) carry=2, [120,180) carry=2, [180,240) =5
        assert_eq!(r.len(), 4);
        let vals: Vec<f64> = r.values().collect();
        assert_eq!(vals, vec![2.0, 2.0, 2.0, 5.0]);
    }

    #[test]
    fn resample_zero_step_errors() {
        let s = series(&[1.0]);
        assert!(matches!(
            s.resample(0),
            Err(TelemetryError::InvalidWindow(_))
        ));
    }

    #[test]
    fn diff_shortens_by_one() {
        let s = series(&[1.0, 4.0, 9.0]);
        let d = s.diff();
        let vals: Vec<f64> = d.values().collect();
        assert_eq!(vals, vec![3.0, 5.0]);
    }

    #[test]
    fn moving_average_smooths() {
        let s = series(&[0.0, 10.0, 0.0, 10.0, 0.0]);
        let ma = s.moving_average(3).unwrap();
        let vals: Vec<f64> = ma.values().collect();
        assert_eq!(vals[1], 10.0 / 3.0);
        assert_eq!(vals[2], 20.0 / 3.0);
        assert!(s.moving_average(2).is_err());
        assert!(s.moving_average(0).is_err());
    }

    #[test]
    fn autocorrelation_detects_period() {
        // Strong period-2 alternation → high lag-2 autocorrelation, negative lag-1.
        let s = series(&[1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
        assert!(s.autocorrelation(2).unwrap() > 0.5);
        assert!(s.autocorrelation(1).unwrap() < -0.5);
        assert_eq!(s.autocorrelation(100), None);
    }

    #[test]
    fn zip_with_requires_matching_grid() {
        let a = series(&[1.0, 2.0]);
        let b = series(&[3.0, 4.0]);
        let sum = a.zip_with(&b, |x, y| x + y).unwrap();
        assert_eq!(sum.values().collect::<Vec<_>>(), vec![4.0, 6.0]);
        let c = TimeSeries::evenly_spaced(1, 60, [1.0, 2.0]);
        assert!(a.zip_with(&c, |x, y| x + y).is_none());
    }

    #[test]
    fn from_iterator_sorts() {
        let s: TimeSeries = [Sample::new(100, 2.0), Sample::new(0, 1.0)]
            .into_iter()
            .collect();
        assert_eq!(s.first().unwrap().timestamp, 0);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_series() -> impl Strategy<Value = TimeSeries> {
        proptest::collection::vec(-1e6f64..1e6, 1..80)
            .prop_map(|values| TimeSeries::evenly_spaced(0, 60, values))
    }

    proptest! {
        /// Percentiles are monotone in p and bracketed by min/max.
        #[test]
        fn percentile_monotone(series in arb_series(), a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let pl = series.percentile(lo).expect("non-empty");
            let ph = series.percentile(hi).expect("non-empty");
            prop_assert!(pl <= ph + 1e-9);
            prop_assert!(series.min().expect("non-empty") <= pl + 1e-9);
            prop_assert!(ph <= series.max().expect("non-empty") + 1e-9);
        }

        /// Moving average preserves the mean up to edge effects bounds and
        /// stays within [min, max].
        #[test]
        fn moving_average_bounded(series in arb_series(), half in 0usize..4) {
            let window = 2 * half + 1;
            let smoothed = series.moving_average(window).expect("odd window");
            let (lo, hi) = (series.min().expect("non-empty"), series.max().expect("non-empty"));
            for v in smoothed.values() {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
            prop_assert_eq!(smoothed.len(), series.len());
        }

        /// Resampling conserves sample count mapping: every output bucket is
        /// inside [first, last] and values are within the input range.
        #[test]
        fn resample_bounded(series in arb_series(), step in 1u64..500) {
            let resampled = series.resample(step).expect("step > 0");
            let (lo, hi) = (series.min().expect("non-empty"), series.max().expect("non-empty"));
            for v in resampled.values() {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
            if let (Some(first), Some(last)) = (resampled.first(), series.last()) {
                prop_assert!(first.timestamp <= last.timestamp);
            }
        }

        /// diff then cumulative-sum recovers the original series tail.
        #[test]
        fn diff_inverts(series in arb_series()) {
            let d = series.diff();
            prop_assert_eq!(d.len(), series.len().saturating_sub(1));
            let first = series.first().expect("non-empty").value;
            let mut acc = first;
            for (dv, orig) in d.values().zip(series.values().skip(1)) {
                acc += dv;
                prop_assert!((acc - orig).abs() < 1e-6);
            }
        }

        /// Slicing never yields samples outside the requested range.
        #[test]
        fn slice_in_range(series in arb_series(), start in 0u64..5000, width in 0u64..5000) {
            let sub = series.slice(start, start + width);
            for s in sub.samples() {
                prop_assert!(s.timestamp >= start && s.timestamp < start + width);
            }
        }
    }
}
