use std::fmt;

/// Errors produced by the telemetry substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryError {
    /// A series was requested for a `(resource, metric)` pair that has no
    /// recorded samples.
    UnknownSeries {
        /// Resource component of the missing key.
        resource: String,
        /// Metric component of the missing key.
        metric: String,
    },
    /// Samples must be appended in non-decreasing timestamp order.
    OutOfOrderSample {
        /// Timestamp of the last stored sample.
        last: u64,
        /// Offending timestamp.
        attempted: u64,
    },
    /// An operation required a non-empty series.
    EmptySeries,
    /// A window or resample specification was invalid (e.g. zero width).
    InvalidWindow(String),
    /// A metric name could not be normalized against the semantic schema.
    UnknownMetricName(String),
    /// The requested seasonal period does not divide into the series.
    InvalidPeriod {
        /// Requested period length in samples.
        period: usize,
        /// Number of samples available.
        len: usize,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownSeries { resource, metric } => {
                write!(
                    f,
                    "no series recorded for resource `{resource}` metric `{metric}`"
                )
            }
            Self::OutOfOrderSample { last, attempted } => write!(
                f,
                "sample timestamp {attempted} precedes last stored timestamp {last}"
            ),
            Self::EmptySeries => write!(f, "operation requires a non-empty series"),
            Self::InvalidWindow(msg) => write!(f, "invalid window specification: {msg}"),
            Self::UnknownMetricName(name) => {
                write!(
                    f,
                    "metric name `{name}` is not registered in the semantic schema"
                )
            }
            Self::InvalidPeriod { period, len } => write!(
                f,
                "seasonal period {period} is invalid for a series of {len} samples"
            ),
        }
    }
}

impl std::error::Error for TelemetryError {}
