use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a monitored resource (VM, container, database, cluster…).
///
/// Cheap to clone: the name is reference-counted.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(Arc<str>);

impl ResourceId {
    /// Creates a resource identifier from any string-like value.
    pub fn new(name: impl AsRef<str>) -> Self {
        Self(Arc::from(name.as_ref()))
    }

    /// Returns the identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ResourceId {
    fn from(value: &str) -> Self {
        Self::new(value)
    }
}

/// Identifier of a metric, e.g. `cpu_utilization`.
///
/// Metric identifiers should be *canonical* names; use
/// [`schema::SemanticSchema`](crate::schema::SemanticSchema) to normalize
/// platform-specific names before storing.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricId(Arc<str>);

impl MetricId {
    /// Creates a metric identifier from any string-like value.
    pub fn new(name: impl AsRef<str>) -> Self {
        Self(Arc::from(name.as_ref()))
    }

    /// Returns the identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for MetricId {
    fn from(value: &str) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn resource_id_round_trips() {
        let id = ResourceId::new("vm-1");
        assert_eq!(id.as_str(), "vm-1");
        assert_eq!(id.to_string(), "vm-1");
        assert_eq!(ResourceId::from("vm-1"), id);
    }

    #[test]
    fn metric_id_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(MetricId::new("cpu"));
        set.insert(MetricId::new("cpu"));
        set.insert(MetricId::new("mem"));
        assert_eq!(set.len(), 2);
        assert!(MetricId::new("cpu") < MetricId::new("mem"));
    }
}
