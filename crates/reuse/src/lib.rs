//! CloudViews: computation reuse for recurring analytics workloads.
//!
//! "CloudViews was developed to detect and reuse common computations on
//! Cosmos and Spark. It relies on a lightweight subexpression hash, called a
//! signature, for scalable materialized view selection and efficient view
//! matching. Deployed on Cosmos, we have observed 34% improvement on the
//! accumulative job latency, and 37% reduced total processing time." It was
//! later extended "from the syntactically equivalent subexpressions detected
//! by the signatures to semantically equivalent and contained
//! subexpressions". (Sec 4.2, \[21, 22, 43\])
//!
//! * [`normalize`] — canonical plan forms, so semantically equal plans that
//!   differ syntactically (filter order, merged vs stacked filters,
//!   commuted unions) share one *normalized signature*.
//! * [`views`] — candidate enumeration over a training workload and
//!   utility/byte greedy selection under a storage budget.
//! * [`rewrite`] — view matching (syntactic, semantic, and predicate
//!   containment with a compensating filter) and plan rewriting.
//! * [mod@replay] — the end-to-end experiment: train a view catalog on one
//!   window, replay the next on the cluster simulator with and without
//!   reuse, and report cumulative-latency and processing-time savings.

//! # Example: select and match a view
//!
//! ```
//! use adas_reuse::{rewrite_plan, MatchPolicy, SelectionConfig, ViewCatalog};
//! use adas_workload::catalog::Catalog;
//! use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};
//!
//! let catalog = Catalog::standard();
//! let shared = LogicalPlan::join(
//!     LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 3)),
//!     LogicalPlan::scan("users"),
//!     0,
//!     0,
//! );
//! let training: Vec<_> = (0..4).map(|i| shared.clone().aggregate(vec![i % 3])).collect();
//! let views = ViewCatalog::select(&training, &catalog, &SelectionConfig::default());
//! let query = shared.aggregate(vec![0, 1]);
//! let outcome = rewrite_plan(&query, &views, MatchPolicy::full());
//! assert!(outcome.hits >= 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod normalize;
pub mod replay;
pub mod rewrite;
pub mod views;

pub use replay::{replay, CloudViewsReport, ReplayConfig};
pub use rewrite::{rewrite_plan, MatchPolicy, RewriteOutcome};
pub use views::{MaterializedView, SelectionConfig, ViewCatalog};
