//! End-to-end CloudViews replay (experiment C6 / ablation A4).
//!
//! Splits a trace into a training window (view selection) and an evaluation
//! window, then replays the evaluation jobs on the cluster simulator twice —
//! without views and with view-rewritten plans — accumulating job latency
//! and total processing time. Materialization costs (one build run per
//! view) are charged against the reuse side.

use crate::rewrite::{rewrite_plan, MatchPolicy};
use crate::views::{SelectionConfig, ViewCatalog};
use adas_engine::cost::CostModel;
use adas_engine::exec::{ClusterConfig, SimOptions, Simulator};
use adas_engine::physical::StageDag;
use adas_engine::Result;
use adas_workload::catalog::Catalog;
use adas_workload::job::Trace;
use serde::Serialize;

/// Replay parameters.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Fraction of the trace (by job order) used to select views.
    pub train_fraction: f64,
    /// View selection parameters.
    pub selection: SelectionConfig,
    /// Matching policy for the reuse side.
    pub policy: MatchPolicy,
    /// Cluster used for both replays.
    pub cluster: ClusterConfig,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            train_fraction: 0.5,
            selection: SelectionConfig::default(),
            policy: MatchPolicy::full(),
            cluster: ClusterConfig::default(),
        }
    }
}

/// Replay results (the paper's two headline numbers plus diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CloudViewsReport {
    /// Views selected.
    pub views_selected: usize,
    /// Evaluation jobs replayed.
    pub jobs_evaluated: usize,
    /// Jobs with at least one view hit.
    pub jobs_with_hits: usize,
    /// Total view hits (subtree replacements).
    pub total_hits: usize,
    /// Hits that used predicate containment.
    pub containment_hits: usize,
    /// Cumulative job latency without reuse, seconds.
    pub baseline_latency: f64,
    /// Cumulative job latency with reuse (incl. view builds), seconds.
    pub reuse_latency: f64,
    /// Relative cumulative-latency improvement (paper: 0.34).
    pub latency_improvement: f64,
    /// Total processing (CPU) time without reuse, seconds.
    pub baseline_cpu: f64,
    /// Total processing time with reuse (incl. view builds), seconds.
    pub reuse_cpu: f64,
    /// Relative processing-time reduction (paper: 0.37).
    pub cpu_reduction: f64,
    /// Mean relative latency improvement over jobs with a view hit
    /// (unweighted per-job average).
    ///
    /// The cumulative numbers above are dominated by the workload's heavy
    /// tail: a few join-blowup jobs carry almost all the "true" work, and
    /// their expensive subtrees recur only modulo predicate literals, so
    /// views cannot cover them (and for blowup joins a view scan costs more
    /// per row than the join's own output rows, so selection correctly
    /// rejects them). The per-job averages are robust to that tail and
    /// reflect what reuse delivers to the typical matching job.
    pub mean_hit_latency_improvement: f64,
    /// Mean relative processing-time reduction over jobs with a view hit
    /// (unweighted per-job average; see `mean_hit_latency_improvement`).
    pub mean_hit_cpu_reduction: f64,
}

/// Runs the replay.
pub fn replay(trace: &Trace, catalog: &Catalog, config: &ReplayConfig) -> Result<CloudViewsReport> {
    let jobs = trace.jobs();
    let cut = ((jobs.len() as f64) * config.train_fraction) as usize;
    let (train, eval) = jobs.split_at(cut.min(jobs.len()));

    let train_plans: Vec<_> = train.iter().map(|j| j.plan.clone()).collect();
    let views = ViewCatalog::select(&train_plans, catalog, &config.selection);
    let extended = views.extend_catalog(catalog);

    let sim = Simulator::new(config.cluster)?;
    let cost_model = CostModel::default();

    // Charge each view's one-time materialization: simulate its build.
    let mut reuse_latency = 0.0;
    let mut reuse_cpu = 0.0;
    for view in views.views() {
        let dag = StageDag::compile(&view.plan, catalog, &cost_model)?;
        let report = sim.run(&dag, &SimOptions::default())?;
        reuse_latency += report.latency;
        reuse_cpu += report.total_cpu_seconds;
    }

    let mut baseline_latency = 0.0;
    let mut baseline_cpu = 0.0;
    let mut jobs_with_hits = 0usize;
    let mut total_hits = 0usize;
    let mut containment_hits = 0usize;
    let mut hit_latency_improvements: Vec<f64> = Vec::new();
    let mut hit_cpu_reductions: Vec<f64> = Vec::new();
    for job in eval {
        let base_dag = StageDag::compile(&job.plan, catalog, &cost_model)?;
        let base = sim.run(&base_dag, &SimOptions::default())?;
        baseline_latency += base.latency;
        baseline_cpu += base.total_cpu_seconds;

        let outcome = rewrite_plan(&job.plan, &views, config.policy);
        if outcome.hits > 0 {
            jobs_with_hits += 1;
            total_hits += outcome.hits;
            containment_hits += outcome.containment_hits;
            let dag = StageDag::compile(&outcome.plan, &extended, &cost_model)?;
            let run = sim.run(&dag, &SimOptions::default())?;
            reuse_latency += run.latency;
            reuse_cpu += run.total_cpu_seconds;
            if base.latency > 0.0 {
                hit_latency_improvements.push((base.latency - run.latency) / base.latency);
            }
            if base.total_cpu_seconds > 0.0 {
                hit_cpu_reductions.push(
                    (base.total_cpu_seconds - run.total_cpu_seconds) / base.total_cpu_seconds,
                );
            }
        } else {
            reuse_latency += base.latency;
            reuse_cpu += base.total_cpu_seconds;
        }
    }

    let rel = |from: f64, to: f64| if from > 0.0 { (from - to) / from } else { 0.0 };
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    Ok(CloudViewsReport {
        views_selected: views.len(),
        jobs_evaluated: eval.len(),
        jobs_with_hits,
        total_hits,
        containment_hits,
        baseline_latency,
        reuse_latency,
        latency_improvement: rel(baseline_latency, reuse_latency),
        baseline_cpu,
        reuse_cpu,
        cpu_reduction: rel(baseline_cpu, reuse_cpu),
        mean_hit_latency_improvement: mean(&hit_latency_improvements),
        mean_hit_cpu_reduction: mean(&hit_cpu_reductions),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};

    #[test]
    fn reuse_improves_latency_and_cpu() {
        let w = WorkloadGenerator::new(GeneratorConfig {
            days: 4,
            jobs_per_day: 60,
            n_templates: 12,
            shared_template_fraction: 0.7,
            ..Default::default()
        })
        .unwrap()
        .generate()
        .unwrap();
        let report = replay(&w.trace, &w.catalog, &ReplayConfig::default()).unwrap();
        assert!(report.views_selected > 0, "{report:?}");
        assert!(report.jobs_with_hits > 0, "{report:?}");
        assert!(report.latency_improvement > 0.0, "{report:?}");
        assert!(report.cpu_reduction > 0.0, "{report:?}");
        assert!(report.mean_hit_latency_improvement > 0.0, "{report:?}");
        assert!(report.mean_hit_cpu_reduction > 0.0, "{report:?}");
    }

    #[test]
    fn full_policy_at_least_matches_syntactic() {
        let w = WorkloadGenerator::new(GeneratorConfig {
            days: 4,
            jobs_per_day: 60,
            n_templates: 12,
            shared_template_fraction: 0.7,
            ..Default::default()
        })
        .unwrap()
        .generate()
        .unwrap();
        let syn = replay(
            &w.trace,
            &w.catalog,
            &ReplayConfig {
                policy: MatchPolicy::syntactic_only(),
                ..Default::default()
            },
        )
        .unwrap();
        let full = replay(&w.trace, &w.catalog, &ReplayConfig::default()).unwrap();
        assert!(full.total_hits >= syn.total_hits);
    }

    #[test]
    fn empty_eval_window_is_safe() {
        let w = WorkloadGenerator::new(GeneratorConfig {
            days: 1,
            jobs_per_day: 10,
            ..Default::default()
        })
        .unwrap()
        .generate()
        .unwrap();
        let report = replay(
            &w.trace,
            &w.catalog,
            &ReplayConfig {
                train_fraction: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.jobs_evaluated, 0);
        assert_eq!(report.latency_improvement, 0.0);
    }
}
