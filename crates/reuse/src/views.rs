//! Materialized-view candidate enumeration and selection.
//!
//! Candidates are non-trivial subplans whose signature recurs across jobs.
//! Each candidate's *utility* is the true compute it would save over the
//! window (occurrences beyond the first × subplan cost, minus the cost of
//! scanning the view instead); its *price* is the storage it occupies.
//! Selection is greedy by utility density under a byte budget — the
//! "scalable materialized view selection" role of CloudViews' signatures.

use crate::normalize::normalized_signature;
use adas_engine::cardinality::{CardinalityModel, TrueCardinality};
use adas_engine::cost::CostModel;
use adas_engine::physical::BYTES_PER_ROW;
use adas_workload::catalog::{Catalog, TableMeta};
use adas_workload::plan::LogicalPlan;
use adas_workload::signature::{strict_signature, Signature};
use serde::Serialize;
use std::collections::HashMap;

/// One selected materialized view.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MaterializedView {
    /// View-table name registered in the extended catalog.
    pub name: String,
    /// Strict signature of the materialized subplan.
    pub signature: Signature,
    /// Normalized signature (for semantic matching).
    pub normalized: Signature,
    /// The subplan this view materializes.
    pub plan: LogicalPlan,
    /// True row count of the view.
    pub rows: f64,
    /// Storage footprint in bytes.
    pub bytes: f64,
    /// One-time materialization cost (true work units).
    pub build_cost: f64,
    /// Times the subplan occurred in the training window.
    pub occurrences: usize,
}

/// Selection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionConfig {
    /// Storage budget across all views, bytes.
    pub storage_budget_bytes: f64,
    /// Minimum occurrences for a candidate.
    pub min_occurrences: usize,
    /// Minimum subplan size (nodes); bare scans are never materialized.
    pub min_nodes: usize,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        Self {
            storage_budget_bytes: 50.0 * 1e9,
            min_occurrences: 2,
            min_nodes: 2,
        }
    }
}

/// The selected views plus lookup indexes.
#[derive(Debug, Clone, Default)]
pub struct ViewCatalog {
    views: Vec<MaterializedView>,
    by_signature: HashMap<Signature, usize>,
    by_normalized: HashMap<Signature, usize>,
}

impl ViewCatalog {
    /// Enumerates candidates from the training jobs and selects greedily by
    /// utility density under the byte budget.
    pub fn select(plans: &[LogicalPlan], catalog: &Catalog, config: &SelectionConfig) -> Self {
        let truth = TrueCardinality::new(catalog);
        let cost_model = CostModel::default();

        // Count occurrences per strict signature; one job contributes each
        // distinct subplan once (self-overlap within a job is not reuse).
        #[derive(Default)]
        struct Candidate {
            plan: Option<LogicalPlan>,
            occurrences: usize,
        }
        let mut candidates: HashMap<Signature, Candidate> = HashMap::new();
        for plan in plans {
            let mut seen_in_job: Vec<Signature> = Vec::new();
            for sub in plan.subplans() {
                if sub.node_count() < config.min_nodes {
                    continue;
                }
                let sig = strict_signature(sub);
                if seen_in_job.contains(&sig) {
                    continue;
                }
                seen_in_job.push(sig);
                let entry = candidates.entry(sig).or_default();
                entry.occurrences += 1;
                if entry.plan.is_none() {
                    entry.plan = Some(sub.clone());
                }
            }
        }

        // Score candidates.
        struct Scored {
            view: MaterializedView,
            utility: f64,
        }
        let mut scored: Vec<Scored> = candidates
            .into_iter()
            .filter(|(_, c)| c.occurrences >= config.min_occurrences)
            .filter_map(|(sig, c)| {
                let plan = c.plan?;
                let rows = truth.estimate(&plan).ok()?;
                let build_cost = cost_model.total_cost(&plan, &truth).ok()?;
                let bytes = rows * BYTES_PER_ROW;
                // Savings per hit: recompute cost minus the view scan cost.
                let scan_cost = rows; // scan weight is 1.0 per row
                let per_hit = (build_cost - scan_cost).max(0.0);
                let utility = per_hit * (c.occurrences as f64 - 1.0);
                if utility <= 0.0 {
                    return None;
                }
                Some(Scored {
                    view: MaterializedView {
                        name: format!("view_{:016x}", sig.0),
                        signature: sig,
                        normalized: normalized_signature(&plan),
                        plan,
                        rows,
                        bytes,
                        build_cost,
                        occurrences: c.occurrences,
                    },
                    utility,
                })
            })
            .collect();
        scored.sort_by(|a, b| {
            let da = a.utility / a.view.bytes.max(1.0);
            let db = b.utility / b.view.bytes.max(1.0);
            db.partial_cmp(&da)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.view.signature.cmp(&b.view.signature))
        });

        let mut out = Self::default();
        let mut used = 0.0;
        for s in scored {
            if used + s.view.bytes > config.storage_budget_bytes {
                continue;
            }
            // Skip views semantically identical to an already-selected one.
            if out.by_normalized.contains_key(&s.view.normalized) {
                continue;
            }
            used += s.view.bytes;
            out.push(s.view);
        }
        out
    }

    fn push(&mut self, view: MaterializedView) {
        let idx = self.views.len();
        self.by_signature.insert(view.signature, idx);
        self.by_normalized.insert(view.normalized, idx);
        self.views.push(view);
    }

    /// The selected views.
    pub fn views(&self) -> &[MaterializedView] {
        &self.views
    }

    /// Number of selected views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when no views were selected.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Looks up a view by strict signature.
    pub fn by_signature(&self, sig: Signature) -> Option<&MaterializedView> {
        self.by_signature.get(&sig).map(|&i| &self.views[i])
    }

    /// Looks up a view by normalized signature.
    pub fn by_normalized(&self, sig: Signature) -> Option<&MaterializedView> {
        self.by_normalized.get(&sig).map(|&i| &self.views[i])
    }

    /// Total storage consumed.
    pub fn total_bytes(&self) -> f64 {
        self.views.iter().map(|v| v.bytes).sum()
    }

    /// Total one-time materialization cost.
    pub fn total_build_cost(&self) -> f64 {
        self.views.iter().map(|v| v.build_cost).sum()
    }

    /// Extends a catalog with one table per view. The view table inherits
    /// the column metadata of the view plan's base table (so predicates
    /// above the replaced subtree still resolve) with the view's row count.
    pub fn extend_catalog(&self, catalog: &Catalog) -> Catalog {
        let mut extended = catalog.clone();
        for view in &self.views {
            let columns = view
                .plan
                .base_table()
                .and_then(|t| catalog.table(t).ok())
                .map(|t| t.columns.clone())
                .unwrap_or_default();
            extended.add_table(TableMeta {
                name: view.name.clone(),
                rows: view.rows.max(1.0) as u64,
                columns,
            });
            extended.register_view(&view.name, view.plan.clone());
        }
        extended
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_workload::plan::{CmpOp, Predicate};

    fn shared_subplan() -> LogicalPlan {
        LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 3)),
            LogicalPlan::scan("users"),
            0,
            0,
        )
    }

    fn workload_with_overlap(n: usize) -> Vec<LogicalPlan> {
        (0..n)
            .map(|i| shared_subplan().aggregate(vec![i % 3]))
            .collect()
    }

    #[test]
    fn recurring_subplan_selected() {
        let catalog = Catalog::standard();
        let plans = workload_with_overlap(5);
        let vc = ViewCatalog::select(&plans, &catalog, &SelectionConfig::default());
        assert!(!vc.is_empty());
        let sig = strict_signature(&shared_subplan());
        let view = vc.by_signature(sig).expect("shared join selected");
        assert_eq!(view.occurrences, 5);
        assert!(view.bytes > 0.0);
        assert!(view.build_cost > 0.0);
    }

    #[test]
    fn unique_plans_select_nothing() {
        let catalog = Catalog::standard();
        let plans: Vec<LogicalPlan> = (0..5)
            .map(|i| LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, i)))
            .collect();
        let vc = ViewCatalog::select(&plans, &catalog, &SelectionConfig::default());
        assert!(vc.is_empty());
    }

    #[test]
    fn budget_limits_selection() {
        let catalog = Catalog::standard();
        let plans = workload_with_overlap(5);
        let tight = SelectionConfig {
            storage_budget_bytes: 1.0,
            ..Default::default()
        };
        let vc = ViewCatalog::select(&plans, &catalog, &tight);
        assert!(vc.is_empty());
    }

    #[test]
    fn extend_catalog_registers_views() {
        let catalog = Catalog::standard();
        let plans = workload_with_overlap(4);
        let vc = ViewCatalog::select(&plans, &catalog, &SelectionConfig::default());
        let extended = vc.extend_catalog(&catalog);
        assert_eq!(extended.len(), catalog.len() + vc.len());
        for view in vc.views() {
            let t = extended.table(&view.name).unwrap();
            assert_eq!(t.rows, view.rows.max(1.0) as u64);
            assert!(!t.columns.is_empty());
        }
    }

    #[test]
    fn min_occurrences_respected() {
        let catalog = Catalog::standard();
        let mut plans = workload_with_overlap(2);
        plans.push(LogicalPlan::scan("regions").aggregate(vec![0]));
        let strict = SelectionConfig {
            min_occurrences: 3,
            ..Default::default()
        };
        let vc = ViewCatalog::select(&plans, &catalog, &strict);
        assert!(vc.is_empty());
    }
}
