//! Canonical plan forms for semantic matching.
//!
//! Two plans are *semantically equivalent* for our algebra when they reduce
//! to the same canonical form:
//!
//! * adjacent filters are merged and their clauses sorted,
//! * union children are ordered by signature (bag union commutes),
//! * everything else is preserved structurally.
//!
//! Hashing the canonical form gives the *normalized signature* that extends
//! CloudViews matching beyond syntactic identity.

use adas_workload::plan::{LogicalPlan, PlanKind, Predicate};
use adas_workload::signature::{strict_signature, Signature};

/// Rewrites a plan into canonical form.
pub fn canonicalize(plan: &LogicalPlan) -> LogicalPlan {
    let children: Vec<LogicalPlan> = plan.children.iter().map(canonicalize).collect();
    match &plan.kind {
        PlanKind::Filter { predicate } => {
            let child = children.into_iter().next().expect("filter has one child");
            // Merge with an immediately-below filter.
            let (mut clauses, grand) = match child {
                LogicalPlan {
                    kind: PlanKind::Filter { predicate: inner },
                    children: mut gc,
                } => {
                    let grand = gc.pop().expect("filter has one child");
                    (inner.clauses.clone(), grand)
                }
                other => (Vec::new(), other),
            };
            clauses.extend(predicate.clauses.iter().copied());
            clauses.sort_by_key(|c| (c.column, c.op.discriminant(), c.value));
            clauses.dedup();
            grand.filter(Predicate::new(clauses))
        }
        PlanKind::Union => {
            let mut kids = children;
            kids.sort_by_key(strict_signature);
            let mut it = kids.into_iter();
            let (a, b) = (
                it.next().expect("two children"),
                it.next().expect("two children"),
            );
            LogicalPlan::union(a, b)
        }
        kind => LogicalPlan {
            kind: kind.clone(),
            children,
        },
    }
}

/// Signature of the canonical form.
pub fn normalized_signature(plan: &LogicalPlan) -> Signature {
    strict_signature(&canonicalize(plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_workload::plan::{CmpOp, Comparison};

    #[test]
    fn stacked_filters_equal_merged_filter() {
        let stacked = LogicalPlan::scan("events")
            .filter(Predicate::single(1, CmpOp::Eq, 3))
            .filter(Predicate::single(2, CmpOp::Le, 10));
        let merged = LogicalPlan::scan("events").filter(Predicate::new(vec![
            Comparison::new(2, CmpOp::Le, 10),
            Comparison::new(1, CmpOp::Eq, 3),
        ]));
        assert_ne!(strict_signature(&stacked), strict_signature(&merged));
        assert_eq!(
            normalized_signature(&stacked),
            normalized_signature(&merged)
        );
    }

    #[test]
    fn union_commutation_normalizes() {
        let a = LogicalPlan::union(LogicalPlan::scan("events"), LogicalPlan::scan("users"));
        let b = LogicalPlan::union(LogicalPlan::scan("users"), LogicalPlan::scan("events"));
        assert_eq!(normalized_signature(&a), normalized_signature(&b));
    }

    #[test]
    fn different_predicates_stay_different() {
        let a = LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 3));
        let b = LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 4));
        assert_ne!(normalized_signature(&a), normalized_signature(&b));
    }

    #[test]
    fn duplicate_clauses_deduped() {
        let doubled = LogicalPlan::scan("events")
            .filter(Predicate::single(1, CmpOp::Eq, 3))
            .filter(Predicate::single(1, CmpOp::Eq, 3));
        let single = LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 3));
        assert_eq!(
            normalized_signature(&doubled),
            normalized_signature(&single)
        );
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let plan = LogicalPlan::union(
            LogicalPlan::scan("users").filter(Predicate::single(0, CmpOp::Ge, 2)),
            LogicalPlan::scan("events")
                .filter(Predicate::single(1, CmpOp::Eq, 3))
                .filter(Predicate::single(2, CmpOp::Lt, 9)),
        )
        .aggregate(vec![0]);
        let once = canonicalize(&plan);
        let twice = canonicalize(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn join_structure_preserved() {
        // Joins do not commute under normalization (key roles differ).
        let a = LogicalPlan::join(
            LogicalPlan::scan("events"),
            LogicalPlan::scan("users"),
            0,
            0,
        );
        let b = LogicalPlan::join(
            LogicalPlan::scan("users"),
            LogicalPlan::scan("events"),
            0,
            0,
        );
        assert_ne!(normalized_signature(&a), normalized_signature(&b));
    }
}
