//! View matching and plan rewriting.
//!
//! Matching proceeds top-down over the query plan, replacing the largest
//! matching subtree first. Three match levels, each subsuming the previous:
//!
//! 1. **Syntactic** — strict-signature equality (original CloudViews).
//! 2. **Semantic** — normalized-signature equality (stacked vs merged
//!    filters, commuted unions).
//! 3. **Containment** — a `Filter(p, X)` query node can be answered from a
//!    view `Filter(q, X)` when `p ⊆ q`, by re-applying `p` as a
//!    compensating filter on the view scan ("enabling a query to partially
//!    take advantage of a view").

use crate::normalize::normalized_signature;
use crate::views::ViewCatalog;
use adas_workload::plan::{LogicalPlan, PlanKind};
use adas_workload::signature::strict_signature;
use serde::Serialize;

/// Which matching levels are enabled (the A4 ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MatchPolicy {
    /// Strict-signature matches.
    pub syntactic: bool,
    /// Normalized-signature matches.
    pub semantic: bool,
    /// Predicate-containment matches with compensation.
    pub containment: bool,
}

impl MatchPolicy {
    /// Original CloudViews: signatures only.
    pub fn syntactic_only() -> Self {
        Self {
            syntactic: true,
            semantic: false,
            containment: false,
        }
    }

    /// The full extension described in the paper.
    pub fn full() -> Self {
        Self {
            syntactic: true,
            semantic: true,
            containment: true,
        }
    }
}

/// Result of rewriting one plan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RewriteOutcome {
    /// The rewritten plan (identical to the input when no view matched).
    pub plan: LogicalPlan,
    /// Number of subtrees replaced by view scans.
    pub hits: usize,
    /// Hits that required predicate compensation.
    pub containment_hits: usize,
}

fn match_node(
    node: &LogicalPlan,
    views: &ViewCatalog,
    policy: MatchPolicy,
) -> Option<(LogicalPlan, bool)> {
    if node.node_count() < 2 {
        return None; // never replace bare scans
    }
    if policy.syntactic {
        if let Some(view) = views.by_signature(strict_signature(node)) {
            return Some((LogicalPlan::scan(&view.name), false));
        }
    }
    if policy.semantic {
        if let Some(view) = views.by_normalized(normalized_signature(node)) {
            return Some((LogicalPlan::scan(&view.name), false));
        }
    }
    if policy.containment {
        // Filter(p, X) matched against view Filter(q, X) with p ⊆ q.
        if let PlanKind::Filter { predicate } = &node.kind {
            let child_norm = normalized_signature(&node.children[0]);
            for view in views.views() {
                if let PlanKind::Filter {
                    predicate: view_pred,
                } = &view.plan.kind
                {
                    if normalized_signature(&view.plan.children[0]) == child_norm
                        && predicate.contained_in(view_pred)
                    {
                        return Some((
                            LogicalPlan::scan(&view.name).filter(predicate.clone()),
                            true,
                        ));
                    }
                }
            }
        }
    }
    None
}

fn rewrite_rec(
    node: &LogicalPlan,
    views: &ViewCatalog,
    policy: MatchPolicy,
    hits: &mut usize,
    containment_hits: &mut usize,
) -> LogicalPlan {
    if let Some((replacement, compensated)) = match_node(node, views, policy) {
        *hits += 1;
        if compensated {
            *containment_hits += 1;
        }
        return replacement;
    }
    LogicalPlan {
        kind: node.kind.clone(),
        children: node
            .children
            .iter()
            .map(|c| rewrite_rec(c, views, policy, hits, containment_hits))
            .collect(),
    }
}

/// Rewrites a plan against the view catalog, largest subtree first.
pub fn rewrite_plan(
    plan: &LogicalPlan,
    views: &ViewCatalog,
    policy: MatchPolicy,
) -> RewriteOutcome {
    let mut hits = 0;
    let mut containment_hits = 0;
    let rewritten = rewrite_rec(plan, views, policy, &mut hits, &mut containment_hits);
    RewriteOutcome {
        plan: rewritten,
        hits,
        containment_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::SelectionConfig;
    use adas_workload::catalog::Catalog;
    use adas_workload::plan::{CmpOp, Predicate};

    fn shared() -> LogicalPlan {
        LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 3)),
            LogicalPlan::scan("users"),
            0,
            0,
        )
    }

    fn catalog_with_view() -> (Catalog, ViewCatalog) {
        let catalog = Catalog::standard();
        let plans: Vec<LogicalPlan> = (0..4).map(|i| shared().aggregate(vec![i % 3])).collect();
        let vc = ViewCatalog::select(&plans, &catalog, &SelectionConfig::default());
        assert!(!vc.is_empty());
        (catalog, vc)
    }

    #[test]
    fn syntactic_match_replaces_subtree() {
        let (_, vc) = catalog_with_view();
        // Aggregate over a group column never seen in training, so only the
        // shared join subtree (not the whole query) matches.
        let query = shared().aggregate(vec![0, 1]);
        let out = rewrite_plan(&query, &vc, MatchPolicy::syntactic_only());
        assert_eq!(out.hits, 1);
        assert_eq!(out.containment_hits, 0);
        assert!(out.plan.node_count() < query.node_count());
        // The replacement root is the aggregate over a view scan.
        assert!(matches!(out.plan.children[0].kind, PlanKind::Scan { .. }));
    }

    #[test]
    fn no_match_returns_identical_plan() {
        let (_, vc) = catalog_with_view();
        let query = LogicalPlan::scan("sessions").aggregate(vec![0]);
        let out = rewrite_plan(&query, &vc, MatchPolicy::full());
        assert_eq!(out.hits, 0);
        assert_eq!(out.plan, query);
    }

    #[test]
    fn semantic_match_catches_reordered_filters() {
        let catalog = Catalog::standard();
        // Train with a two-clause merged filter feeding an aggregate (so the
        // filter subtree itself is a view candidate).
        let merged = LogicalPlan::scan("events").filter(Predicate::new(vec![
            adas_workload::plan::Comparison::new(1, CmpOp::Eq, 3),
            adas_workload::plan::Comparison::new(2, CmpOp::Le, 10),
        ]));
        let plans: Vec<LogicalPlan> = (0..4)
            .map(|i| merged.clone().aggregate(vec![i % 3]))
            .collect();
        let vc = ViewCatalog::select(&plans, &catalog, &SelectionConfig::default());
        // Query stacks the filters in the opposite order.
        let query = LogicalPlan::scan("events")
            .filter(Predicate::single(2, CmpOp::Le, 10))
            .filter(Predicate::single(1, CmpOp::Eq, 3))
            .aggregate(vec![0]);
        let syntactic = rewrite_plan(&query, &vc, MatchPolicy::syntactic_only());
        assert_eq!(syntactic.hits, 0, "literal order differs syntactically");
        let semantic = rewrite_plan(&query, &vc, MatchPolicy::full());
        assert_eq!(semantic.hits, 1);
    }

    #[test]
    fn containment_match_compensates() {
        let catalog = Catalog::standard();
        let wide = LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, 500));
        let plans: Vec<LogicalPlan> = (0..4)
            .map(|i| wide.clone().aggregate(vec![i % 3]))
            .collect();
        let vc = ViewCatalog::select(&plans, &catalog, &SelectionConfig::default());
        // Narrower query predicate: contained in the view predicate.
        let query = LogicalPlan::scan("events")
            .filter(Predicate::single(2, CmpOp::Le, 100))
            .aggregate(vec![0]);
        let without = rewrite_plan(&query, &vc, MatchPolicy::syntactic_only());
        assert_eq!(without.hits, 0);
        let with = rewrite_plan(&query, &vc, MatchPolicy::full());
        assert_eq!(with.hits, 1);
        assert_eq!(with.containment_hits, 1);
        // The compensating filter is re-applied above the view scan.
        match &with.plan.children[0].kind {
            PlanKind::Filter { predicate } => {
                assert_eq!(predicate.clauses[0].value, 100);
            }
            other => panic!("expected compensating filter, got {other:?}"),
        }
    }

    #[test]
    fn wider_query_not_answered_by_narrow_view() {
        let catalog = Catalog::standard();
        let narrow = LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, 100));
        let plans: Vec<LogicalPlan> = (0..4)
            .map(|i| narrow.clone().aggregate(vec![i % 3]))
            .collect();
        let vc = ViewCatalog::select(&plans, &catalog, &SelectionConfig::default());
        let query = LogicalPlan::scan("events")
            .filter(Predicate::single(2, CmpOp::Le, 500))
            .aggregate(vec![0]);
        let out = rewrite_plan(&query, &vc, MatchPolicy::full());
        assert_eq!(out.hits, 0, "containment must not run backwards");
    }

    #[test]
    fn multiple_hits_in_one_plan() {
        let (_, vc) = catalog_with_view();
        let query = LogicalPlan::union(shared().aggregate(vec![0]), shared().aggregate(vec![1]));
        let out = rewrite_plan(&query, &vc, MatchPolicy::syntactic_only());
        assert_eq!(out.hits, 2);
    }
}
