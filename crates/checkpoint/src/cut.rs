//! Checkpoint cut selection and evaluation.
//!
//! A *cut* is a temporal frontier through the stage DAG: every stage
//! predicted to finish by the cut time whose output is still needed
//! afterwards gets checkpointed to the global store. Phoebe formulates cut
//! placement as a linear program; over the discrete set of candidate
//! frontiers used here (one per distinct predicted stage-end time),
//! exhaustively scoring every candidate inside the progress window finds the
//! same optimum.

use crate::predict::StageForecast;
use adas_engine::exec::{ClusterConfig, SimOptions, Simulator};
use adas_engine::physical::{Stage, StageDag, StageId};
use adas_engine::Result;
use adas_obs::Obs;
use serde::Serialize;
use std::collections::HashSet;

/// Configuration for cut selection and evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhoebeConfig {
    /// Earliest acceptable cut position, as a fraction of predicted total
    /// work completed.
    pub min_progress: f64,
    /// Latest acceptable cut position.
    pub max_progress: f64,
    /// Maximum number of cuts to place (each in its own progress band).
    pub max_cuts: usize,
    /// Simulated checkpoint-write cost, in work units per byte persisted
    /// (charged to the checkpointed stage).
    pub ckpt_work_per_byte: f64,
    /// Hotspot relief: any non-sink stage whose predicted output exceeds
    /// this fraction of the largest stage output is checkpointed as well —
    /// the "free the temporary storage on hotspots" objective of Phoebe's
    /// LP. Set above 1.0 to disable.
    pub hotspot_threshold: f64,
}

impl Default for PhoebeConfig {
    fn default() -> Self {
        Self {
            min_progress: 0.25,
            max_progress: 0.9,
            max_cuts: 1,
            ckpt_work_per_byte: 0.0005,
            hotspot_threshold: 0.1,
        }
    }
}

/// A selected checkpoint plan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CheckpointPlan {
    /// Stages whose outputs are persisted to the global store.
    pub stages: Vec<StageId>,
    /// Total predicted bytes persisted.
    pub predicted_bytes: f64,
    /// Cut times chosen (predicted seconds).
    pub cut_times: Vec<f64>,
}

impl CheckpointPlan {
    /// The stage set as a hash set (for the simulator API).
    pub fn stage_set(&self) -> HashSet<StageId> {
        self.stages.iter().copied().collect()
    }

    /// An empty plan (no checkpoints) for baseline comparisons.
    pub fn empty() -> Self {
        Self {
            stages: Vec::new(),
            predicted_bytes: 0.0,
            cut_times: Vec::new(),
        }
    }
}

/// Stages crossing the frontier at time `t`: finished by `t`, output needed
/// after `t`.
fn frontier(dag: &StageDag, forecast: &StageForecast, t: f64) -> Vec<StageId> {
    let consumers = dag.consumers();
    dag.stages()
        .iter()
        .filter(|s| forecast.end[s.id.0] <= t)
        .filter(|s| consumers[s.id.0].iter().any(|c| forecast.end[c.0] > t))
        .map(|s| s.id)
        .collect()
}

/// Selects up to `config.max_cuts` cuts within the progress window, one per
/// equal-width progress band.
///
/// The frontier's crossing bytes are simultaneously (a) the temp storage
/// resident at that moment and (b) the volume a checkpoint must persist —
/// moving them to the global store frees exactly that much local temp. The
/// optimizer therefore cuts at the *residency peak* inside each band
/// (byte-maximal frontier): that frees the most hotspot storage and shields
/// the most completed work from restarts, while the progress window and the
/// per-byte write charge bound the overhead (the trade-off Phoebe's LP
/// balances).
pub fn plan_checkpoints(
    dag: &StageDag,
    forecast: &StageForecast,
    config: &PhoebeConfig,
) -> CheckpointPlan {
    plan_checkpoints_with_obs(dag, forecast, config, &Obs::disabled())
}

/// Like [`plan_checkpoints`], recording the selection into `obs`: a
/// `plan_checkpoints` span, one `cut_selected` event per chosen cut time,
/// and gauges for the persisted stage count and predicted bytes.
pub fn plan_checkpoints_with_obs(
    dag: &StageDag,
    forecast: &StageForecast,
    config: &PhoebeConfig,
    obs: &Obs,
) -> CheckpointPlan {
    let span = obs.span_enter("checkpoint.cut", "plan_checkpoints", 0.0);
    let plan = plan_checkpoints_inner(dag, forecast, config);
    if obs.is_enabled() {
        let mut batch = obs.batch();
        for t in &plan.cut_times {
            batch.event(
                "checkpoint.cut",
                "cut_selected",
                *t,
                &[("predicted_time", &format!("{t:.6}"))],
            );
        }
        batch.gauge_set(
            "checkpoint.cut",
            "stages_checkpointed",
            &[],
            plan.stages.len() as f64,
        );
        batch.gauge_set(
            "checkpoint.cut",
            "predicted_bytes",
            &[],
            plan.predicted_bytes,
        );
        batch.span_exit(span, plan.cut_times.last().copied().unwrap_or(0.0));
    }
    plan
}

fn plan_checkpoints_inner(
    dag: &StageDag,
    forecast: &StageForecast,
    config: &PhoebeConfig,
) -> CheckpointPlan {
    let total_work: f64 = forecast.duration.iter().sum();
    if total_work <= 0.0 || dag.is_empty() || config.max_cuts == 0 {
        return CheckpointPlan::empty();
    }
    // Progress at time t = fraction of predicted work finished by t.
    let progress_at = |t: f64| -> f64 {
        forecast
            .end
            .iter()
            .zip(&forecast.duration)
            .filter(|(&e, _)| e <= t)
            .map(|(_, &d)| d)
            .sum::<f64>()
            / total_work
    };
    // Candidate cut times: distinct predicted stage ends inside the window.
    let mut candidates: Vec<f64> = forecast
        .end
        .iter()
        .copied()
        .filter(|&t| {
            let p = progress_at(t);
            p >= config.min_progress && p <= config.max_progress
        })
        .collect();
    candidates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    candidates.dedup();
    if candidates.is_empty() {
        return CheckpointPlan::empty();
    }

    let band_width = (config.max_progress - config.min_progress) / config.max_cuts as f64;
    let mut chosen_stages: HashSet<StageId> = HashSet::new();
    let mut cut_times = Vec::new();
    for band in 0..config.max_cuts {
        let lo = config.min_progress + band as f64 * band_width;
        let hi = lo + band_width;
        // Byte-maximal frontier (the residency peak) within this band.
        let best = candidates
            .iter()
            .filter(|&&t| {
                let p = progress_at(t);
                p >= lo && p < hi
            })
            .map(|&t| {
                let stages = frontier(dag, forecast, t);
                let bytes: f64 = stages.iter().map(|s| forecast.output_bytes[s.0]).sum();
                (t, stages, bytes)
            })
            .filter(|(_, stages, _)| !stages.is_empty())
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
        if let Some((t, stages, _)) = best {
            cut_times.push(t);
            chosen_stages.extend(stages);
        }
    }
    // Hotspot relief: also persist every non-sink stage whose output is a
    // large fraction of the biggest output, regardless of cut timing.
    let max_bytes = forecast.output_bytes.iter().copied().fold(0.0f64, f64::max);
    if max_bytes > 0.0 && config.hotspot_threshold <= 1.0 {
        let consumers = dag.consumers();
        for stage in dag.stages() {
            if !consumers[stage.id.0].is_empty()
                && forecast.output_bytes[stage.id.0] >= config.hotspot_threshold * max_bytes
            {
                chosen_stages.insert(stage.id);
            }
        }
    }
    let mut stages: Vec<StageId> = chosen_stages.into_iter().collect();
    stages.sort();
    let predicted_bytes = stages.iter().map(|s| forecast.output_bytes[s.0]).sum();
    CheckpointPlan {
        stages,
        predicted_bytes,
        cut_times,
    }
}

/// Evaluation of a checkpoint plan against the no-checkpoint baseline
/// (experiment C5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PhoebeReport {
    /// Hotspot (max-machine) temp peak without checkpoints, bytes.
    pub baseline_hotspot: f64,
    /// Hotspot temp peak with the plan, bytes.
    pub ckpt_hotspot: f64,
    /// Relative hotspot reduction (paper: > 0.70).
    pub hotspot_reduction: f64,
    /// Job latency without checkpoints, seconds.
    pub baseline_latency: f64,
    /// Job latency with checkpoint I/O charged, seconds.
    pub ckpt_latency: f64,
    /// Relative slowdown from checkpoint I/O (paper: "minimal").
    pub slowdown: f64,
    /// Recovery latency after failure, no checkpoints.
    pub baseline_recovery: f64,
    /// Recovery latency after failure, with checkpoints.
    pub ckpt_recovery: f64,
    /// Relative restart speedup (paper: 0.68 on average).
    pub restart_speedup: f64,
}

/// Returns a copy of the DAG with checkpoint-write work charged to the
/// checkpointed stages.
fn charge_ckpt_io(dag: &StageDag, plan: &CheckpointPlan, work_per_byte: f64) -> Result<StageDag> {
    let set = plan.stage_set();
    let stages: Vec<Stage> = dag
        .stages()
        .iter()
        .map(|s| {
            let mut s = s.clone();
            if set.contains(&s.id) {
                s.work += s.output_bytes * work_per_byte;
            }
            s
        })
        .collect();
    StageDag::from_stages(stages)
}

/// Runs the full with/without comparison on the cluster simulator, with a
/// failure injected after `failure_at` of the stages completed.
pub fn evaluate(
    dag: &StageDag,
    plan: &CheckpointPlan,
    cluster: ClusterConfig,
    failure_at: f64,
) -> Result<PhoebeReport> {
    evaluate_with_obs(dag, plan, cluster, failure_at, &Obs::disabled())
}

/// Like [`evaluate`], running the comparison on an obs-instrumented
/// [`Simulator`] (so exec spans land in the trace) and recording the
/// headline Phoebe gauges: hotspot reduction, slowdown and restart speedup.
pub fn evaluate_with_obs(
    dag: &StageDag,
    plan: &CheckpointPlan,
    cluster: ClusterConfig,
    failure_at: f64,
    obs: &Obs,
) -> Result<PhoebeReport> {
    let sim = Simulator::with_obs(cluster, obs.clone())?;
    let baseline = sim.run(dag, &SimOptions::default())?;
    let (_, baseline_recovery) = sim.run_with_failure(dag, &HashSet::new(), failure_at)?;

    let charged = charge_ckpt_io(dag, plan, plan_cost_rate(plan))?;
    let ckpt_set = plan.stage_set();
    let ckpt = sim.run(
        &charged,
        &SimOptions {
            checkpointed: ckpt_set.clone(),
            precomputed: HashSet::new(),
        },
    )?;
    let (_, ckpt_recovery) = sim.run_with_failure(&charged, &ckpt_set, failure_at)?;

    let rel = |from: f64, to: f64| if from > 0.0 { (from - to) / from } else { 0.0 };
    if obs.is_enabled() {
        // The simulators above record through the same handle, so the batch
        // opens only after they finish.
        let mut batch = obs.batch();
        batch.gauge_set(
            "checkpoint.cut",
            "hotspot_reduction",
            &[],
            rel(baseline.hotspot_peak(), ckpt.hotspot_peak()),
        );
        batch.gauge_set(
            "checkpoint.cut",
            "slowdown",
            &[],
            rel(ckpt.latency, baseline.latency).abs(),
        );
        batch.gauge_set(
            "checkpoint.cut",
            "restart_speedup",
            &[],
            rel(baseline_recovery.latency, ckpt_recovery.latency),
        );
    }
    Ok(PhoebeReport {
        baseline_hotspot: baseline.hotspot_peak(),
        ckpt_hotspot: ckpt.hotspot_peak(),
        hotspot_reduction: rel(baseline.hotspot_peak(), ckpt.hotspot_peak()),
        baseline_latency: baseline.latency,
        ckpt_latency: ckpt.latency,
        slowdown: rel(ckpt.latency, baseline.latency).abs(),
        baseline_recovery: baseline_recovery.latency,
        ckpt_recovery: ckpt_recovery.latency,
        restart_speedup: rel(baseline_recovery.latency, ckpt_recovery.latency),
    })
}

/// The I/O rate used by [`evaluate`]: stored on the plan via the default
/// config (kept as a function so the ablation bench can override by calling
/// [`charge_ckpt_io`]-equivalent paths through a custom config).
fn plan_cost_rate(_plan: &CheckpointPlan) -> f64 {
    PhoebeConfig::default().ckpt_work_per_byte
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::StagePredictor;
    use adas_engine::cost::CostModel;
    use adas_engine::exec::ExecReport;
    use adas_workload::catalog::Catalog;
    use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};

    /// A moderately deep/wide plan whose middle stages have big outputs.
    fn test_plan(v: i64) -> LogicalPlan {
        let a = LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, v)),
            LogicalPlan::scan("users"),
            0,
            0,
        );
        let b = LogicalPlan::join(
            LogicalPlan::scan("sessions").filter(Predicate::single(2, CmpOp::Le, v)),
            LogicalPlan::scan("users"),
            0,
            0,
        );
        LogicalPlan::union(a, b).aggregate(vec![1])
    }

    fn setup() -> (StageDag, StageForecast) {
        let catalog = Catalog::standard();
        let cm = CostModel::default();
        let sim = Simulator::new(ClusterConfig::default()).unwrap();
        let history: Vec<(StageDag, ExecReport)> = [100, 250, 400, 600]
            .iter()
            .map(|&v| {
                let dag = StageDag::compile(&test_plan(v), &catalog, &cm).unwrap();
                let rep = sim.run(&dag, &SimOptions::default()).unwrap();
                (dag, rep)
            })
            .collect();
        let refs: Vec<(&StageDag, &ExecReport)> = history.iter().map(|(d, r)| (d, r)).collect();
        let predictor = StagePredictor::train(&refs).unwrap();
        let dag = StageDag::compile(&test_plan(350), &catalog, &cm).unwrap();
        let forecast = predictor.forecast(&dag);
        (dag, forecast)
    }

    #[test]
    fn plan_selects_nonempty_cut_in_window() {
        let (dag, forecast) = setup();
        // Disable hotspot relief so only the temporal cut remains.
        let config = PhoebeConfig {
            hotspot_threshold: 2.0,
            ..Default::default()
        };
        let plan = plan_checkpoints(&dag, &forecast, &config);
        assert!(!plan.stages.is_empty());
        assert!(plan.predicted_bytes > 0.0);
        assert_eq!(plan.cut_times.len(), 1);
        // Every checkpointed stage really finishes before the cut and feeds
        // something after it.
        let consumers = dag.consumers();
        for id in &plan.stages {
            assert!(forecast.end[id.0] <= plan.cut_times[0] + 1e-9);
            assert!(consumers[id.0]
                .iter()
                .any(|c| forecast.end[c.0] > plan.cut_times[0]));
        }
    }

    #[test]
    fn multi_cut_covers_more_stages() {
        let (dag, forecast) = setup();
        let one = plan_checkpoints(
            &dag,
            &forecast,
            &PhoebeConfig {
                hotspot_threshold: 2.0,
                ..Default::default()
            },
        );
        let two = plan_checkpoints(
            &dag,
            &forecast,
            &PhoebeConfig {
                max_cuts: 2,
                hotspot_threshold: 2.0,
                ..Default::default()
            },
        );
        assert!(two.stages.len() >= one.stages.len());
    }

    #[test]
    fn zero_cuts_yield_empty_plan() {
        let (dag, forecast) = setup();
        let plan = plan_checkpoints(
            &dag,
            &forecast,
            &PhoebeConfig {
                max_cuts: 0,
                ..Default::default()
            },
        );
        assert_eq!(plan, CheckpointPlan::empty());
    }

    #[test]
    fn evaluation_shows_phoebe_effects() {
        let (dag, forecast) = setup();
        let plan = plan_checkpoints(&dag, &forecast, &PhoebeConfig::default());
        let report = evaluate(&dag, &plan, ClusterConfig::default(), 0.8).unwrap();
        // Hotspot shrinks, restart speeds up, latency overhead is bounded.
        assert!(report.hotspot_reduction > 0.3, "hotspot {:?}", report);
        assert!(report.restart_speedup > 0.0, "restart {:?}", report);
        assert!(report.slowdown < 0.2, "slowdown {:?}", report);
    }

    #[test]
    fn empty_plan_is_a_noop() {
        let (dag, _) = setup();
        let report = evaluate(
            &dag,
            &CheckpointPlan::empty(),
            ClusterConfig::default(),
            0.8,
        )
        .unwrap();
        assert_eq!(report.hotspot_reduction, 0.0);
        assert_eq!(report.slowdown, 0.0);
        assert!(report.restart_speedup.abs() < 1e-9);
    }
}
