//! Stage-level prediction models.
//!
//! Trained on historical `(StageDag, ExecReport)` pairs, the predictor maps
//! optimizer-visible stage features (estimated work/rows, task count,
//! operator kind) to duration and output size, then derives start/end times
//! by propagating durations through the dependency structure — the
//! "taking into account of the inter-stage dependency" part of Phoebe.

use adas_engine::exec::ExecReport;
use adas_engine::physical::{Stage, StageDag};
use adas_ml::dataset::Dataset;
use adas_ml::gbm::{GbmConfig, GradientBoosting};
use adas_ml::{MlError, Regressor, Result};
use serde::Serialize;

fn op_code(op: &str) -> f64 {
    match op {
        "Scan" => 0.0,
        "Filter" => 1.0,
        "Project" => 2.0,
        "Join" => 3.0,
        "Aggregate" => 4.0,
        _ => 5.0,
    }
}

fn stage_features(stage: &Stage) -> Vec<f64> {
    vec![
        stage.est_work.max(1.0).ln(),
        stage.est_rows.max(1.0).ln(),
        stage.tasks as f64,
        op_code(stage.op),
        stage.inputs.len() as f64,
    ]
}

/// Per-stage forecast for one DAG.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageForecast {
    /// Predicted task-level duration of each stage, seconds.
    pub duration: Vec<f64>,
    /// Predicted output size of each stage, bytes.
    pub output_bytes: Vec<f64>,
    /// Predicted start time of each stage (dependency-propagated).
    pub start: Vec<f64>,
    /// Predicted end time of each stage (dependency-propagated).
    pub end: Vec<f64>,
}

impl StageForecast {
    /// Predicted completion time of the whole DAG.
    pub fn makespan(&self) -> f64 {
        self.end.iter().copied().fold(0.0, f64::max)
    }
}

/// Models predicting stage duration and output size.
pub struct StagePredictor {
    duration_model: GradientBoosting,
    bytes_model: GradientBoosting,
    /// Training-set mean duration — the heuristic the serving layer falls
    /// back to when the duration model is degraded.
    mean_duration: f64,
    /// Training-set mean ln(output bytes), the bytes-model fallback.
    mean_ln_bytes: f64,
}

impl StagePredictor {
    /// Trains on historical executions. Requires at least a handful of
    /// observed stages.
    pub fn train(history: &[(&StageDag, &ExecReport)]) -> Result<Self> {
        let mut features = Vec::new();
        let mut durations = Vec::new();
        let mut bytes = Vec::new();
        for (dag, report) in history {
            for stage in dag.stages() {
                let idx = stage.id.0;
                features.push(stage_features(stage));
                durations.push((report.stage_finish[idx] - report.stage_start[idx]).max(0.0));
                bytes.push(stage.output_bytes.max(1.0).ln());
            }
        }
        if features.len() < 8 {
            return Err(MlError::InsufficientData(format!(
                "need >= 8 observed stages, got {}",
                features.len()
            )));
        }
        let mean_duration = durations.iter().sum::<f64>() / durations.len() as f64;
        let mean_ln_bytes = bytes.iter().sum::<f64>() / bytes.len() as f64;
        let duration_model = GradientBoosting::fit(
            &Dataset::new(features.clone(), durations)?,
            GbmConfig::default(),
        )?;
        let bytes_model =
            GradientBoosting::fit(&Dataset::new(features, bytes)?, GbmConfig::default())?;
        Ok(Self {
            duration_model,
            bytes_model,
            mean_duration,
            mean_ln_bytes,
        })
    }

    /// Forecasts a DAG: per-stage duration and output size from the models,
    /// start/end times by critical-path propagation (a machine-unconstrained
    /// lower bound, which is what cut placement needs).
    pub fn forecast(&self, dag: &StageDag) -> StageForecast {
        let n = dag.len();
        let mut duration = Vec::with_capacity(n);
        let mut output_bytes = Vec::with_capacity(n);
        for stage in dag.stages() {
            let f = stage_features(stage);
            duration.push(self.duration_model.predict(&f).max(0.0));
            output_bytes.push(self.bytes_model.predict(&f).exp().max(0.0));
        }
        let mut start = vec![0.0f64; n];
        let mut end = vec![0.0f64; n];
        for stage in dag.stages() {
            let idx = stage.id.0;
            let ready = stage.inputs.iter().map(|s| end[s.0]).fold(0.0f64, f64::max);
            start[idx] = ready;
            end[idx] = ready + duration[idx];
        }
        StageForecast {
            duration,
            output_bytes,
            start,
            end,
        }
    }

    /// Publishes both stage models into a serving gateway and returns a
    /// forecaster whose predictions flow through it. Fallbacks are the
    /// training-set means — a crude but safe heuristic when a model is
    /// degraded. Re-publishing after retraining hot-swaps the versions.
    pub fn publish(&self, gateway: &adas_serve::Gateway) -> ServedStagePredictor {
        let mean_duration = self.mean_duration;
        let mean_ln_bytes = self.mean_ln_bytes;
        let duration = gateway.register(DURATION_MODEL, move |_: &[f64]| mean_duration);
        let bytes = gateway.register(BYTES_MODEL, move |_: &[f64]| mean_ln_bytes);
        gateway
            .publish(
                duration,
                std::sync::Arc::new(adas_serve::RegressorModel(self.duration_model.clone())),
                0.0,
            )
            .expect("freshly registered handle");
        gateway
            .publish(
                bytes,
                std::sync::Arc::new(adas_serve::RegressorModel(self.bytes_model.clone())),
                0.0,
            )
            .expect("freshly registered handle");
        ServedStagePredictor {
            gateway: gateway.clone(),
            duration,
            bytes,
            sim_time: std::cell::Cell::new(0.0),
        }
    }
}

/// Gateway name of the stage-duration model.
pub const DURATION_MODEL: &str = "checkpoint/stage-duration";
/// Gateway name of the stage-output-bytes model.
pub const BYTES_MODEL: &str = "checkpoint/stage-bytes";

/// The served twin of [`StagePredictor`]: identical forecasts, but every
/// per-stage prediction goes through the gateway (cache, breaker,
/// fallback). The forecast feeds `plan_checkpoints` unchanged.
pub struct ServedStagePredictor {
    gateway: adas_serve::Gateway,
    duration: adas_serve::ModelHandle,
    bytes: adas_serve::ModelHandle,
    sim_time: std::cell::Cell<f64>,
}

impl ServedStagePredictor {
    /// Sets the simulated time stamped onto subsequent gateway requests.
    pub fn set_sim_time(&self, sim_time: f64) {
        self.sim_time.set(sim_time);
    }

    /// The gateway serving the stage models.
    pub fn gateway(&self) -> &adas_serve::Gateway {
        &self.gateway
    }

    /// Forecasts a DAG through the serving layer. Mirrors
    /// [`StagePredictor::forecast`]: duration is predicted in raw seconds,
    /// output size in ln-bytes (exponentiated here), and start/end times
    /// come from critical-path propagation.
    pub fn forecast(&self, dag: &StageDag) -> StageForecast {
        let now = self.sim_time.get();
        let n = dag.len();
        let mut duration = Vec::with_capacity(n);
        let mut output_bytes = Vec::with_capacity(n);
        for stage in dag.stages() {
            let f = stage_features(stage);
            let d = self
                .gateway
                .predict(self.duration, &f, now)
                .expect("handle registered at publish time");
            duration.push(d.value.max(0.0));
            let b = self
                .gateway
                .predict(self.bytes, &f, now)
                .expect("handle registered at publish time");
            output_bytes.push(b.value.exp().max(0.0));
        }
        let mut start = vec![0.0f64; n];
        let mut end = vec![0.0f64; n];
        for stage in dag.stages() {
            let idx = stage.id.0;
            let ready = stage.inputs.iter().map(|s| end[s.0]).fold(0.0f64, f64::max);
            start[idx] = ready;
            end[idx] = ready + duration[idx];
        }
        StageForecast {
            duration,
            output_bytes,
            start,
            end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_engine::cost::CostModel;
    use adas_engine::exec::{ClusterConfig, SimOptions, Simulator};
    use adas_workload::catalog::Catalog;
    use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};

    fn training_material() -> Vec<(StageDag, ExecReport)> {
        let catalog = Catalog::standard();
        let sim = Simulator::new(ClusterConfig::default()).unwrap();
        let cm = CostModel::default();
        let mut out = Vec::new();
        for v in [50, 150, 300, 500, 700] {
            let plan = LogicalPlan::join(
                LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, v)),
                LogicalPlan::scan("users"),
                0,
                0,
            )
            .aggregate(vec![1]);
            let dag = StageDag::compile(&plan, &catalog, &cm).unwrap();
            let report = sim.run(&dag, &SimOptions::default()).unwrap();
            out.push((dag, report));
        }
        out
    }

    #[test]
    fn predictor_learns_duration_scale() {
        let material = training_material();
        let refs: Vec<(&StageDag, &ExecReport)> = material.iter().map(|(d, r)| (d, r)).collect();
        let predictor = StagePredictor::train(&refs).unwrap();
        let (dag, report) = &material[2];
        let forecast = predictor.forecast(dag);
        assert_eq!(forecast.duration.len(), dag.len());
        // Makespan prediction within 3x of the observed latency.
        let ratio = forecast.makespan() / report.latency;
        assert!(ratio > 0.3 && ratio < 3.0, "makespan ratio {ratio}");
    }

    #[test]
    fn forecast_respects_dependencies() {
        let material = training_material();
        let refs: Vec<(&StageDag, &ExecReport)> = material.iter().map(|(d, r)| (d, r)).collect();
        let predictor = StagePredictor::train(&refs).unwrap();
        let (dag, _) = &material[0];
        let f = predictor.forecast(dag);
        for stage in dag.stages() {
            for input in &stage.inputs {
                assert!(f.start[stage.id.0] >= f.end[input.0] - 1e-9);
            }
            assert!(f.end[stage.id.0] >= f.start[stage.id.0]);
        }
    }

    #[test]
    fn insufficient_history_rejected() {
        assert!(StagePredictor::train(&[]).is_err());
    }

    #[test]
    fn served_forecast_matches_direct() {
        let material = training_material();
        let refs: Vec<(&StageDag, &ExecReport)> = material.iter().map(|(d, r)| (d, r)).collect();
        let predictor = StagePredictor::train(&refs).unwrap();
        let gateway = adas_serve::Gateway::new(adas_serve::GatewayConfig::standard());
        let served = predictor.publish(&gateway);
        for (dag, _) in &material {
            let a = predictor.forecast(dag);
            let b = served.forecast(dag);
            for (x, y) in a.duration.iter().zip(&b.duration) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a.output_bytes.iter().zip(&b.output_bytes) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.makespan().to_bits(), b.makespan().to_bits());
        }
        assert!(gateway.stats().requests > 0);
    }

    #[test]
    fn served_forecast_survives_model_outage() {
        use adas_faultsim::ModelFaults;
        let material = training_material();
        let refs: Vec<(&StageDag, &ExecReport)> = material.iter().map(|(d, r)| (d, r)).collect();
        let predictor = StagePredictor::train(&refs).unwrap();
        let mut config = adas_serve::GatewayConfig::standard();
        config.cache_capacity = 0;
        let gateway = adas_serve::Gateway::new(config);
        let served = predictor.publish(&gateway);
        let duration = gateway.resolve(DURATION_MODEL).unwrap();
        // Permanent timeouts: every duration prediction degrades to the
        // training-mean heuristic, and the forecast still comes out finite.
        gateway
            .inject_faults(duration, ModelFaults::new(3, 0.0, 1.0, 1.0))
            .unwrap();
        let f = served.forecast(&material[0].0);
        assert!(f.duration.iter().all(|d| d.is_finite() && *d >= 0.0));
        assert!(f.makespan().is_finite());
        assert!(gateway.stats().fallbacks > 0);
    }

    #[test]
    fn output_bytes_positive() {
        let material = training_material();
        let refs: Vec<(&StageDag, &ExecReport)> = material.iter().map(|(d, r)| (d, r)).collect();
        let predictor = StagePredictor::train(&refs).unwrap();
        let f = predictor.forecast(&material[4].0);
        assert!(f.output_bytes.iter().all(|&b| b >= 0.0));
        assert!(f.output_bytes.iter().sum::<f64>() > 0.0);
    }
}
