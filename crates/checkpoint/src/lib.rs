//! Phoebe: a learning-based checkpoint optimizer (Sec 4.2, \[52\]).
//!
//! "We trained models to estimate the execution time, output size, and
//! start/end time of each stage taking into account of the inter-stage
//! dependency, then applied a linear programming algorithm to introduce
//! checkpoint 'cut(s)' of the query DAG. With this checkpoint optimizer, we
//! were able to free the temporary storage on hotspots by more than 70% and
//! restart failed jobs 68% faster on average with minimal impact on Cosmos
//! performance."
//!
//! The pipeline here mirrors that structure:
//!
//! 1. [`predict::StagePredictor`] — models trained on *historical runs*
//!    (simulated executions) that estimate per-stage duration and output
//!    size from optimizer-visible features only, then propagate start/end
//!    times through the DAG's dependencies.
//! 2. [`cut::plan_checkpoints`] — selects checkpoint cut(s): temporal
//!    frontiers of the DAG placed at the temp-storage residency peak inside
//!    a progress window. (The paper solves an LP balancing freed storage
//!    against write cost; over the discrete candidate frontier set used
//!    here, exhaustive scoring finds the same optimum — see DESIGN.md
//!    substitutions.)
//! 3. [`cut::evaluate`] — replays the DAG on the cluster simulator with and
//!    without the plan, reporting hotspot temp reduction, restart speedup
//!    under failure injection, and the runtime overhead.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cut;
pub mod predict;

pub use cut::{
    evaluate, evaluate_with_obs, plan_checkpoints, plan_checkpoints_with_obs, CheckpointPlan,
    PhoebeConfig, PhoebeReport,
};
pub use predict::{ServedStagePredictor, StageForecast, StagePredictor};
