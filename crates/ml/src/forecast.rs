//! Time-series forecasting: seasonal naive, previous-period heuristic,
//! simple and Holt-Winters exponential smoothing.
//!
//! Seagull found that "a simple heuristic that predicts the load of a server
//! based on that of the previous day was already sufficient to generate 96%
//! accuracy" — the [`SeasonalNaive`] forecaster *is* that heuristic.
//! Moneyball and the proactive provisioning policies use [`HoltWinters`]
//! when trend/level adaptation matters.

use crate::{MlError, Result};
use serde::{Deserialize, Serialize};

/// A fitted forecaster over a univariate, evenly spaced series.
pub trait Forecaster {
    /// Forecast `horizon` steps past the end of the training series.
    fn forecast(&self, horizon: usize) -> Vec<f64>;
}

/// Seasonal-naive: the forecast for step `t` is the observation one season
/// earlier. With `period` equal to one day of samples this is exactly the
/// paper's previous-day heuristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeasonalNaive {
    last_season: Vec<f64>,
}

impl SeasonalNaive {
    /// Fits on `values`, keeping the final `period` observations.
    pub fn fit(values: &[f64], period: usize) -> Result<Self> {
        if period == 0 {
            return Err(MlError::InvalidParameter("period must be >= 1".into()));
        }
        if values.len() < period {
            return Err(MlError::InsufficientData(format!(
                "need at least one full period ({period}), got {} samples",
                values.len()
            )));
        }
        Ok(Self {
            last_season: values[values.len() - period..].to_vec(),
        })
    }
}

impl Forecaster for SeasonalNaive {
    fn forecast(&self, horizon: usize) -> Vec<f64> {
        (0..horizon)
            .map(|h| self.last_season[h % self.last_season.len()])
            .collect()
    }
}

/// Simple exponential smoothing (level only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimpleSmoothing {
    level: f64,
}

impl SimpleSmoothing {
    /// Fits with smoothing factor `alpha` in `(0, 1]`.
    pub fn fit(values: &[f64], alpha: f64) -> Result<Self> {
        if values.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(MlError::InvalidParameter(format!(
                "alpha must be in (0,1], got {alpha}"
            )));
        }
        let mut level = values[0];
        for &v in &values[1..] {
            level = alpha * v + (1.0 - alpha) * level;
        }
        Ok(Self { level })
    }

    /// The smoothed level.
    pub fn level(&self) -> f64 {
        self.level
    }
}

impl Forecaster for SimpleSmoothing {
    fn forecast(&self, horizon: usize) -> Vec<f64> {
        vec![self.level; horizon]
    }
}

/// Additive Holt-Winters: level + trend + seasonal components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoltWinters {
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    period: usize,
}

/// Smoothing factors for [`HoltWinters`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwConfig {
    /// Level smoothing, in `(0, 1)`.
    pub alpha: f64,
    /// Trend smoothing, in `(0, 1)`.
    pub beta: f64,
    /// Seasonal smoothing, in `(0, 1)`.
    pub gamma: f64,
}

impl Default for HwConfig {
    fn default() -> Self {
        Self {
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.2,
        }
    }
}

impl HoltWinters {
    /// Fits on `values` with seasonality `period`; requires at least two
    /// full periods.
    pub fn fit(values: &[f64], period: usize, config: HwConfig) -> Result<Self> {
        for (name, v) in [
            ("alpha", config.alpha),
            ("beta", config.beta),
            ("gamma", config.gamma),
        ] {
            if !(v > 0.0 && v < 1.0) {
                return Err(MlError::InvalidParameter(format!(
                    "{name} must be in (0,1), got {v}"
                )));
            }
        }
        if period < 2 {
            return Err(MlError::InvalidParameter("period must be >= 2".into()));
        }
        if values.len() < 2 * period {
            return Err(MlError::InsufficientData(format!(
                "need >= 2 periods ({}) of data, got {}",
                2 * period,
                values.len()
            )));
        }
        // Initialize level/trend from the first two periods, seasonal from
        // deviations of the first period.
        let first_mean: f64 = values[..period].iter().sum::<f64>() / period as f64;
        let second_mean: f64 = values[period..2 * period].iter().sum::<f64>() / period as f64;
        let mut level = first_mean;
        let mut trend = (second_mean - first_mean) / period as f64;
        let mut seasonal: Vec<f64> = values[..period].iter().map(|v| v - first_mean).collect();

        for (i, &v) in values.iter().enumerate().skip(period) {
            let s_idx = i % period;
            let prev_level = level;
            level = config.alpha * (v - seasonal[s_idx]) + (1.0 - config.alpha) * (level + trend);
            trend = config.beta * (level - prev_level) + (1.0 - config.beta) * trend;
            seasonal[s_idx] = config.gamma * (v - level) + (1.0 - config.gamma) * seasonal[s_idx];
        }
        // Rotate seasonal so index 0 corresponds to the first forecast step.
        let offset = values.len() % period;
        let rotated: Vec<f64> = (0..period)
            .map(|i| seasonal[(offset + i) % period])
            .collect();
        Ok(Self {
            level,
            trend,
            seasonal: rotated,
            period,
        })
    }
}

impl Forecaster for HoltWinters {
    fn forecast(&self, horizon: usize) -> Vec<f64> {
        (0..horizon)
            .map(|h| self.level + (h + 1) as f64 * self.trend + self.seasonal[h % self.period])
            .collect()
    }
}

/// Forecast-accuracy helper used by the experiment harness: fraction of
/// forecasts within `tolerance` (relative) of the actuals, i.e. the
/// "accuracy" metric Seagull and the SKU recommender report.
pub fn within_tolerance_accuracy(actual: &[f64], forecast: &[f64], tolerance: f64) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "series lengths must match");
    if actual.is_empty() {
        return 0.0;
    }
    let hits = actual
        .iter()
        .zip(forecast)
        .filter(|(a, f)| {
            let scale = a.abs().max(1e-9);
            ((*a - *f).abs() / scale) <= tolerance
        })
        .count();
    hits as f64 / actual.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daily(days: usize) -> Vec<f64> {
        (0..days * 24)
            .map(|i| {
                if (8..18).contains(&(i % 24)) {
                    10.0
                } else {
                    2.0
                }
            })
            .collect()
    }

    #[test]
    fn seasonal_naive_repeats_last_period() {
        let values = daily(3);
        let f = SeasonalNaive::fit(&values, 24).unwrap();
        let fc = f.forecast(48);
        assert_eq!(fc.len(), 48);
        assert_eq!(&fc[..24], &values[48..72]);
        assert_eq!(&fc[24..], &values[48..72]);
    }

    #[test]
    fn seasonal_naive_perfect_on_pure_seasonality() {
        let values = daily(4);
        let f = SeasonalNaive::fit(&values[..72], 24).unwrap();
        let acc = within_tolerance_accuracy(&values[72..], &f.forecast(24), 0.01);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn seasonal_naive_validation() {
        assert!(SeasonalNaive::fit(&[1.0], 0).is_err());
        assert!(SeasonalNaive::fit(&[1.0, 2.0], 3).is_err());
    }

    #[test]
    fn simple_smoothing_converges_to_constant() {
        let values = vec![5.0; 50];
        let f = SimpleSmoothing::fit(&values, 0.5).unwrap();
        assert_eq!(f.level(), 5.0);
        assert_eq!(f.forecast(3), vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn simple_smoothing_tracks_level_shift() {
        let mut values = vec![0.0; 20];
        values.extend(vec![10.0; 20]);
        let f = SimpleSmoothing::fit(&values, 0.3).unwrap();
        assert!(f.level() > 9.0);
    }

    #[test]
    fn holt_winters_captures_trend_and_season() {
        // Upward trend + daily seasonality.
        let values: Vec<f64> = (0..24 * 6)
            .map(|i| {
                0.05 * i as f64
                    + if (8..18).contains(&(i % 24)) {
                        10.0
                    } else {
                        2.0
                    }
            })
            .collect();
        let f = HoltWinters::fit(&values, 24, HwConfig::default()).unwrap();
        let fc = f.forecast(24);
        // Forecast for a peak hour should exceed forecast for a trough hour.
        // Training ends at i = 143 (hour 23); forecast step h corresponds to hour h.
        assert!(fc[12] > fc[2] + 4.0, "peak {} vs trough {}", fc[12], fc[2]);
        // Trend continues upward: next-day mean above last-day mean.
        let last_day_mean: f64 = values[24 * 5..].iter().sum::<f64>() / 24.0;
        let fc_mean: f64 = fc.iter().sum::<f64>() / 24.0;
        assert!(fc_mean > last_day_mean);
    }

    #[test]
    fn holt_winters_validation() {
        let values = daily(3);
        assert!(HoltWinters::fit(&values, 1, HwConfig::default()).is_err());
        assert!(HoltWinters::fit(&values[..24], 24, HwConfig::default()).is_err());
        let bad = HwConfig {
            alpha: 0.0,
            ..Default::default()
        };
        assert!(HoltWinters::fit(&values, 24, bad).is_err());
    }

    #[test]
    fn tolerance_accuracy_counts_hits() {
        let actual = [10.0, 10.0, 10.0, 10.0];
        let forecast = [10.5, 12.0, 9.8, 20.0];
        // 5% tolerance: hits at 10.5? |0.5|/10 = 0.05 ≤ 0.05 yes; 12 no; 9.8 yes; 20 no.
        assert_eq!(within_tolerance_accuracy(&actual, &forecast, 0.05), 0.5);
        assert_eq!(within_tolerance_accuracy(&[], &[], 0.1), 0.0);
    }
}
