use std::fmt;

/// Errors produced by the ML substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Training data was empty or otherwise unusable.
    EmptyDataset,
    /// Feature rows had inconsistent lengths.
    RaggedFeatures {
        /// Expected row width (from the first row).
        expected: usize,
        /// Offending row width.
        found: usize,
    },
    /// Number of feature rows and targets differ.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of targets.
        targets: usize,
    },
    /// The normal-equation (or other linear) system was singular.
    SingularMatrix,
    /// A hyper-parameter was out of its valid range.
    InvalidParameter(String),
    /// Not enough data for the requested operation (e.g. k-means with more
    /// clusters than points, forecasting without a full season).
    InsufficientData(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyDataset => write!(f, "training data is empty"),
            Self::RaggedFeatures { expected, found } => {
                write!(
                    f,
                    "feature rows have inconsistent widths: expected {expected}, found {found}"
                )
            }
            Self::LengthMismatch { rows, targets } => {
                write!(f, "{rows} feature rows but {targets} targets")
            }
            Self::SingularMatrix => write!(f, "linear system is singular or ill-conditioned"),
            Self::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Self::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}
