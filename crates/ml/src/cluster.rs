//! K-means clustering with k-means++ seeding.
//!
//! Doppler segments customers by resource-profile similarity so that "new
//! customers benefit from the decisions made by customers with similar
//! characteristics"; this module provides that segmentation primitive.

use crate::{MlError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

impl KMeans {
    /// Fits `k` clusters on `points` with k-means++ initialization and at
    /// most `max_iter` Lloyd iterations. Deterministic for a fixed seed.
    pub fn fit(points: &[Vec<f64>], k: usize, max_iter: usize, seed: u64) -> Result<Self> {
        if points.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if k == 0 || k > points.len() {
            return Err(MlError::InvalidParameter(format!(
                "k must be in 1..={}, got {k}",
                points.len()
            )));
        }
        let width = points[0].len();
        if let Some(bad) = points.iter().find(|p| p.len() != width) {
            return Err(MlError::RaggedFeatures {
                expected: width,
                found: bad.len(),
            });
        }

        let mut rng = StdRng::seed_from_u64(seed);
        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(points[rng.gen_range(0..points.len())].clone());
        while centroids.len() < k {
            let dists: Vec<f64> = points
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| sq_dist(p, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = dists.iter().sum();
            if total <= 0.0 {
                // All remaining points coincide with a centroid; duplicate one.
                centroids.push(centroids[0].clone());
                continue;
            }
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            centroids.push(points[chosen].clone());
        }

        // Lloyd iterations.
        let mut assignment = vec![0usize; points.len()];
        for _ in 0..max_iter {
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let nearest = Self::nearest(&centroids, p);
                if assignment[i] != nearest {
                    assignment[i] = nearest;
                    changed = true;
                }
            }
            let mut sums = vec![vec![0.0; width]; k];
            let mut counts = vec![0usize; k];
            for (p, &a) in points.iter().zip(&assignment) {
                counts[a] += 1;
                for (s, v) in sums[a].iter_mut().zip(p) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for (cv, s) in centroids[c].iter_mut().zip(&sums[c]) {
                        *cv = s / counts[c] as f64;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Ok(Self { centroids })
    }

    fn nearest(centroids: &[Vec<f64>], p: &[f64]) -> usize {
        centroids
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                sq_dist(p, a)
                    .partial_cmp(&sq_dist(p, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .expect("k >= 1")
    }

    /// Index of the cluster whose centroid is closest to `point`.
    pub fn assign(&self, point: &[f64]) -> usize {
        Self::nearest(&self.centroids, point)
    }

    /// The fitted centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Within-cluster sum of squared distances for `points` (inertia).
    pub fn inertia(&self, points: &[Vec<f64>]) -> f64 {
        points
            .iter()
            .map(|p| sq_dist(p, &self.centroids[self.assign(p)]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for center in [[0.0, 0.0], [10.0, 10.0], [0.0, 10.0]] {
            for i in 0..20 {
                let jx = (i % 5) as f64 * 0.1;
                let jy = (i / 5) as f64 * 0.1;
                pts.push(vec![center[0] + jx, center[1] + jy]);
            }
        }
        pts
    }

    #[test]
    fn separates_well_separated_blobs() {
        let pts = three_blobs();
        let km = KMeans::fit(&pts, 3, 50, 7).unwrap();
        // All points in a blob share an assignment; blobs differ.
        let a0 = km.assign(&pts[0]);
        let a1 = km.assign(&pts[20]);
        let a2 = km.assign(&pts[40]);
        assert!(pts[..20].iter().all(|p| km.assign(p) == a0));
        assert!(pts[20..40].iter().all(|p| km.assign(p) == a1));
        assert!(pts[40..].iter().all(|p| km.assign(p) == a2));
        assert_ne!(a0, a1);
        assert_ne!(a1, a2);
        assert_ne!(a0, a2);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let pts = three_blobs();
        let i1 = KMeans::fit(&pts, 1, 50, 7).unwrap().inertia(&pts);
        let i3 = KMeans::fit(&pts, 3, 50, 7).unwrap().inertia(&pts);
        assert!(i3 < i1 * 0.2, "i1={i1}, i3={i3}");
    }

    #[test]
    fn deterministic_for_seed() {
        let pts = three_blobs();
        let a = KMeans::fit(&pts, 3, 50, 7).unwrap();
        let b = KMeans::fit(&pts, 3, 50, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parameter_validation() {
        let pts = three_blobs();
        assert!(KMeans::fit(&[], 1, 10, 0).is_err());
        assert!(KMeans::fit(&pts, 0, 10, 0).is_err());
        assert!(KMeans::fit(&pts, pts.len() + 1, 10, 0).is_err());
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(KMeans::fit(&ragged, 1, 10, 0).is_err());
    }

    #[test]
    fn identical_points_do_not_loop_forever() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let km = KMeans::fit(&pts, 3, 100, 0).unwrap();
        assert_eq!(km.assign(&[1.0, 1.0]), km.assign(&[1.0, 1.0]));
        assert_eq!(km.inertia(&pts), 0.0);
    }
}
