//! K-nearest-neighbour regression and classification.
//!
//! Doppler's "compare new customers to existing segments of Azure customers"
//! is at heart a nearest-neighbour lookup over customer profiles; this
//! module provides the brute-force (exact) primitive.

use crate::dataset::Dataset;
use crate::{Classifier, MlError, Regressor, Result};
use serde::{Deserialize, Serialize};

/// A fitted (memorized) k-NN model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KNearest {
    k: usize,
    points: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl KNearest {
    /// Memorizes the dataset. `k` must be in `1..=len`.
    pub fn fit(data: &Dataset, k: usize) -> Result<Self> {
        if k == 0 || k > data.len() {
            return Err(MlError::InvalidParameter(format!(
                "k must be in 1..={}, got {k}",
                data.len()
            )));
        }
        Ok(Self {
            k,
            points: data.features().to_vec(),
            targets: data.targets().to_vec(),
        })
    }

    /// Indices of the `k` nearest training points to `query` (squared
    /// Euclidean distance, ties broken by index order).
    pub fn neighbors(&self, query: &[f64]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.points.len()).collect();
        let dist = |i: usize| -> f64 {
            self.points[i]
                .iter()
                .zip(query)
                .map(|(a, b)| (a - b).powi(2))
                .sum()
        };
        order.sort_by(|&a, &b| {
            dist(a)
                .partial_cmp(&dist(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order.truncate(self.k);
        order
    }
}

impl Regressor for KNearest {
    /// Mean target over the k nearest neighbours.
    fn predict(&self, features: &[f64]) -> f64 {
        let nn = self.neighbors(features);
        nn.iter().map(|&i| self.targets[i]).sum::<f64>() / nn.len() as f64
    }
}

impl Classifier for KNearest {
    /// Majority label (targets are rounded to `usize`), smallest label wins
    /// ties for determinism.
    fn classify(&self, features: &[f64]) -> usize {
        let nn = self.neighbors(features);
        let mut counts: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for &i in &nn {
            *counts.entry(self.targets[i].round() as usize).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(label, _)| label)
            .expect("k >= 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Dataset {
        // Two clusters of labels: left half 0, right half 1.
        let features: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..10).map(|i| f64::from(i >= 5)).collect();
        Dataset::new(features, targets).unwrap()
    }

    #[test]
    fn regression_averages_neighbors() {
        let data = Dataset::from_xy(&[(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]).unwrap();
        let knn = KNearest::fit(&data, 2).unwrap();
        // Nearest to 0.9 are x=1 (10.0) and x=0 (0.0).
        assert_eq!(knn.predict(&[0.9]), 5.0);
    }

    #[test]
    fn classification_majority() {
        let knn = KNearest::fit(&grid(), 3).unwrap();
        assert_eq!(knn.classify(&[1.0]), 0);
        assert_eq!(knn.classify(&[8.0]), 1);
    }

    #[test]
    fn k_validation() {
        let data = grid();
        assert!(KNearest::fit(&data, 0).is_err());
        assert!(KNearest::fit(&data, 11).is_err());
        assert!(KNearest::fit(&data, 10).is_ok());
    }

    #[test]
    fn neighbors_sorted_by_distance_then_index() {
        let data =
            Dataset::new(vec![vec![0.0], vec![2.0], vec![2.0]], vec![0.0, 1.0, 2.0]).unwrap();
        let knn = KNearest::fit(&data, 3).unwrap();
        // Query at 2.0: the two equidistant points at index 1 and 2 come first.
        assert_eq!(knn.neighbors(&[2.0]), vec![1, 2, 0]);
    }

    #[test]
    fn exact_match_dominates() {
        let knn = KNearest::fit(&grid(), 1).unwrap();
        for i in 0..10 {
            assert_eq!(knn.predict(&[i as f64]), f64::from(i >= 5));
        }
    }
}
