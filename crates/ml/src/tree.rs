//! CART regression trees (variance-reduction splits).
//!
//! Tree models are the second family the paper's Insight 1 endorses for
//! production use. They back the cardinality and cost micromodels in the
//! `learned` crate, where a handful of plan features predict row counts or
//! stage costs.

use crate::dataset::Dataset;
use crate::{MlError, Regressor, Result};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0). Must be >= 1.
    pub max_depth: usize,
    /// Minimum number of samples a leaf may hold. Must be >= 1.
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_samples_leaf: 2,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted CART regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    width: usize,
}

/// Best split found for a node: `(feature, threshold, score_gain)`.
fn best_split(
    data: &Dataset,
    indices: &[usize],
    features: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64)> {
    let total_sum: f64 = indices.iter().map(|&i| data.targets()[i]).sum();
    let total_sq: f64 = indices.iter().map(|&i| data.targets()[i].powi(2)).sum();
    let n = indices.len() as f64;
    let parent_sse = total_sq - total_sum * total_sum / n;

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    let mut order: Vec<usize> = indices.to_vec();
    for &f in features {
        order.sort_by(|&a, &b| {
            data.features()[a][f]
                .partial_cmp(&data.features()[b][f])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Scan split points between consecutive distinct feature values.
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
            let y = data.targets()[i];
            left_sum += y;
            left_sq += y * y;
            let left_n = (k + 1) as f64;
            let right_n = n - left_n;
            if (k + 1) < min_leaf || (order.len() - k - 1) < min_leaf {
                continue;
            }
            let x_here = data.features()[i][f];
            let x_next = data.features()[order[k + 1]][f];
            if x_here == x_next {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / left_n)
                + (right_sq - right_sum * right_sum / right_n);
            if best.map_or(sse < parent_sse - 1e-12, |(_, _, b)| sse < b) {
                best = Some((f, (x_here + x_next) / 2.0, sse));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

fn build(
    data: &Dataset,
    indices: &[usize],
    features: &[usize],
    depth: usize,
    config: TreeConfig,
) -> Node {
    let mean = indices.iter().map(|&i| data.targets()[i]).sum::<f64>() / indices.len() as f64;
    if depth >= config.max_depth || indices.len() < 2 * config.min_samples_leaf {
        return Node::Leaf { value: mean };
    }
    let Some((feature, threshold)) = best_split(data, indices, features, config.min_samples_leaf)
    else {
        return Node::Leaf { value: mean };
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
        .iter()
        .partition(|&&i| data.features()[i][feature] <= threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        return Node::Leaf { value: mean };
    }
    Node::Split {
        feature,
        threshold,
        left: Box::new(build(data, &left_idx, features, depth + 1, config)),
        right: Box::new(build(data, &right_idx, features, depth + 1, config)),
    }
}

impl DecisionTree {
    /// Fits a tree on all rows and all features.
    pub fn fit(data: &Dataset, config: TreeConfig) -> Result<Self> {
        let indices: Vec<usize> = (0..data.len()).collect();
        let features: Vec<usize> = (0..data.width()).collect();
        Self::fit_subset(data, &indices, &features, config)
    }

    /// Fits a tree on a row subset and feature subset — the entry point used
    /// by bagging ensembles.
    pub fn fit_subset(
        data: &Dataset,
        indices: &[usize],
        features: &[usize],
        config: TreeConfig,
    ) -> Result<Self> {
        if indices.is_empty() || features.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if config.max_depth == 0 || config.min_samples_leaf == 0 {
            return Err(MlError::InvalidParameter(
                "max_depth and min_samples_leaf must be >= 1".into(),
            ));
        }
        Ok(Self {
            root: build(data, indices, features, 0, config),
            width: data.width(),
        })
    }

    /// Number of leaves (model-size diagnostic).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn depth_of(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth_of(left).max(depth_of(right)),
            }
        }
        depth_of(&self.root)
    }
}

impl Regressor for DecisionTree {
    fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.width,
            "feature width must match fitted model"
        );
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn step_data() -> Dataset {
        // y = 1 for x < 5, y = 9 for x >= 5.
        let pairs: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64 * 0.5, if i < 10 { 1.0 } else { 9.0 }))
            .collect();
        Dataset::from_xy(&pairs).unwrap()
    }

    #[test]
    fn learns_step_function() {
        let t = DecisionTree::fit(&step_data(), TreeConfig::default()).unwrap();
        assert_eq!(t.predict(&[1.0]), 1.0);
        assert_eq!(t.predict(&[8.0]), 9.0);
    }

    #[test]
    fn depth_limit_respected() {
        let pairs: Vec<(f64, f64)> = (0..64).map(|i| (i as f64, (i % 7) as f64)).collect();
        let data = Dataset::from_xy(&pairs).unwrap();
        let t = DecisionTree::fit(
            &data,
            TreeConfig {
                max_depth: 3,
                min_samples_leaf: 1,
            },
        )
        .unwrap();
        assert!(t.depth() <= 3);
        assert!(t.leaf_count() <= 8);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let data = step_data();
        let t = DecisionTree::fit(
            &data,
            TreeConfig {
                max_depth: 10,
                min_samples_leaf: 10,
            },
        )
        .unwrap();
        // With min leaf 10 on 20 samples only the single perfect split fits.
        assert_eq!(t.leaf_count(), 2);
    }

    #[test]
    fn constant_target_gives_single_leaf() {
        let pairs: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 4.2)).collect();
        let data = Dataset::from_xy(&pairs).unwrap();
        let t = DecisionTree::fit(&data, TreeConfig::default()).unwrap();
        assert_eq!(t.leaf_count(), 1);
        assert!((t.predict(&[3.0]) - 4.2).abs() < 1e-9);
    }

    #[test]
    fn invalid_config_rejected() {
        let data = step_data();
        assert!(DecisionTree::fit(
            &data,
            TreeConfig {
                max_depth: 0,
                min_samples_leaf: 1
            }
        )
        .is_err());
        assert!(DecisionTree::fit(
            &data,
            TreeConfig {
                max_depth: 1,
                min_samples_leaf: 0
            }
        )
        .is_err());
    }

    #[test]
    fn two_dimensional_split() {
        // y depends only on the second feature.
        let features: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 3) as f64, i as f64]).collect();
        let targets: Vec<f64> = (0..30).map(|i| if i < 15 { 0.0 } else { 10.0 }).collect();
        let data = Dataset::new(features, targets).unwrap();
        let t = DecisionTree::fit(&data, TreeConfig::default()).unwrap();
        assert_eq!(t.predict(&[0.0, 3.0]), 0.0);
        assert_eq!(t.predict(&[0.0, 25.0]), 10.0);
    }

    proptest! {
        /// Tree predictions are always within the range of training targets.
        #[test]
        fn prop_predictions_within_target_range(
            targets in proptest::collection::vec(-100.0f64..100.0, 4..40),
            query in -10.0f64..10.0,
        ) {
            let pairs: Vec<(f64, f64)> = targets
                .iter()
                .enumerate()
                .map(|(i, &y)| (i as f64, y))
                .collect();
            let data = Dataset::from_xy(&pairs).unwrap();
            let t = DecisionTree::fit(&data, TreeConfig::default()).unwrap();
            let lo = targets.iter().cloned().fold(f64::MAX, f64::min);
            let hi = targets.iter().cloned().fold(f64::MIN, f64::max);
            let p = t.predict(&[query]);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }
}
