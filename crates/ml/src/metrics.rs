//! Evaluation metrics for regression, classification and cardinality
//! estimation (q-error).

/// Mean absolute error.
pub fn mae(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "lengths must match");
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Root mean squared error.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "lengths must match");
    if actual.is_empty() {
        return 0.0;
    }
    (actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).powi(2))
        .sum::<f64>()
        / actual.len() as f64)
        .sqrt()
}

/// Mean absolute percentage error; zero actuals are skipped. Returns 0 when
/// no valid points exist.
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "lengths must match");
    let mut total = 0.0;
    let mut count = 0usize;
    for (a, p) in actual.iter().zip(predicted) {
        if a.abs() > f64::EPSILON {
            total += ((a - p) / a).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Coefficient of determination R². Returns 0 for constant actuals.
pub fn r_squared(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "lengths must match");
    if actual.is_empty() {
        return 0.0;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean).powi(2)).sum();
    if ss_tot == 0.0 {
        return 0.0;
    }
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).powi(2))
        .sum();
    1.0 - ss_res / ss_tot
}

/// Q-error of one cardinality estimate: `max(actual/est, est/actual)` with
/// both clamped to at least 1 row (the standard convention in the learned
/// cardinality literature the paper cites).
pub fn q_error(actual: f64, estimated: f64) -> f64 {
    let a = actual.max(1.0);
    let e = estimated.max(1.0);
    (a / e).max(e / a)
}

/// Median q-error over paired actual/estimated cardinalities.
pub fn median_q_error(actual: &[f64], estimated: &[f64]) -> f64 {
    assert_eq!(actual.len(), estimated.len(), "lengths must match");
    if actual.is_empty() {
        return 1.0;
    }
    let mut qs: Vec<f64> = actual
        .iter()
        .zip(estimated)
        .map(|(a, e)| q_error(*a, *e))
        .collect();
    qs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = qs.len() / 2;
    if qs.len() % 2 == 1 {
        qs[mid]
    } else {
        (qs[mid - 1] + qs[mid]) / 2.0
    }
}

/// Fraction of label pairs that match.
pub fn accuracy(actual: &[usize], predicted: &[usize]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "lengths must match");
    if actual.is_empty() {
        return 0.0;
    }
    let hits = actual.iter().zip(predicted).filter(|(a, p)| a == p).count();
    hits as f64 / actual.len() as f64
}

/// Precision, recall and F1 for binary labels (positive class = 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryReport {
    /// True-positive precision `tp / (tp + fp)`; 0 when undefined.
    pub precision: f64,
    /// Recall `tp / (tp + fn)`; 0 when undefined.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0 when undefined.
    pub f1: f64,
}

/// Computes a binary classification report; labels must be 0 or 1.
pub fn binary_report(actual: &[usize], predicted: &[usize]) -> BinaryReport {
    assert_eq!(actual.len(), predicted.len(), "lengths must match");
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fn_ = 0.0;
    for (&a, &p) in actual.iter().zip(predicted) {
        match (a, p) {
            (1, 1) => tp += 1.0,
            (0, 1) => fp += 1.0,
            (1, 0) => fn_ += 1.0,
            _ => {}
        }
    }
    let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
    let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    BinaryReport {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn regression_metrics_on_perfect_fit() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mape(&y, &y), 0.0);
        assert_eq!(r_squared(&y, &y), 1.0);
    }

    #[test]
    fn regression_metrics_known_values() {
        let a = [0.0, 0.0];
        let p = [3.0, 4.0];
        assert_eq!(mae(&a, &p), 3.5);
        assert_eq!(rmse(&a, &p), (12.5f64).sqrt());
        // MAPE skips zero actuals entirely.
        assert_eq!(mape(&a, &p), 0.0);
    }

    #[test]
    fn r_squared_zero_for_constant_actual() {
        assert_eq!(r_squared(&[2.0, 2.0], &[1.0, 3.0]), 0.0);
    }

    #[test]
    fn q_error_symmetry_and_floor() {
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(0.0, 0.5), 1.0); // clamped to 1 row each
        assert_eq!(q_error(5.0, 5.0), 1.0);
    }

    #[test]
    fn median_q_error_odd_even() {
        assert_eq!(
            median_q_error(&[10.0, 10.0, 10.0], &[10.0, 20.0, 40.0]),
            2.0
        );
        assert_eq!(median_q_error(&[10.0, 10.0], &[20.0, 40.0]), 3.0);
        assert_eq!(median_q_error(&[], &[]), 1.0);
    }

    #[test]
    fn classification_metrics() {
        let actual = [1, 1, 0, 0, 1];
        let pred = [1, 0, 0, 1, 1];
        assert_eq!(accuracy(&actual, &pred), 0.6);
        let report = binary_report(&actual, &pred);
        assert!((report.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((report.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((report.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn binary_report_degenerate() {
        let r = binary_report(&[0, 0], &[0, 0]);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.f1, 0.0);
    }

    proptest! {
        /// Q-error is always >= 1 and symmetric.
        #[test]
        fn prop_q_error(a in 0.0f64..1e9, e in 0.0f64..1e9) {
            let q = q_error(a, e);
            prop_assert!(q >= 1.0);
            prop_assert!((q - q_error(e, a)).abs() < 1e-9 * q);
        }

        /// RMSE >= MAE (power-mean inequality).
        #[test]
        fn prop_rmse_dominates_mae(
            pairs in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 1..50)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let p: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            prop_assert!(rmse(&a, &p) >= mae(&a, &p) - 1e-9);
        }

        /// Accuracy is in \[0, 1\].
        #[test]
        fn prop_accuracy_bounds(labels in proptest::collection::vec((0usize..5, 0usize..5), 1..100)) {
            let a: Vec<usize> = labels.iter().map(|l| l.0).collect();
            let p: Vec<usize> = labels.iter().map(|l| l.1).collect();
            let acc = accuracy(&a, &p);
            prop_assert!((0.0..=1.0).contains(&acc));
        }
    }
}
