//! Binary logistic regression trained by batch gradient descent.
//!
//! Used where the paper's systems need calibrated probabilities for a binary
//! decision — e.g. the steering validation model's "will this hint regress
//! the plan?" gate and Moneyball's pause/no-pause decisions.

use crate::dataset::Dataset;
use crate::linalg::dot;
use crate::{Classifier, MlError, Result};
use serde::{Deserialize, Serialize};

/// Training configuration for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticConfig {
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of full-batch iterations.
    pub iterations: usize,
    /// L2 regularization strength (0 disables).
    pub l2: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            iterations: 500,
            l2: 1e-4,
        }
    }
}

/// A fitted binary logistic regression; targets must be `0.0` or `1.0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Fits the model. Targets outside `{0, 1}` are rejected.
    pub fn fit(data: &Dataset, config: LogisticConfig) -> Result<Self> {
        if config.learning_rate <= 0.0 || config.iterations == 0 {
            return Err(MlError::InvalidParameter(
                "learning_rate must be > 0 and iterations > 0".into(),
            ));
        }
        if data.targets().iter().any(|&t| t != 0.0 && t != 1.0) {
            return Err(MlError::InvalidParameter(
                "logistic regression targets must be 0.0 or 1.0".into(),
            ));
        }
        let n = data.len() as f64;
        let width = data.width();
        let mut weights = vec![0.0; width];
        let mut bias = 0.0;
        for _ in 0..config.iterations {
            let mut grad_w = vec![0.0; width];
            let mut grad_b = 0.0;
            for (row, &target) in data.features().iter().zip(data.targets()) {
                let err = sigmoid(bias + dot(&weights, row)) - target;
                for (g, x) in grad_w.iter_mut().zip(row) {
                    *g += err * x;
                }
                grad_b += err;
            }
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= config.learning_rate * (g / n + config.l2 * *w);
            }
            bias -= config.learning_rate * grad_b / n;
        }
        Ok(Self { weights, bias })
    }

    /// Probability that the label is 1.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature width must match fitted model"
        );
        sigmoid(self.bias + dot(&self.weights, features))
    }

    /// Fitted weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Classifier for LogisticRegression {
    fn classify(&self, features: &[f64]) -> usize {
        usize::from(self.predict_proba(features) >= 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Dataset {
        // Class 1 iff x > 2.
        let features: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.25]).collect();
        let targets: Vec<f64> = features.iter().map(|r| f64::from(r[0] > 2.0)).collect();
        Dataset::new(features, targets).unwrap()
    }

    #[test]
    fn learns_separable_threshold() {
        let m = LogisticRegression::fit(&separable(), LogisticConfig::default()).unwrap();
        assert_eq!(m.classify(&[0.5]), 0);
        assert_eq!(m.classify(&[4.0]), 1);
        assert!(m.predict_proba(&[4.5]) > 0.8);
        assert!(m.predict_proba(&[0.0]) < 0.2);
    }

    #[test]
    fn probabilities_monotone_in_feature() {
        let m = LogisticRegression::fit(&separable(), LogisticConfig::default()).unwrap();
        let ps: Vec<f64> = (0..10)
            .map(|i| m.predict_proba(&[i as f64 * 0.5]))
            .collect();
        assert!(ps.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn rejects_bad_targets_and_params() {
        let bad = Dataset::from_xy(&[(0.0, 2.0), (1.0, 0.0)]).unwrap();
        assert!(LogisticRegression::fit(&bad, LogisticConfig::default()).is_err());
        let good = separable();
        let cfg = LogisticConfig {
            learning_rate: 0.0,
            ..Default::default()
        };
        assert!(LogisticRegression::fit(&good, cfg).is_err());
        let cfg = LogisticConfig {
            iterations: 0,
            ..Default::default()
        };
        assert!(LogisticRegression::fit(&good, cfg).is_err());
    }

    #[test]
    fn two_feature_decision_boundary() {
        // Class 1 iff a + b > 3.
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                features.push(vec![a as f64, b as f64]);
                targets.push(f64::from(a + b > 3));
            }
        }
        let data = Dataset::new(features, targets).unwrap();
        let cfg = LogisticConfig {
            iterations: 2000,
            ..Default::default()
        };
        let m = LogisticRegression::fit(&data, cfg).unwrap();
        assert_eq!(m.classify(&[0.0, 0.0]), 0);
        assert_eq!(m.classify(&[4.0, 4.0]), 1);
    }
}
