//! Random-forest regression (bagged CART trees with feature subsampling).

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use crate::{MlError, Regressor, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees. Must be >= 1.
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Fraction of features each tree sees, in `(0, 1]`.
    pub feature_fraction: f64,
    /// Seed for bootstrap and feature sampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 30,
            tree: TreeConfig::default(),
            feature_fraction: 0.7,
            seed: 0,
        }
    }
}

/// A fitted random-forest regressor (mean of tree predictions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits the forest with bootstrap row sampling and per-tree feature
    /// subsampling.
    pub fn fit(data: &Dataset, config: ForestConfig) -> Result<Self> {
        if config.n_trees == 0 {
            return Err(MlError::InvalidParameter("n_trees must be >= 1".into()));
        }
        if !(config.feature_fraction > 0.0 && config.feature_fraction <= 1.0) {
            return Err(MlError::InvalidParameter(format!(
                "feature_fraction must be in (0,1], got {}",
                config.feature_fraction
            )));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = data.len();
        let width = data.width();
        let n_features = ((width as f64 * config.feature_fraction).ceil() as usize).clamp(1, width);
        let mut trees = Vec::with_capacity(config.n_trees);
        let all_features: Vec<usize> = (0..width).collect();
        for _ in 0..config.n_trees {
            let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let mut features = all_features.clone();
            features.shuffle(&mut rng);
            features.truncate(n_features);
            features.sort_unstable();
            trees.push(DecisionTree::fit_subset(
                data,
                &indices,
                &features,
                config.tree,
            )?);
        }
        Ok(Self { trees })
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Standard deviation of the individual tree predictions — a cheap
    /// uncertainty signal used by the micromodel pruning logic.
    pub fn prediction_std(&self, features: &[f64]) -> f64 {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(features)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        (preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64).sqrt()
    }
}

impl Regressor for RandomForest {
    fn predict(&self, features: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(features)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_quadratic() -> Dataset {
        let pairs: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64 * 0.1;
                // Deterministic "noise" from a hash-like formula.
                let noise = (((i * 2654435761u64) % 100) as f64 - 50.0) * 0.01;
                (x, x * x + noise)
            })
            .collect();
        Dataset::from_xy(&pairs).unwrap()
    }

    #[test]
    fn fits_nonlinear_function() {
        let data = noisy_quadratic();
        let forest = RandomForest::fit(&data, ForestConfig::default()).unwrap();
        assert!((forest.predict(&[5.0]) - 25.0).abs() < 3.0);
        assert!((forest.predict(&[2.0]) - 4.0).abs() < 2.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = noisy_quadratic();
        let a = RandomForest::fit(&data, ForestConfig::default()).unwrap();
        let b = RandomForest::fit(&data, ForestConfig::default()).unwrap();
        assert_eq!(a.predict(&[3.3]), b.predict(&[3.3]));
        let c = RandomForest::fit(
            &data,
            ForestConfig {
                seed: 99,
                ..Default::default()
            },
        )
        .unwrap();
        // Different seed almost surely differs somewhere.
        assert_ne!(a, c);
    }

    #[test]
    fn config_validation() {
        let data = noisy_quadratic();
        assert!(RandomForest::fit(
            &data,
            ForestConfig {
                n_trees: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(RandomForest::fit(
            &data,
            ForestConfig {
                feature_fraction: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(RandomForest::fit(
            &data,
            ForestConfig {
                feature_fraction: 1.5,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn ensemble_variance_positive_on_noise() {
        let data = noisy_quadratic();
        let forest = RandomForest::fit(&data, ForestConfig::default()).unwrap();
        assert_eq!(forest.n_trees(), 30);
        assert!(forest.prediction_std(&[5.0]) >= 0.0);
    }
}
