//! Minimal dense linear algebra: just enough to solve the small normal
//! equation systems produced by [`linear`](crate::linear) and
//! [`bandit`](crate::bandit).
//!
//! Matrices are row-major `Vec<f64>` with explicit dimensions; systems here
//! have at most a few dozen unknowns, so an `O(n^3)` Gaussian elimination
//! with partial pivoting is the right tool (see the perf-book guidance on
//! not reaching for heavyweight dependencies when n is tiny).

use crate::{MlError, Result};

/// A dense, row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from rows; all rows must share one width.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let Some(first) = rows.first() else {
            return Err(MlError::EmptyDataset);
        };
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(MlError::RaggedFeatures {
                    expected: cols,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `self^T * self` (Gram matrix), the core of the normal equations.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for i in 0..self.cols {
                // Exploit symmetry: fill upper triangle then mirror.
                for j in i..self.cols {
                    out[(i, j)] += row[i] * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }

    /// `self^T * v` for a vector with one entry per row.
    pub fn transpose_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length must equal row count");
        let mut out = vec![0.0; self.cols];
        for (row, &scale) in self.data.chunks_exact(self.cols).zip(v) {
            for (o, x) in out.iter_mut().zip(row) {
                *o += x * scale;
            }
        }
        out
    }

    /// Adds `lambda` to each diagonal entry (ridge regularization).
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Solves the square system `a * x = b` in place via Gaussian elimination
/// with partial pivoting.
///
/// Returns [`MlError::SingularMatrix`] when a pivot collapses below
/// `1e-12`.
pub fn solve(mut a: Matrix, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = a.nrows();
    if a.ncols() != n || b.len() != n {
        return Err(MlError::InvalidParameter(format!(
            "solve requires square system, got {}x{} with rhs {}",
            a.nrows(),
            a.ncols(),
            b.len()
        )));
    }
    for col in 0..n {
        // Partial pivot: largest |value| in this column at or below the diagonal.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[(i, col)]
                    .abs()
                    .partial_cmp(&a[(j, col)].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if a[(pivot_row, col)].abs() < 1e-12 {
            return Err(MlError::SingularMatrix);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = a[(col, c)];
                a[(col, c)] = a[(pivot_row, c)];
                a[(pivot_row, c)] = tmp;
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[(col, col)];
        for row in col + 1..n {
            let factor = a[(row, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = a[(col, c)];
                a[(row, c)] -= factor * v;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in row + 1..n {
            acc -= a[(row, c)] * x[c];
        }
        x[row] = acc / a[(row, row)];
    }
    Ok(x)
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(3);
        let x = solve(a, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(
            solve(a, vec![1.0, 2.0]).unwrap_err(),
            MlError::SingularMatrix
        );
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            solve(a, vec![0.0, 0.0]),
            Err(MlError::InvalidParameter(_))
        ));
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = m.gram();
        assert_eq!(g[(0, 1)], g[(1, 0)]);
        assert_eq!(g[(0, 0)], 1.0 + 9.0 + 25.0);
        assert_eq!(g[(1, 1)], 4.0 + 16.0 + 36.0);
        assert_eq!(g[(0, 1)], 2.0 + 12.0 + 30.0);
    }

    #[test]
    fn transpose_mul_vec_matches_manual() {
        let m = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap();
        assert_eq!(m.transpose_mul_vec(&[3.0, 4.0]), vec![3.0, 8.0]);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(matches!(
            Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(MlError::RaggedFeatures {
                expected: 1,
                found: 2
            })
        ));
    }

    #[test]
    fn add_diagonal_ridge() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diagonal(0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], 0.0);
    }
}
