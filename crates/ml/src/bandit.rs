//! Contextual bandits: epsilon-greedy and LinUCB.
//!
//! The paper's query-optimizer steering work ("minimizing pre-production
//! experimentation costs using a contextual bandit model") selects rule-hint
//! configurations with a bandit; these are the two policies the `learned`
//! crate builds on.

use crate::linalg::{dot, solve, Matrix};
use crate::{MlError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bandit policy over a fixed set of arms with contextual features.
pub trait BanditPolicy {
    /// Chooses an arm for the given context.
    fn choose(&mut self, context: &[f64]) -> usize;

    /// Records the observed reward for an arm played in a context.
    fn update(&mut self, arm: usize, context: &[f64], reward: f64);

    /// Number of arms.
    fn n_arms(&self) -> usize;
}

/// Epsilon-greedy over per-arm mean rewards (context ignored for the value
/// estimate; kept for API symmetry).
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    epsilon: f64,
    counts: Vec<u64>,
    sums: Vec<f64>,
    rng: StdRng,
}

impl EpsilonGreedy {
    /// Creates a policy over `n_arms` arms with exploration rate
    /// `epsilon` in `[0, 1]`.
    pub fn new(n_arms: usize, epsilon: f64, seed: u64) -> Result<Self> {
        if n_arms == 0 {
            return Err(MlError::InvalidParameter("n_arms must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&epsilon) {
            return Err(MlError::InvalidParameter(format!(
                "epsilon must be in [0,1], got {epsilon}"
            )));
        }
        Ok(Self {
            epsilon,
            counts: vec![0; n_arms],
            sums: vec![0.0; n_arms],
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Mean observed reward of an arm (0 before any observation).
    pub fn mean_reward(&self, arm: usize) -> f64 {
        if self.counts[arm] == 0 {
            0.0
        } else {
            self.sums[arm] / self.counts[arm] as f64
        }
    }

    /// Total number of updates recorded.
    pub fn total_plays(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl BanditPolicy for EpsilonGreedy {
    fn choose(&mut self, _context: &[f64]) -> usize {
        // Play each arm once first, then explore with probability epsilon.
        if let Some(unplayed) = self.counts.iter().position(|&c| c == 0) {
            return unplayed;
        }
        if self.rng.gen::<f64>() < self.epsilon {
            return self.rng.gen_range(0..self.counts.len());
        }
        (0..self.counts.len())
            .max_by(|&a, &b| {
                self.mean_reward(a)
                    .partial_cmp(&self.mean_reward(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("n_arms >= 1")
    }

    fn update(&mut self, arm: usize, _context: &[f64], reward: f64) {
        self.counts[arm] += 1;
        self.sums[arm] += reward;
    }

    fn n_arms(&self) -> usize {
        self.counts.len()
    }
}

/// LinUCB: per-arm ridge regression with an upper-confidence exploration
/// bonus (Li et al., WWW 2010).
#[derive(Debug, Clone)]
pub struct LinUcb {
    alpha: f64,
    dim: usize,
    /// Per-arm Gram matrix `A = I + Σ x xᵀ`.
    a: Vec<Matrix>,
    /// Per-arm reward-weighted feature sum `b = Σ r x`.
    b: Vec<Vec<f64>>,
}

impl LinUcb {
    /// Creates a LinUCB policy over `n_arms` arms with `dim`-dimensional
    /// contexts and exploration weight `alpha >= 0`.
    pub fn new(n_arms: usize, dim: usize, alpha: f64) -> Result<Self> {
        if n_arms == 0 || dim == 0 {
            return Err(MlError::InvalidParameter(
                "n_arms and dim must be >= 1".into(),
            ));
        }
        if alpha < 0.0 {
            return Err(MlError::InvalidParameter(format!(
                "alpha must be >= 0, got {alpha}"
            )));
        }
        Ok(Self {
            alpha,
            dim,
            a: (0..n_arms).map(|_| Matrix::identity(dim)).collect(),
            b: vec![vec![0.0; dim]; n_arms],
        })
    }

    /// The UCB score of one arm for a context.
    pub fn score(&self, arm: usize, context: &[f64]) -> f64 {
        assert_eq!(
            context.len(),
            self.dim,
            "context width must match policy dim"
        );
        let theta = solve(self.a[arm].clone(), self.b[arm].clone())
            .expect("A is positive definite by construction");
        let z = solve(self.a[arm].clone(), context.to_vec())
            .expect("A is positive definite by construction");
        dot(&theta, context) + self.alpha * dot(context, &z).max(0.0).sqrt()
    }
}

impl BanditPolicy for LinUcb {
    fn choose(&mut self, context: &[f64]) -> usize {
        (0..self.a.len())
            .max_by(|&x, &y| {
                self.score(x, context)
                    .partial_cmp(&self.score(y, context))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("n_arms >= 1")
    }

    fn update(&mut self, arm: usize, context: &[f64], reward: f64) {
        assert_eq!(
            context.len(),
            self.dim,
            "context width must match policy dim"
        );
        for i in 0..self.dim {
            for j in 0..self.dim {
                self.a[arm][(i, j)] += context[i] * context[j];
            }
            self.b[arm][i] += reward * context[i];
        }
    }

    fn n_arms(&self) -> usize {
        self.a.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulated environment: arm 1 is best in context A, arm 0 in context B.
    fn contextual_reward(arm: usize, context: &[f64]) -> f64 {
        match (arm, context[0] > 0.5) {
            (1, true) | (0, false) => 1.0,
            _ => 0.0,
        }
    }

    #[test]
    fn epsilon_greedy_finds_best_fixed_arm() {
        let mut policy = EpsilonGreedy::new(3, 0.1, 42).unwrap();
        // Arm 2 pays 1.0, others 0.1.
        for _ in 0..500 {
            let arm = policy.choose(&[]);
            let reward = if arm == 2 { 1.0 } else { 0.1 };
            policy.update(arm, &[], reward);
        }
        assert!(policy.mean_reward(2) > 0.9);
        // After convergence the greedy pick is arm 2.
        let greedy = (0..3).max_by(|&a, &b| {
            policy
                .mean_reward(a)
                .partial_cmp(&policy.mean_reward(b))
                .unwrap()
        });
        assert_eq!(greedy, Some(2));
        assert_eq!(policy.total_plays(), 500);
    }

    #[test]
    fn epsilon_greedy_plays_all_arms_first() {
        let mut policy = EpsilonGreedy::new(4, 0.0, 0).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let arm = policy.choose(&[]);
            seen.insert(arm);
            policy.update(arm, &[], 0.0);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn linucb_learns_context_dependent_best_arm() {
        let mut policy = LinUcb::new(2, 2, 0.5).unwrap();
        let contexts = [[1.0, 1.0], [0.0, 1.0]]; // first fires "true", second "false"
        for t in 0..400 {
            let ctx = contexts[t % 2];
            let arm = policy.choose(&ctx);
            policy.update(arm, &ctx, contextual_reward(arm, &ctx));
        }
        // With exploration damped, the learned scores should prefer the
        // context-appropriate arm.
        let mut damped = policy.clone();
        damped.alpha = 0.0;
        assert_eq!(damped.choose(&[1.0, 1.0]), 1);
        assert_eq!(damped.choose(&[0.0, 1.0]), 0);
    }

    #[test]
    fn linucb_exploration_bonus_shrinks() {
        let mut policy = LinUcb::new(1, 2, 1.0).unwrap();
        let ctx = [1.0, 0.0];
        let before = policy.score(0, &ctx);
        for _ in 0..50 {
            policy.update(0, &ctx, 0.0);
        }
        let after = policy.score(0, &ctx);
        assert!(after < before, "bonus should shrink: {before} -> {after}");
    }

    #[test]
    fn parameter_validation() {
        assert!(EpsilonGreedy::new(0, 0.1, 0).is_err());
        assert!(EpsilonGreedy::new(2, 1.5, 0).is_err());
        assert!(LinUcb::new(0, 2, 0.5).is_err());
        assert!(LinUcb::new(2, 0, 0.5).is_err());
        assert!(LinUcb::new(2, 2, -0.1).is_err());
    }
}
