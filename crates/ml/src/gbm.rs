//! Gradient-boosted regression trees (squared loss).
//!
//! The learned cost models of the paper's query-engine layer (Siddiqui et
//! al.) use boosted trees; this is the equivalent implementation: shallow
//! CART trees fit to residuals with shrinkage.

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use crate::{MlError, Regressor, Result};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`GradientBoosting`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbmConfig {
    /// Number of boosting rounds. Must be >= 1.
    pub n_rounds: usize,
    /// Shrinkage applied to each tree's contribution, in `(0, 1]`.
    pub learning_rate: f64,
    /// Configuration of the weak learners (depth 3 by default).
    pub tree: TreeConfig,
}

impl Default for GbmConfig {
    fn default() -> Self {
        Self {
            n_rounds: 50,
            learning_rate: 0.2,
            tree: TreeConfig {
                max_depth: 3,
                min_samples_leaf: 2,
            },
        }
    }
}

/// A fitted gradient-boosting regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoosting {
    base: f64,
    learning_rate: f64,
    trees: Vec<DecisionTree>,
}

impl GradientBoosting {
    /// Fits by iteratively regressing trees onto the current residuals.
    pub fn fit(data: &Dataset, config: GbmConfig) -> Result<Self> {
        if config.n_rounds == 0 {
            return Err(MlError::InvalidParameter("n_rounds must be >= 1".into()));
        }
        if !(config.learning_rate > 0.0 && config.learning_rate <= 1.0) {
            return Err(MlError::InvalidParameter(format!(
                "learning_rate must be in (0,1], got {}",
                config.learning_rate
            )));
        }
        let base = data.targets().iter().sum::<f64>() / data.len() as f64;
        let mut predictions = vec![base; data.len()];
        let mut trees = Vec::with_capacity(config.n_rounds);
        for _ in 0..config.n_rounds {
            let residuals: Vec<f64> = data
                .targets()
                .iter()
                .zip(&predictions)
                .map(|(y, p)| y - p)
                .collect();
            let stage = Dataset::new(data.features().to_vec(), residuals)?;
            let tree = DecisionTree::fit(&stage, config.tree)?;
            for (p, row) in predictions.iter_mut().zip(data.features()) {
                *p += config.learning_rate * tree.predict(row);
            }
            trees.push(tree);
        }
        Ok(Self {
            base,
            learning_rate: config.learning_rate,
            trees,
        })
    }

    /// Number of boosting rounds fitted.
    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }

    /// Training loss (MSE) trajectory helper: prediction after only the
    /// first `k` rounds.
    pub fn predict_truncated(&self, features: &[f64], k: usize) -> f64 {
        self.base
            + self
                .trees
                .iter()
                .take(k)
                .map(|t| self.learning_rate * t.predict(features))
                .sum::<f64>()
    }
}

impl Regressor for GradientBoosting {
    fn predict(&self, features: &[f64]) -> f64 {
        self.predict_truncated(features, self.trees.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    fn sine_data() -> Dataset {
        let pairs: Vec<(f64, f64)> = (0..200)
            .map(|i| (i as f64 * 0.05, (i as f64 * 0.05).sin() * 10.0))
            .collect();
        Dataset::from_xy(&pairs).unwrap()
    }

    #[test]
    fn fits_smooth_nonlinearity() {
        let data = sine_data();
        let model = GradientBoosting::fit(&data, GbmConfig::default()).unwrap();
        let preds = model.predict_batch(data.features());
        assert!(rmse(data.targets(), &preds) < 1.0);
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let data = sine_data();
        let model = GradientBoosting::fit(&data, GbmConfig::default()).unwrap();
        let err_at = |k: usize| {
            let preds: Vec<f64> = data
                .features()
                .iter()
                .map(|r| model.predict_truncated(r, k))
                .collect();
            rmse(data.targets(), &preds)
        };
        assert!(err_at(50) < err_at(10));
        assert!(err_at(10) < err_at(1));
    }

    #[test]
    fn config_validation() {
        let data = sine_data();
        assert!(GradientBoosting::fit(
            &data,
            GbmConfig {
                n_rounds: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(GradientBoosting::fit(
            &data,
            GbmConfig {
                learning_rate: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(GradientBoosting::fit(
            &data,
            GbmConfig {
                learning_rate: 1.5,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn constant_target_is_exact() {
        let pairs: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 7.0)).collect();
        let data = Dataset::from_xy(&pairs).unwrap();
        let model = GradientBoosting::fit(&data, GbmConfig::default()).unwrap();
        assert!((model.predict(&[4.0]) - 7.0).abs() < 1e-9);
        assert_eq!(model.n_rounds(), 50);
    }
}
