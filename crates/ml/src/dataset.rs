//! Feature matrices, deterministic splits and scaling.

use crate::{MlError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A supervised dataset: feature rows plus one real-valued target per row.
///
/// Classification tasks encode the label as `f64` (e.g. `0.0` / `1.0`);
/// the tree and logistic models document their own conventions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset, validating shape consistency.
    pub fn new(features: Vec<Vec<f64>>, targets: Vec<f64>) -> Result<Self> {
        if features.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if features.len() != targets.len() {
            return Err(MlError::LengthMismatch {
                rows: features.len(),
                targets: targets.len(),
            });
        }
        let width = features[0].len();
        for row in &features {
            if row.len() != width {
                return Err(MlError::RaggedFeatures {
                    expected: width,
                    found: row.len(),
                });
            }
        }
        Ok(Self { features, targets })
    }

    /// Builds a single-feature dataset from `(x, y)` pairs.
    pub fn from_xy(pairs: &[(f64, f64)]) -> Result<Self> {
        let features = pairs.iter().map(|&(x, _)| vec![x]).collect();
        let targets = pairs.iter().map(|&(_, y)| y).collect();
        Self::new(features, targets)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the dataset has no rows (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features per row.
    pub fn width(&self) -> usize {
        self.features[0].len()
    }

    /// Borrow the feature rows.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Borrow the targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// One row and its target.
    pub fn row(&self, i: usize) -> (&[f64], f64) {
        (&self.features[i], self.targets[i])
    }

    /// Sub-dataset selected by row indices (rows may repeat — used by
    /// bootstrap sampling).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let features = indices.iter().map(|&i| self.features[i].clone()).collect();
        let targets = indices.iter().map(|&i| self.targets[i]).collect();
        Dataset { features, targets }
    }

    /// Deterministic shuffled train/test split. `train_fraction` must lie in
    /// `(0, 1)`; both sides are guaranteed non-empty.
    pub fn split(&self, train_fraction: f64, seed: u64) -> Result<(Dataset, Dataset)> {
        if !(train_fraction > 0.0 && train_fraction < 1.0) {
            return Err(MlError::InvalidParameter(format!(
                "train_fraction must be in (0,1), got {train_fraction}"
            )));
        }
        if self.len() < 2 {
            return Err(MlError::InsufficientData(
                "need at least 2 rows to split".into(),
            ));
        }
        let mut indices: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let cut = ((self.len() as f64 * train_fraction).round() as usize).clamp(1, self.len() - 1);
        Ok((self.select(&indices[..cut]), self.select(&indices[cut..])))
    }
}

/// Per-feature standardization (`(x - mean) / std`), fit on training data
/// and applied to any compatible rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler to the feature columns of `data`. Constant columns
    /// get a std of 1 so they pass through centred at zero.
    pub fn fit(data: &Dataset) -> Self {
        let width = data.width();
        let n = data.len() as f64;
        let mut means = vec![0.0; width];
        for row in data.features() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; width];
        for row in data.features() {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Self { means, stds }
    }

    /// Transforms one row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Transforms an entire dataset, preserving the targets.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        Dataset {
            features: data
                .features()
                .iter()
                .map(|r| self.transform_row(r))
                .collect(),
            targets: data.targets().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            (0..10).map(|i| vec![i as f64, (i * i) as f64]).collect(),
            (0..10).map(|i| i as f64).collect(),
        )
        .unwrap()
    }

    #[test]
    fn shape_validation() {
        assert_eq!(
            Dataset::new(vec![], vec![]).unwrap_err(),
            MlError::EmptyDataset
        );
        assert!(matches!(
            Dataset::new(vec![vec![1.0]], vec![1.0, 2.0]),
            Err(MlError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![1.0, 2.0]),
            Err(MlError::RaggedFeatures { .. })
        ));
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let d = toy();
        let (tr1, te1) = d.split(0.7, 42).unwrap();
        let (tr2, te2) = d.split(0.7, 42).unwrap();
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.len() + te1.len(), d.len());
        assert_eq!(tr1.len(), 7);
        // Different seed, different shuffle (with overwhelming probability).
        let (tr3, _) = d.split(0.7, 43).unwrap();
        assert_ne!(tr1, tr3);
    }

    #[test]
    fn split_bounds() {
        let d = toy();
        assert!(d.split(0.0, 1).is_err());
        assert!(d.split(1.0, 1).is_err());
        // Extreme fractions still leave both sides non-empty.
        let (tr, te) = d.split(0.999, 1).unwrap();
        assert!(!tr.is_empty() && !te.is_empty());
    }

    #[test]
    fn select_with_repeats() {
        let d = toy();
        let s = d.select(&[0, 0, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.targets(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn scaler_standardizes() {
        let d = Dataset::new(vec![vec![1.0, 5.0], vec![3.0, 5.0]], vec![0.0, 1.0]).unwrap();
        let scaler = StandardScaler::fit(&d);
        let t = scaler.transform(&d);
        // First column: mean 2, std 1 → values -1, 1.
        assert_eq!(t.features()[0][0], -1.0);
        assert_eq!(t.features()[1][0], 1.0);
        // Constant column passes through centred.
        assert_eq!(t.features()[0][1], 0.0);
        assert_eq!(t.targets(), d.targets());
    }

    #[test]
    fn from_xy_builds_single_feature() {
        let d = Dataset::from_xy(&[(1.0, 2.0), (3.0, 4.0)]).unwrap();
        assert_eq!(d.width(), 1);
        assert_eq!(d.row(1), (&[3.0][..], 4.0));
    }
}
