//! From-scratch machine-learning substrate for the autonomous data services
//! reproduction.
//!
//! The paper's Insight 1 ("Simplicity rules") observes that in production,
//! "simple heuristics tend to overrule ML and simple ML models, like linear
//! models and tree-based models, tend to overrule complex deep learning
//! models". This crate therefore implements exactly that family, natively in
//! Rust with no external ML dependencies:
//!
//! * [`linear`] — ordinary least squares and ridge regression (the Fig 1
//!   machine-behaviour models, KEA, AutoToken).
//! * [`logistic`] — logistic regression for binary decisions.
//! * [`tree`], [`forest`], [`gbm`] — CART decision trees, random forests and
//!   gradient-boosted trees (cardinality/cost micromodels).
//! * [`cluster`] — k-means with k-means++ seeding (Doppler's customer
//!   segmentation).
//! * [`knn`] — k-nearest-neighbour regression/classification.
//! * [`bandit`] — epsilon-greedy and LinUCB contextual bandits (query
//!   optimizer steering).
//! * [`forecast`] — seasonal-naive, previous-period heuristic, simple and
//!   Holt-Winters exponential smoothing (Seagull, Moneyball, proactive
//!   provisioning).
//! * [`metrics`] — MAE/RMSE/MAPE, q-error, R², classification metrics.
//! * [`dataset`] — feature matrices, deterministic train/test splits,
//!   standard scaling.
//! * [`bundle`] — versioned portable model containers (the paper's
//!   Direction 2: standard model representations for cross-system reuse).
//!
//! Everything is deterministic: all stochastic components take an explicit
//! seed.
//!
//! # Example: fitting the Fig 1-style linear model
//!
//! ```
//! use adas_ml::dataset::Dataset;
//! use adas_ml::linear::LinearRegression;
//! use adas_ml::Regressor;
//!
//! // CPU utilization as a function of running containers.
//! let xs: Vec<Vec<f64>> = (0..20).map(|c| vec![c as f64]).collect();
//! let ys: Vec<f64> = (0..20).map(|c| 0.05 + 0.03 * c as f64).collect();
//! let data = Dataset::new(xs, ys).unwrap();
//! let model = LinearRegression::fit(&data).unwrap();
//! assert!((model.predict(&[10.0]) - 0.35).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bandit;
pub mod bundle;
pub mod cluster;
pub mod dataset;
mod error;
pub mod forecast;
pub mod forest;
pub mod gbm;
pub mod knn;
pub mod linalg;
pub mod linear;
pub mod logistic;
pub mod metrics;
pub mod tree;

pub use error::MlError;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MlError>;

/// A fitted model that maps a feature vector to a real-valued prediction.
pub trait Regressor {
    /// Predicts the target for one feature vector.
    ///
    /// Implementations must accept any slice whose length equals the number
    /// of features the model was fitted on; behaviour for other lengths is
    /// a panic (programmer error, not data error).
    fn predict(&self, features: &[f64]) -> f64;

    /// Predicts targets for a batch of feature vectors.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict(r)).collect()
    }
}

/// A fitted model that maps a feature vector to a discrete class label.
pub trait Classifier {
    /// Predicts the class label for one feature vector.
    fn classify(&self, features: &[f64]) -> usize;

    /// Predicts labels for a batch of feature vectors.
    fn classify_batch(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| self.classify(r)).collect()
    }
}
