//! Ordinary least squares and ridge regression.
//!
//! These are the workhorse models of the paper: the Fig 1 machine-behaviour
//! models ("we employed multiple linear models to predict machine behavior"),
//! KEA's scheduler tuning, and AutoToken's resource predictor are all linear
//! models chosen for interpretability (Insight 1).

use crate::dataset::Dataset;
use crate::linalg::{dot, solve, Matrix};
use crate::{Regressor, Result};
use serde::{Deserialize, Serialize};

/// A fitted linear regression `y = intercept + coefficients · x`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    coefficients: Vec<f64>,
    intercept: f64,
}

impl LinearRegression {
    /// Fits by ordinary least squares via the normal equations.
    pub fn fit(data: &Dataset) -> Result<Self> {
        Self::fit_ridge(data, 0.0)
    }

    /// Fits ridge regression with L2 penalty `lambda >= 0` (the intercept is
    /// not penalized).
    pub fn fit_ridge(data: &Dataset, lambda: f64) -> Result<Self> {
        // Augment each row with a leading 1 for the intercept.
        let rows: Vec<Vec<f64>> = data
            .features()
            .iter()
            .map(|r| {
                let mut row = Vec::with_capacity(r.len() + 1);
                row.push(1.0);
                row.extend_from_slice(r);
                row
            })
            .collect();
        let x = Matrix::from_rows(&rows)?;
        let mut gram = x.gram();
        if lambda > 0.0 {
            gram.add_diagonal(lambda);
            // Undo the penalty on the intercept term.
            gram[(0, 0)] -= lambda;
        }
        let rhs = x.transpose_mul_vec(data.targets());
        let beta = solve(gram, rhs)?;
        Ok(Self {
            coefficients: beta[1..].to_vec(),
            intercept: beta[0],
        })
    }

    /// Fitted slope coefficients, one per feature.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Coefficient of determination on a dataset.
    pub fn r_squared(&self, data: &Dataset) -> f64 {
        let predictions = self.predict_batch(data.features());
        crate::metrics::r_squared(data.targets(), &predictions)
    }
}

impl Regressor for LinearRegression {
    fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.coefficients.len(),
            "feature width must match fitted model"
        );
        self.intercept + dot(&self.coefficients, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn recovers_exact_line() {
        let data = Dataset::from_xy(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]).unwrap();
        let m = LinearRegression::fit(&data).unwrap();
        assert!((m.intercept() - 1.0).abs() < 1e-10);
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-10);
        assert!((m.r_squared(&data) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_multivariate_plane() {
        // y = 1 + 2a - 3b
        let features: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|r| 1.0 + 2.0 * r[0] - 3.0 * r[1])
            .collect();
        let data = Dataset::new(features, targets).unwrap();
        let m = LinearRegression::fit(&data).unwrap();
        assert!((m.predict(&[2.0, 1.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn collinear_features_are_singular_but_ridge_works() {
        // Second feature is a copy of the first → singular normal equations.
        let features: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let targets: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let data = Dataset::new(features, targets).unwrap();
        assert!(LinearRegression::fit(&data).is_err());
        let ridge = LinearRegression::fit_ridge(&data, 0.1).unwrap();
        // Ridge splits the weight between the duplicates; prediction stays good.
        assert!((ridge.predict(&[5.0, 5.0]) - 10.0).abs() < 0.2);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let data = Dataset::from_xy(&[(0.0, 0.1), (1.0, 2.1), (2.0, 3.9), (3.0, 6.1)]).unwrap();
        let ols = LinearRegression::fit(&data).unwrap();
        let ridge = LinearRegression::fit_ridge(&data, 10.0).unwrap();
        assert!(ridge.coefficients()[0].abs() < ols.coefficients()[0].abs());
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn wrong_width_panics() {
        let data = Dataset::from_xy(&[(0.0, 0.0), (1.0, 1.0)]).unwrap();
        let m = LinearRegression::fit(&data).unwrap();
        let _ = m.predict(&[1.0, 2.0]);
    }

    proptest! {
        /// OLS recovers any noiseless affine function of one variable.
        #[test]
        fn prop_recovers_affine(slope in -100.0f64..100.0, intercept in -100.0f64..100.0) {
            let pairs: Vec<(f64, f64)> =
                (0..10).map(|i| (i as f64, intercept + slope * i as f64)).collect();
            let data = Dataset::from_xy(&pairs).unwrap();
            let m = LinearRegression::fit(&data).unwrap();
            prop_assert!((m.coefficients()[0] - slope).abs() < 1e-6);
            prop_assert!((m.intercept() - intercept).abs() < 1e-6);
        }

        /// Predictions are translation-equivariant: shifting targets by c
        /// shifts predictions by c.
        #[test]
        fn prop_translation_equivariance(c in -50.0f64..50.0) {
            let pairs: Vec<(f64, f64)> =
                (0..8).map(|i| (i as f64, (i * i) as f64 * 0.3)).collect();
            let shifted: Vec<(f64, f64)> = pairs.iter().map(|&(x, y)| (x, y + c)).collect();
            let m1 = LinearRegression::fit(&Dataset::from_xy(&pairs).unwrap()).unwrap();
            let m2 = LinearRegression::fit(&Dataset::from_xy(&shifted).unwrap()).unwrap();
            prop_assert!((m1.predict(&[3.5]) + c - m2.predict(&[3.5])).abs() < 1e-6);
        }
    }
}
