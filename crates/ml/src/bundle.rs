//! Portable model containers (Direction 2).
//!
//! "To simplify the reuse of models for deployment within a common
//! infrastructure, we also adopt standard representations for ML models,
//! such as ONNX. Furthermore, we package an ML model (along with any
//! additional required code and libraries) into a standard generic
//! container that can be efficiently reused across systems."
//!
//! A [`ModelBundle`] is that container in miniature: a versioned envelope
//! holding the model kind, free-form metadata (training provenance,
//! metrics), and the serialized model payload. Any `Serialize +
//! Deserialize` model in this workspace can be packed, shipped as JSON, and
//! unpacked by a different service — with version and kind checks at the
//! boundary so deployment mismatches fail loudly instead of silently.

use crate::{MlError, Result};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The bundle format identifier + version this crate reads and writes.
pub const FORMAT: &str = "adas-model/1";

/// What kind of model a bundle holds (consumers dispatch on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// [`crate::linear::LinearRegression`]
    LinearRegression,
    /// [`crate::logistic::LogisticRegression`]
    LogisticRegression,
    /// [`crate::tree::DecisionTree`]
    DecisionTree,
    /// [`crate::forest::RandomForest`]
    RandomForest,
    /// [`crate::gbm::GradientBoosting`]
    GradientBoosting,
    /// [`crate::cluster::KMeans`]
    KMeans,
    /// [`crate::forecast::SeasonalNaive`]
    SeasonalNaive,
    /// [`crate::forecast::HoltWinters`]
    HoltWinters,
}

/// A versioned, self-describing model container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Format identifier; must equal [`FORMAT`] to unpack.
    pub format: String,
    /// The model kind inside.
    pub kind: ModelKind,
    /// Human-assigned model name (e.g. `seagull-load-v3`).
    pub name: String,
    /// Free-form provenance/metrics metadata.
    pub metadata: BTreeMap<String, String>,
    /// The serialized model.
    payload: serde_json::Value,
}

impl ModelBundle {
    /// Packs a model into a bundle.
    pub fn pack<M: Serialize>(kind: ModelKind, name: &str, model: &M) -> Result<Self> {
        let payload = serde_json::to_value(model)
            .map_err(|e| MlError::InvalidParameter(format!("model not serializable: {e}")))?;
        Ok(Self {
            format: FORMAT.to_string(),
            kind,
            name: name.to_string(),
            metadata: BTreeMap::new(),
            payload,
        })
    }

    /// Adds a metadata entry (builder style).
    pub fn with_metadata(mut self, key: &str, value: &str) -> Self {
        self.metadata.insert(key.to_string(), value.to_string());
        self
    }

    /// Unpacks the model, verifying format and kind.
    pub fn unpack<M: DeserializeOwned>(&self, expected: ModelKind) -> Result<M> {
        if self.format != FORMAT {
            return Err(MlError::InvalidParameter(format!(
                "unsupported bundle format `{}` (this build reads `{FORMAT}`)",
                self.format
            )));
        }
        if self.kind != expected {
            return Err(MlError::InvalidParameter(format!(
                "bundle holds {:?}, caller expected {:?}",
                self.kind, expected
            )));
        }
        serde_json::from_value(self.payload.clone())
            .map_err(|e| MlError::InvalidParameter(format!("payload does not decode: {e}")))
    }

    /// Serializes the whole bundle to JSON (the wire/storage form).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| MlError::InvalidParameter(format!("bundle not serializable: {e}")))
    }

    /// Parses a bundle from JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json)
            .map_err(|e| MlError::InvalidParameter(format!("not a model bundle: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forecast::{Forecaster, HoltWinters, HwConfig};
    use crate::linear::LinearRegression;
    use crate::Regressor;

    fn fitted_line() -> LinearRegression {
        let pairs: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        LinearRegression::fit(&Dataset::from_xy(&pairs).expect("ok")).expect("fits")
    }

    #[test]
    fn linear_model_round_trips_through_json() {
        let model = fitted_line();
        let bundle = ModelBundle::pack(ModelKind::LinearRegression, "test-line", &model)
            .expect("packs")
            .with_metadata("trained_on", "unit-test")
            .with_metadata("r_squared", "1.0");
        let json = bundle.to_json().expect("serializes");
        let restored = ModelBundle::from_json(&json).expect("parses");
        assert_eq!(restored.metadata["trained_on"], "unit-test");
        let back: LinearRegression = restored
            .unpack(ModelKind::LinearRegression)
            .expect("unpacks");
        assert!((back.predict(&[7.0]) - model.predict(&[7.0])).abs() < 1e-12);
    }

    #[test]
    fn forecaster_round_trips() {
        let values: Vec<f64> = (0..96)
            .map(|i| {
                if (8..18).contains(&(i % 24)) {
                    10.0
                } else {
                    2.0
                }
            })
            .collect();
        let model = HoltWinters::fit(&values, 24, HwConfig::default()).expect("fits");
        let bundle = ModelBundle::pack(ModelKind::HoltWinters, "hw", &model).expect("packs");
        let back: HoltWinters = bundle.unpack(ModelKind::HoltWinters).expect("unpacks");
        assert_eq!(model.forecast(24), back.forecast(24));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let bundle =
            ModelBundle::pack(ModelKind::LinearRegression, "x", &fitted_line()).expect("packs");
        let err = bundle
            .unpack::<LinearRegression>(ModelKind::KMeans)
            .unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn foreign_format_rejected() {
        let mut bundle =
            ModelBundle::pack(ModelKind::LinearRegression, "x", &fitted_line()).expect("packs");
        bundle.format = "adas-model/99".to_string();
        let err = bundle
            .unpack::<LinearRegression>(ModelKind::LinearRegression)
            .unwrap_err();
        assert!(err.to_string().contains("unsupported bundle format"));
    }

    #[test]
    fn garbage_json_rejected() {
        assert!(ModelBundle::from_json("not json").is_err());
        assert!(ModelBundle::from_json("{\"nope\": 1}").is_err());
    }
}
