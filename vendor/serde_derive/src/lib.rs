//! Offline stand-in for `serde_derive`, written against the vendored
//! value-model `serde` (see `crates/vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses, with no `syn`/`quote` dependency — the item
//! is parsed directly from the `proc_macro` token stream and code is
//! generated as source text:
//!
//! - structs with named fields (including one or more plain type
//!   parameters, which receive `Serialize`/`Deserialize` bounds);
//! - tuple structs (single-field newtypes serialize transparently, like
//!   real serde);
//! - unit structs;
//! - enums with unit, tuple, and struct variants, encoded externally
//!   tagged exactly like serde_json (`"Variant"` / `{"Variant": ...}`);
//! - the `#[serde(skip)]` field attribute (omitted on serialize, filled
//!   from `Default::default()` on deserialize);
//! - the `#[serde(default)]` field attribute (serialized normally, filled
//!   from `Default::default()` when absent on deserialize — used for
//!   forward-compatible additions to persisted formats).
//!
//! Anything outside that surface fails the build with a descriptive panic
//! rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field.
struct Field {
    /// Named-field name; `None` in tuple position.
    name: Option<String>,
    /// Marked `#[serde(skip)]`.
    skip: bool,
    /// Marked `#[serde(default)]`.
    uses_default: bool,
}

/// Field-level serde attributes recognized by this stand-in.
#[derive(Default, Clone, Copy)]
struct FieldAttrs {
    skip: bool,
    uses_default: bool,
}

/// The body shape of a struct or one enum variant.
enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        generics: Vec<String>,
        shape: Shape,
    },
    Enum {
        name: String,
        generics: Vec<String>,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` via the vendored value model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl parses")
}

/// Derives `serde::Deserialize` via the vendored value model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Self {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes attributes (`#[...]`), returning any recognized
    /// `#[serde(...)]` field flags.
    fn skip_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let flags = serde_attr_flags(g.stream());
                    attrs.skip |= flags.skip;
                    attrs.uses_default |= flags.uses_default;
                }
                other => panic!("serde_derive: expected [...] after #, got {other:?}"),
            }
        }
        attrs
    }

    /// Consumes `pub`, `pub(...)` if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected {what}, got {other:?}"),
        }
    }

    /// Consumes tokens until a `,` at angle-bracket depth 0, or the end.
    /// `->` is recognized so its `>` does not disturb the depth count.
    fn skip_until_comma(&mut self) {
        let mut depth = 0i32;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && depth == 0 {
                        self.next();
                        return;
                    }
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == '-' {
                        // Possible `->`: swallow the pair as one unit.
                        self.next();
                        if let Some(TokenTree::Punct(q)) = self.peek() {
                            if q.as_char() == '>' {
                                self.next();
                            }
                        }
                        continue;
                    }
                    self.next();
                }
                _ => {
                    self.next();
                }
            }
        }
    }
}

fn serde_attr_flags(stream: TokenStream) -> FieldAttrs {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut attrs = FieldAttrs::default();
    if let [TokenTree::Ident(name), TokenTree::Group(args)] = tokens.as_slice() {
        if name.to_string() == "serde" {
            for t in args.stream() {
                if let TokenTree::Ident(id) = &t {
                    match id.to_string().as_str() {
                        "skip" => attrs.skip = true,
                        "default" => attrs.uses_default = true,
                        _ => {}
                    }
                }
            }
        }
    }
    attrs
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    let generics = parse_generics(&mut c);

    match kw.as_str() {
        "struct" => {
            let shape = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let g = g.stream();
                    c.next();
                    Shape::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let g = g.stream();
                    c.next();
                    Shape::Tuple(parse_tuple_fields(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde_derive: unsupported struct body: {other:?}"),
            };
            Item::Struct {
                name,
                generics,
                shape,
            }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, got {other:?}"),
            };
            Item::Enum {
                name,
                generics,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Parses `<A, B: Bound, ...>` into plain parameter names. Lifetimes and
/// const generics are rejected — nothing in this workspace derives with
/// them, and silently mishandling them would be worse than a build error.
fn parse_generics(c: &mut Cursor) -> Vec<String> {
    let mut params = Vec::new();
    match c.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            c.next();
        }
        _ => return params,
    }
    // Expect `IDENT (: bounds)?` separated by commas, closed by `>`.
    loop {
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
            Some(TokenTree::Ident(id)) => {
                let id = id.to_string();
                if id == "const" {
                    panic!("serde_derive: const generics are not supported");
                }
                params.push(id);
                // Skip optional bounds until `,` or the closing `>`.
                let mut depth = 0i32;
                while let Some(tok) = c.peek() {
                    match tok {
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            depth += 1;
                            c.next();
                        }
                        TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => {
                            depth -= 1;
                            c.next();
                        }
                        TokenTree::Punct(p) if p.as_char() == '>' => break,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                        _ => {
                            c.next();
                        }
                    }
                }
            }
            other => panic!("serde_derive: unsupported generic parameter: {other:?}"),
        }
    }
    params
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        c.skip_until_comma();
        fields.push(Field {
            name: Some(name),
            skip: attrs.skip,
            uses_default: attrs.uses_default,
        });
    }
    fields
}

fn parse_tuple_fields(body: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        c.skip_until_comma();
        fields.push(Field {
            name: None,
            skip: attrs.skip,
            uses_default: attrs.uses_default,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                c.next();
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                c.next();
                Shape::Tuple(parse_tuple_fields(g))
            }
            _ => Shape::Unit,
        };
        // Consume a trailing comma (and any explicit discriminant).
        c.skip_until_comma();
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(trait_name: &str, name: &str, generics: &[String]) -> String {
    if generics.is_empty() {
        format!("impl ::serde::{trait_name} for {name} ")
    } else {
        let bounded: Vec<String> = generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {name}<{}> ",
            bounded.join(", "),
            generics.join(", ")
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            generics,
            shape,
        } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(fields) => ser_tuple_body(fields, "self.", ""),
                Shape::Named(fields) => ser_named_body(fields, "&self."),
            };
            format!(
                "{}{{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
                impl_header("Serialize", name, generics)
            )
        }
        Item::Enum {
            name,
            generics,
            variants,
        } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let binders: Vec<String> =
                            (0..fields.len()).map(|i| format!("__b{i}")).collect();
                        let payload = if fields.len() == 1 {
                            "::serde::Serialize::to_value(__b0)".to_string()
                        } else {
                            let elems: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), {payload})]),",
                            binds = binders.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let names: Vec<&str> =
                            fields.iter().map(|f| f.name.as_deref().unwrap()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                let fname = f.name.as_deref().unwrap();
                                format!(
                                    "(\"{fname}\".to_string(), ::serde::Serialize::to_value({fname}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(vec![{pushes}]))]),",
                            binds = names.join(", "),
                            pushes = pushes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "{}{{ fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}",
                impl_header("Serialize", name, generics)
            )
        }
    }
}

fn ser_named_body(fields: &[Field], accessor_prefix: &str) -> String {
    let pushes: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            let fname = f.name.as_deref().unwrap();
            format!(
                "(\"{fname}\".to_string(), ::serde::Serialize::to_value({accessor_prefix}{fname}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", pushes.join(", "))
}

fn ser_tuple_body(fields: &[Field], prefix: &str, _suffix: &str) -> String {
    if fields.len() == 1 {
        // Newtype structs are transparent, matching real serde.
        format!("::serde::Serialize::to_value(&{prefix}0)")
    } else {
        let elems: Vec<String> = (0..fields.len())
            .map(|i| format!("::serde::Serialize::to_value(&{prefix}{i})"))
            .collect();
        format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            generics,
            shape,
        } => {
            let body = match shape {
                Shape::Unit => format!("{{ let _ = __v; Ok({name}) }}"),
                Shape::Tuple(fields) => {
                    if fields.len() == 1 {
                        format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                    } else {
                        let elems: Vec<String> = (0..fields.len())
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(__seq.get({i}).ok_or_else(|| ::serde::Error::custom(\"sequence too short for {name}\"))?)?"
                                )
                            })
                            .collect();
                        format!(
                            "{{ let __seq = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {name}\"))?; Ok({name}({})) }}",
                            elems.join(", ")
                        )
                    }
                }
                Shape::Named(fields) => {
                    let inits = de_named_inits(fields, "__map");
                    format!(
                        "{{ let __map = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}\"))?; Ok({name} {{ {inits} }}) }}"
                    )
                }
            };
            format!(
                "{}{{ fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
                impl_header("Deserialize", name, generics)
            )
        }
        Item::Enum {
            name,
            generics,
            variants,
        } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),"));
                    }
                    Shape::Tuple(fields) => {
                        let build = if fields.len() == 1 {
                            format!(
                                "Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?))"
                            )
                        } else {
                            let elems: Vec<String> = (0..fields.len())
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__seq.get({i}).ok_or_else(|| ::serde::Error::custom(\"sequence too short for {name}::{vname}\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{{ let __seq = __payload.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {name}::{vname}\"))?; Ok({name}::{vname}({})) }}",
                                elems.join(", ")
                            )
                        };
                        payload_arms.push_str(&format!("\"{vname}\" => {build},"));
                    }
                    Shape::Named(fields) => {
                        let inits = de_named_inits(fields, "__vmap");
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {{ let __vmap = __payload.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}::{vname}\"))?; Ok({name}::{vname} {{ {inits} }}) }},"
                        ));
                    }
                }
            }
            format!(
                "{}{{ fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
                    match __v {{ \
                        ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} __other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))) }}, \
                        ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
                            let (__tag, __payload) = &__m[0]; \
                            match __tag.as_str() {{ {payload_arms} __other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))) }} \
                        }}, \
                        __other => Err(::serde::Error::custom(format!(\"expected {name} variant, got {{__other:?}}\"))) \
                    }} \
                }} }}",
                impl_header("Deserialize", name, generics)
            )
        }
    }
}

fn de_named_inits(fields: &[Field], map_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let fname = f.name.as_deref().unwrap();
            if f.skip {
                format!("{fname}: ::std::default::Default::default()")
            } else if f.uses_default {
                format!(
                    "{fname}: match ::serde::__field({map_var}, \"{fname}\") {{ \
                        ::serde::Value::Null => ::std::default::Default::default(), \
                        __fv => ::serde::Deserialize::from_value(__fv)? \
                    }}"
                )
            } else {
                format!(
                    "{fname}: ::serde::Deserialize::from_value(::serde::__field({map_var}, \"{fname}\"))?"
                )
            }
        })
        .collect();
    inits.join(", ")
}
