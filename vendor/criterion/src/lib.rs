//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion)
//! (see `crates/vendor/README.md`).
//!
//! A minimal wall-clock benchmark harness exposing the API shape the
//! workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`]. Each benchmark is warmed up briefly, then timed
//! over enough iterations to fill a fixed measurement window; the median
//! per-iteration time is printed. There are no statistical comparisons,
//! plots, or saved baselines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work. Delegates to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`.
    result_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records its median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run for a short fixed window.
        let warmup_end = Instant::now() + Duration::from_millis(50);
        let mut one = Duration::ZERO;
        let mut warm_iters = 0u64;
        while Instant::now() < warmup_end {
            let t0 = Instant::now();
            black_box(f());
            one = t0.elapsed();
            warm_iters += 1;
        }
        // Choose a batch size that keeps each sample around 5 ms.
        let per_iter = (one.as_nanos() as u64).max(1);
        let batch = (5_000_000 / per_iter).clamp(1, 1_000_000);
        let _ = warm_iters;
        // Measure: 9 samples of `batch` iterations, take the median.
        let mut samples: Vec<f64> = (0..9)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result_ns = samples[samples.len() / 2];
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        result_ns: f64::NAN,
    };
    f(&mut b);
    if b.result_ns.is_nan() {
        println!("{label:<48} (no measurement: iter() was not called)");
    } else if b.result_ns >= 1_000_000.0 {
        println!("{label:<48} {:>12.3} ms/iter", b.result_ns / 1_000_000.0);
    } else if b.result_ns >= 1_000.0 {
        println!("{label:<48} {:>12.3} µs/iter", b.result_ns / 1_000.0);
    } else {
        println!("{label:<48} {:>12.1} ns/iter", b.result_ns);
    }
}

/// The benchmark driver handed to every bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Runs one unparameterized benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Collects bench functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
