//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal serialization framework under the same crate name (see
//! `crates/vendor/README.md`). Unlike real serde's visitor architecture,
//! this implementation round-trips through a self-describing [`Value`] tree:
//!
//! - [`Serialize::to_value`] renders any supported type into a [`Value`];
//! - [`Deserialize::from_value`] rebuilds the type from a [`Value`];
//! - the companion vendored `serde_json` crate renders/parses `Value` as
//!   JSON text.
//!
//! The `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros (from the
//! vendored `serde_derive`) support named/tuple/unit structs and enums with
//! unit, tuple, and struct variants, one optional type parameter, and the
//! `#[serde(skip)]` / `#[serde(default)]` field attributes — exactly the
//! shapes this workspace uses. Externally-tagged enum encoding matches real serde_json
//! (`"Variant"`, `{"Variant": payload}`), and newtype structs are
//! transparent.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A self-describing serialized value: the interchange tree every
/// [`Serialize`]/[`Deserialize`] implementation goes through.
///
/// Maps preserve insertion order (a `Vec` of pairs, not a hash map) so
/// serialization is deterministic — several tests in this workspace assert
/// byte-identical JSON across runs.
///
/// Integer canonical form: non-negative integers always use [`Value::U64`],
/// negative ones [`Value::I64`]. Both the derive output and the JSON parser
/// follow this, so values compare equal across a round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer.
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Finite float.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, order-preserving.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the map entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view, coercing any integer variant to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::I64(i) => Some(i as f64),
            Value::U64(u) => Some(u as f64),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a serialized value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserializer-side traits, mirroring `serde::de`.
pub mod de {
    /// Owned deserialization marker, mirroring `serde::de::DeserializeOwned`.
    ///
    /// This vendored framework has no borrowed deserialization, so every
    /// [`Deserialize`](crate::Deserialize) type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Serializer-side re-exports, mirroring `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}

const NULL: Value = Value::Null;

/// Derive-macro support: looks up a struct field in a serialized map,
/// yielding `Null` when absent so the field's own `Deserialize` decides
/// whether that is an error. Not part of the public serde API.
#[doc(hidden)]
pub fn __field<'a>(map: &'a [(String, Value)], name: &str) -> &'a Value {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = match *v {
                    Value::U64(u) => u,
                    Value::I64(i) if i >= 0 => i as u64,
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(u).map_err(|_| {
                    Error::custom(format!("integer {u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = match *v {
                    Value::I64(i) => i,
                    Value::U64(u) => i64::try_from(u).map_err(|_| {
                        Error::custom(format!("integer {u} overflows i64"))
                    })?,
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() { Value::F64(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(f) => Ok(f as $t),
                    Value::I64(i) => Ok(i as $t),
                    Value::U64(u) => Ok(u as $t),
                    // Non-finite floats serialize to Null; restore as NaN.
                    Value::Null => Ok(<$t>::NAN),
                    ref other => Err(Error::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl Deserialize for Arc<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Arc::from(s.as_str())),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Deserialize for Box<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone().into_boxed_str()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v
                    .as_seq()
                    .ok_or_else(|| Error::custom("expected sequence for tuple"))?;
                Ok(($($t::from_value(
                    seq.get($n).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Renders a serialized key as its JSON-object string form. Like
/// `serde_json`, only string-like and integer keys are representable;
/// anything else is a loud failure rather than silent divergence.
fn value_to_key(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string or integer, got {other:?}"),
    }
}

/// Parses a JSON-object key back into `K`: string form first (covers
/// `String`/newtype-of-string keys), then integer forms (covers numeric
/// keys, which JSON renders as strings).
fn key_from_str<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("invalid map key `{key}`")))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (value_to_key(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v.as_map().ok_or_else(|| Error::custom("expected map"))?;
        map.iter()
            .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort entries by rendered key.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (value_to_key(k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v.as_map().ok_or_else(|| Error::custom("expected map"))?;
        map.iter()
            .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_canonical_form_is_stable() {
        // Non-negative signed and unsigned integers meet in U64.
        assert_eq!(5i64.to_value(), 5u64.to_value());
        assert_eq!((-5i64).to_value(), Value::I64(-5));
        assert_eq!(i64::from_value(&Value::U64(7)).unwrap(), 7);
        assert_eq!(u64::from_value(&Value::I64(7)).unwrap(), 7);
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn floats_coerce_and_nonfinite_nulls() {
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        m.insert("b".to_string(), -2.0);
        assert_eq!(
            BTreeMap::<String, f64>::from_value(&m.to_value()).unwrap(),
            m
        );

        let o: Option<u32> = None;
        assert_eq!(o.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(4)).unwrap(), Some(4));

        let t = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&t.to_value()).unwrap(), t);

        let a: Arc<str> = Arc::from("shared");
        assert_eq!(a.to_value(), Value::Str("shared".into()));
        let back: Arc<str> = Deserialize::from_value(&a.to_value()).unwrap();
        assert_eq!(&*back, "shared");
    }

    #[test]
    fn missing_struct_field_reads_as_null() {
        let map = vec![("present".to_string(), Value::U64(1))];
        assert_eq!(__field(&map, "present"), &Value::U64(1));
        assert_eq!(__field(&map, "absent"), &Value::Null);
    }
}
