//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json)
//! (see `crates/vendor/README.md`).
//!
//! Renders and parses JSON text over the vendored value-model `serde`. The
//! supported API is what this workspace calls: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`from_value`], and
//! the [`Value`] type (re-exported from `serde`).
//!
//! Output is deterministic: struct fields serialize in declaration order,
//! map entries in key order, and floats through Rust's shortest round-trip
//! formatting — several workspace tests assert byte-identical JSON for
//! identical inputs.

#![warn(missing_docs)]

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` into a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` into pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

/// Parses a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f == f.trunc() && f.abs() < 1e15 {
        // Integral floats keep a `.0` marker so they re-parse as floats.
        out.push_str(&format!("{f:.1}"));
    } else {
        // Shortest representation that round-trips exactly.
        out.push_str(&format!("{f:?}"));
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    other => return Err(Error(format!("expected `,` or `]`, got {other:?}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    other => return Err(Error(format!("expected `,` or `}}`, got {other:?}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                        // Surrogate pairs are not needed for this workspace's
                        // ASCII-ish payloads; reject rather than mis-decode.
                        let ch = char::from_u32(code)
                            .ok_or_else(|| Error(format!("unsupported \\u{hex} escape")))?;
                        out.push(ch);
                        *pos += 4;
                    }
                    other => return Err(Error(format!("invalid escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error("invalid number".into()))?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(i) = stripped.parse::<i64>() {
                return Ok(if i == 0 {
                    Value::U64(0)
                } else {
                    Value::I64(-i)
                });
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::U64(u));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_round_trip_through_text() {
        for (v, expect) in [
            (Value::Null, "null"),
            (Value::Bool(true), "true"),
            (Value::U64(42), "42"),
            (Value::I64(-42), "-42"),
            (Value::F64(1.5), "1.5"),
            (Value::F64(2.0), "2.0"),
            (Value::Str("a\"b\\c\n".into()), r#""a\"b\\c\n""#),
        ] {
            let text = to_string(&v).unwrap();
            assert_eq!(text, expect);
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Map(vec![
            (
                "list".into(),
                Value::Seq(vec![Value::U64(1), Value::F64(0.25), Value::Null]),
            ),
            ("name".into(), Value::Str("x".into())),
            (
                "inner".into(),
                Value::Map(vec![("k".into(), Value::Bool(false))]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        // Pretty output parses to the same tree.
        let pretty = to_string_pretty(&v).unwrap();
        let back_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(back_pretty, v);
    }

    #[test]
    fn typed_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("alpha".to_string(), vec![1u64, 2, 3]);
        m.insert("beta".to_string(), vec![]);
        let text = to_string(&m).unwrap();
        assert_eq!(text, r#"{"alpha":[1,2,3],"beta":[]}"#);
        let back: BTreeMap<String, Vec<u64>> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn float_formatting_is_reparse_exact() {
        for f in [0.1f64, 1.0 / 3.0, 1e-9, 123_456_789.123, 1e21, -0.0, 5.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} → {text} → {back}");
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
    }
}
