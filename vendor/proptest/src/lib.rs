//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest)
//! (see `crates/vendor/README.md`).
//!
//! Seeded random property testing covering the API surface this workspace
//! uses: the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! [`Strategy`] with `prop_map`/`prop_recursive`/`boxed`, range and tuple
//! strategies, [`Just`], [`prop_oneof!`], [`collection::vec`], and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for an offline build:
//!
//! - **No shrinking.** A failing case reports its seed and input values but
//!   is not minimized.
//! - **Deterministic seeding.** Case `i` of test `t` always runs the same
//!   inputs (seeded from a hash of the test name and `i`), so failures
//!   reproduce without a persistence file; `.proptest-regressions` files
//!   are ignored.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!` failures) tolerated before
    /// the test aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried with fresh
    /// inputs and does not count as a failure.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The source of randomness handed to strategies.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner with an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// FNV-1a, used to derive a stable per-test seed from its name.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Test-harness entry point used by the [`proptest!`] expansion. Not part
/// of the public proptest API.
#[doc(hidden)]
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRunner) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut iter = 0u64;
    while passed < config.cases {
        let seed = base ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        iter += 1;
        let mut runner = TestRunner::from_seed(seed);
        match case(&mut runner) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejected}) before reaching {} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {passed} (seed {seed:#x}): {msg}\n\
                     (vendored proptest: no shrinking; rerun reproduces deterministically)"
                );
            }
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: `recurse` receives the strategy for the previous
    /// depth level and returns the strategy for one level deeper; `depth`
    /// levels are stacked above `self` (the leaf strategy). `desired_size`
    /// and `expected_branch_size` are accepted for API compatibility; at
    /// each level the generator picks the leaf or the deeper strategy with
    /// equal probability, which keeps generated trees small.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = Union::new(vec![leaf.clone(), recurse(level).boxed()]).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe strategy view backing [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_new_value(&self, runner: &mut TestRunner) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_new_value(&self, runner: &mut TestRunner) -> S::Value {
        self.new_value(runner)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.0.dyn_new_value(runner)
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Uniform choice between several strategies of one value type; the
/// expansion target of [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        use rand::Rng;
        let idx = runner.rng().gen_range(0..self.options.len());
        self.options[idx].new_value(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                use rand::Rng;
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                use rand::Rng;
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for core::ops::RangeFull {
    type Value = u64;
    fn new_value(&self, runner: &mut TestRunner) -> u64 {
        use rand::Rng;
        runner.rng().gen()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.new_value(runner),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRunner};

    /// Sizes accepted by [`vec`]: `a..b` or `a..=b`.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, runner: &mut TestRunner) -> usize;
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, runner: &mut TestRunner) -> usize {
            use rand::Rng;
            runner.rng().gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, runner: &mut TestRunner) -> usize {
            use rand::Rng;
            runner.rng().gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _runner: &mut TestRunner) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = self.size.sample_len(runner);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::run_proptest(&__config, stringify!($name), |__runner| {
                    $(let $arg = $crate::Strategy::new_value(&($strat), __runner);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a proptest body; failure reports the inputs'
/// seed instead of panicking mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if __a != __b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` ({}:{})",
                __a, __b, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if __a != __b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {} ({}:{})",
                __a, __b, format!($($fmt)+), file!(), line!()
            )));
        }
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({}:{})",
                __a,
                __b,
                file!(),
                line!()
            )));
        }
    }};
}

/// Discards the current case (retried with fresh inputs) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRunner, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_just_generate() {
        let mut runner = crate::TestRunner::from_seed(1);
        for _ in 0..100 {
            let v = (0..10usize).new_value(&mut runner);
            assert!(v < 10);
            let (a, b) = ((0..5u32), (-1.0f64..1.0)).new_value(&mut runner);
            assert!(a < 5 && (-1.0..1.0).contains(&b));
            assert_eq!(Just(7u8).new_value(&mut runner), 7);
        }
    }

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![Just(1u32), Just(2u32)].prop_map(|x| x * 10);
        let mut runner = crate::TestRunner::from_seed(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strat.new_value(&mut runner));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![10, 20]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0..255u8)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut runner = crate::TestRunner::from_seed(3);
        for _ in 0..200 {
            let t = strat.new_value(&mut runner);
            assert!(depth(&t) <= 5, "depth bounded by recursion depth + leaf");
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let strat = collection::vec(0.0f64..1.0, 3..7);
        let mut runner = crate::TestRunner::from_seed(4);
        for _ in 0..50 {
            let v = strat.new_value(&mut runner);
            assert!((3..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0..100u32, y in 0..100u32) {
            prop_assume!(x != y);
            prop_assert!(x < 100 && y < 100);
            prop_assert_ne!(x, y);
            prop_assert_eq!(x + y, y + x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failures_panic_with_context() {
        crate::run_proptest(&ProptestConfig::with_cases(1), "always_fails", |_r| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
