//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot)
//! (see `crates/vendor/README.md`).
//!
//! Wraps the std sync primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly rather than
//! `Result`s. A poisoned std lock means a thread panicked while holding
//! it; matching parking_lot semantics, the data is handed out anyway.

#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }
}
