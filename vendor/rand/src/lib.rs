//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external dependencies are vendored as minimal local
//! implementations (see `crates/vendor/README.md`). This crate covers the
//! API surface the workspace actually uses:
//!
//! - [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`]
//! - [`seq::SliceRandom::choose`] / [`seq::SliceRandom::shuffle`]
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — *not* the
//! ChaCha12 core of the real `StdRng`, so absolute sequences differ from
//! upstream `rand`; everything in this workspace only relies on seeded
//! determinism and reasonable statistical quality, both of which hold.

#![warn(missing_docs)]

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Same seed ⇒ same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: the standard seeding sequence for xoshiro generators.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core uniform-sampling surface; implemented by all RNGs here.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its canonical uniform distribution
    /// (`f64`/`f32`: `[0, 1)`; integers: full range; `bool`: fair coin).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<R>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
        R: SampleRange,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (`rng.gen_range(range)`).
///
/// Unlike the real `rand`, the element type is an associated type rather
/// than a trait parameter: it projects forward from the range type, which
/// lets inference work in expressions like `1.0 + rng.gen_range(a..=b)`.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one value from the range. Panics on an empty range, like the
    /// real `rand`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the multiply-shift map exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng`; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Extension trait for random slice operations.
    pub trait SliceRandom {
        /// Slice element type.
        type Item;
        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// `rand::thread_rng` stand-in: deterministic, fixed-seed.
///
/// Provided only so stray call sites compile; the workspace's own code
/// always passes explicit seeds.
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0x5EED_5EED_5EED_5EED)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&y));
            let z = rng.gen_range(10.0..20.0);
            assert!((10.0..20.0).contains(&z));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
            let w = rng.gen_range(5..=7i64);
            assert!((5..=7).contains(&w));
            let neg = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1k draws");
    }

    #[test]
    fn mean_of_unit_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate} far from 0.25");
    }

    #[test]
    fn shuffle_and_choose_behave() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, original, "50 elements almost surely move");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle is a permutation");
        assert!(original.contains(v.choose(&mut rng).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
