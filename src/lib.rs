//! # Autonomous Data Services
//!
//! A from-scratch Rust reproduction of *"Towards Building Autonomous Data
//! Services on Azure"* (SIGMOD-Companion 2023, Zhu et al.): the layered
//! architecture of learned components the paper describes across the cloud
//! infrastructure, query engine and service layers, built against
//! deterministic simulated substrates.
//!
//! This facade crate re-exports every workspace crate under one roof. For a
//! guided tour, run the examples:
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example recurring_jobs
//! cargo run --release --example serverless_autoscale
//! cargo run --release --example sku_migration
//! ```
//!
//! and regenerate the paper's figures/claims with
//! `cargo run --release -p adas-bench --bin experiments`.
//!
//! ## Layer map (paper Sec 4 → crates)
//!
//! | Layer | Paper system | Crate |
//! |---|---|---|
//! | Infrastructure | machine-behaviour models (Fig 1), KEA, proactive provisioning (Fig 2) | [`infra`] |
//! | Engine | workload analysis (Peregrine) | [`workload`] |
//! | Engine | SQL front-end (parser + phased rewrite pipeline) | [`sql`] |
//! | Engine | engine substrate (plans, optimizer, stage DAGs, cluster sim) | [`engine`] |
//! | Engine | cardinality/cost micromodels, steering | [`learned`] |
//! | Engine | checkpoint optimizer (Phoebe) | [`checkpoint`] |
//! | Engine | computation reuse (CloudViews) | [`reuse`] |
//! | Engine | pipeline optimization (Pipemizer, Wing) | [`pipeline`] |
//! | Service | Seagull, Moneyball, Doppler, Spark auto-tuning | [`service`] |
//! | Cross-cutting | model hierarchy, feedback loop, guardrails, AlgorithmStore, joint optimization | [`core`] |
//! | Substrates | telemetry store & seasonal analysis | [`telemetry`]; ML models: [`ml`] |
//! | Cross-cutting | model-serving gateway (batching, cache, breakers) | [`serve`] |
//! | Validation | deterministic fault injection & chaos testing | [`faultsim`] |
//! | Observability | flight recorder (spans, metrics, decision provenance) | [`obs`] |
//! | Observability | SLO burn rates, incident reconstruction, critical-path profiling | [`watchtower`] |
//! | Substrates | discrete-event simulation kernel (clock, event queue, seeded RNG) | [`simkern`] |

#![warn(missing_docs)]

pub use adas_checkpoint as checkpoint;
pub use adas_core as core;
pub use adas_engine as engine;
pub use adas_faultsim as faultsim;
pub use adas_infra as infra;
pub use adas_learned as learned;
pub use adas_ml as ml;
pub use adas_obs as obs;
pub use adas_pipeline as pipeline;
pub use adas_reuse as reuse;
pub use adas_serve as serve;
pub use adas_service as service;
pub use adas_simkern as simkern;
pub use adas_sql as sql;
pub use adas_telemetry as telemetry;
pub use adas_watchtower as watchtower;
pub use adas_workload as workload;
