//! Service + infrastructure layers: Moneyball pause/resume for serverless
//! databases and the Fig 2 provisioning Pareto for cluster pools.
//!
//! Run with: `cargo run --release --example serverless_autoscale`

use autonomous_data_services::infra::provision::{
    simulate_provisioning, DemandModel, PoolPolicy, ProvisionConfig,
};
use autonomous_data_services::service::moneyball::{generate_usage, simulate_policy, PausePolicy};

fn main() {
    // --- Moneyball: a fleet of 800 serverless databases, 77% with
    //     predictable usage (the paper's measured share).
    let fleet = generate_usage(800, 21, 0.77, 7);
    println!(
        "== Moneyball: pause/resume over {} databases ==",
        fleet.len()
    );
    println!(
        "{:<28} {:>18} {:>18}",
        "policy", "cold resumes/db-day", "idle hours/db-day"
    );
    for (name, policy) in [
        ("always-on", PausePolicy::AlwaysOn),
        (
            "reactive (2h idle)",
            PausePolicy::Reactive { idle_hours: 2 },
        ),
        (
            "proactive (Moneyball)",
            PausePolicy::Proactive {
                idle_hours: 2,
                threshold: 0.4,
            },
        ),
    ] {
        let r = simulate_policy(&fleet, policy);
        println!(
            "{:<28} {:>18.2} {:>18.2}",
            name, r.cold_resumes_per_db, r.idle_hours_per_db
        );
    }
    let proactive = simulate_policy(
        &fleet,
        PausePolicy::Proactive {
            idle_hours: 2,
            threshold: 0.4,
        },
    );
    println!(
        "classifier found {:.0}% of usage predictable ({:.0}% accuracy vs ground truth)\n",
        proactive.predictable_fraction * 100.0,
        proactive.classifier_accuracy * 100.0
    );

    // --- Fig 2: the QoS-vs-cost plane for cluster pool policies.
    let demand = DemandModel::default();
    let config = ProvisionConfig::default();
    println!("== Cluster provisioning: QoS vs cost (Fig 2) ==");
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "policy", "mean wait s", "p95 wait s", "idle clus-hrs"
    );
    for size in [0usize, 5, 10, 20, 30, 40, 60] {
        let r = simulate_provisioning(&demand, PoolPolicy::Static { size }, &config);
        println!(
            "{:<22} {:>12.1} {:>12.1} {:>14.0}",
            format!("static pool = {size}"),
            r.mean_wait,
            r.p95_wait,
            r.idle_cluster_hours
        );
    }
    let forecast = simulate_provisioning(&demand, PoolPolicy::Forecast { headroom: 1.2 }, &config);
    println!(
        "{:<22} {:>12.1} {:>12.1} {:>14.0}   <- dominates the static frontier",
        "forecast (ML)", forecast.mean_wait, forecast.p95_wait, forecast.idle_cluster_hours
    );
}
