//! Service + infrastructure layers: Moneyball pause/resume for serverless
//! databases and the Fig 2 provisioning Pareto for cluster pools.
//!
//! Results are recorded as obs events and gauges, streamed as JSON lines,
//! and the full canonical trace export is printed at the end — the same
//! machine-parseable artifact the flight recorder produces everywhere else.
//!
//! Run with: `cargo run --release --example serverless_autoscale`

use autonomous_data_services::infra::provision::{
    simulate_provisioning, DemandModel, PoolPolicy, ProvisionConfig,
};
use autonomous_data_services::obs::{Obs, DEFAULT_EXPORT_CHUNK};
use autonomous_data_services::service::moneyball::{generate_usage, simulate_policy, PausePolicy};

/// Records a progress event and prints it as one JSON line.
fn emit(obs: &Obs, name: &str, fields: &[(&str, &str)]) {
    obs.event("example.serverless_autoscale", name, 0.0, fields);
    println!("{}", obs.last_event_json().expect("recording"));
}

fn main() {
    let obs = Obs::recording();

    // --- Moneyball: a fleet of 800 serverless databases, 77% with
    //     predictable usage (the paper's measured share).
    let fleet = generate_usage(800, 21, 0.77, 7);
    emit(
        &obs,
        "moneyball_fleet_generated",
        &[("databases", &fleet.len().to_string())],
    );
    for (name, policy) in [
        ("always_on", PausePolicy::AlwaysOn),
        ("reactive_2h", PausePolicy::Reactive { idle_hours: 2 }),
        (
            "proactive_moneyball",
            PausePolicy::Proactive {
                idle_hours: 2,
                threshold: 0.4,
            },
        ),
    ] {
        let r = simulate_policy(&fleet, policy);
        let labels = [("policy", name)];
        obs.gauge_set(
            "service.moneyball",
            "cold_resumes_per_db_day",
            &labels,
            r.cold_resumes_per_db,
        );
        obs.gauge_set(
            "service.moneyball",
            "idle_hours_per_db_day",
            &labels,
            r.idle_hours_per_db,
        );
        emit(
            &obs,
            "pause_policy_simulated",
            &[
                ("policy", name),
                (
                    "cold_resumes_per_db_day",
                    &format!("{:.2}", r.cold_resumes_per_db),
                ),
                (
                    "idle_hours_per_db_day",
                    &format!("{:.2}", r.idle_hours_per_db),
                ),
            ],
        );
    }
    let proactive = simulate_policy(
        &fleet,
        PausePolicy::Proactive {
            idle_hours: 2,
            threshold: 0.4,
        },
    );
    emit(
        &obs,
        "moneyball_classifier",
        &[
            (
                "predictable_pct",
                &format!("{:.0}", proactive.predictable_fraction * 100.0),
            ),
            (
                "accuracy_pct",
                &format!("{:.0}", proactive.classifier_accuracy * 100.0),
            ),
        ],
    );

    // --- Fig 2: the QoS-vs-cost plane for cluster pool policies.
    let demand = DemandModel::default();
    let config = ProvisionConfig::default();
    for size in [0usize, 5, 10, 20, 30, 40, 60] {
        let r = simulate_provisioning(&demand, PoolPolicy::Static { size }, &config);
        let policy = format!("static_{size}");
        let labels = [("policy", policy.as_str())];
        obs.gauge_set("infra.provision", "mean_wait_seconds", &labels, r.mean_wait);
        obs.gauge_set("infra.provision", "p95_wait_seconds", &labels, r.p95_wait);
        obs.gauge_set(
            "infra.provision",
            "idle_cluster_hours",
            &labels,
            r.idle_cluster_hours,
        );
        emit(
            &obs,
            "pool_policy_simulated",
            &[
                ("policy", &policy),
                ("mean_wait_s", &format!("{:.1}", r.mean_wait)),
                ("p95_wait_s", &format!("{:.1}", r.p95_wait)),
                (
                    "idle_cluster_hours",
                    &format!("{:.0}", r.idle_cluster_hours),
                ),
            ],
        );
    }
    let forecast = simulate_provisioning(&demand, PoolPolicy::Forecast { headroom: 1.2 }, &config);
    emit(
        &obs,
        "pool_policy_simulated",
        &[
            ("policy", "forecast_ml"),
            ("mean_wait_s", &format!("{:.1}", forecast.mean_wait)),
            ("p95_wait_s", &format!("{:.1}", forecast.p95_wait)),
            (
                "idle_cluster_hours",
                &format!("{:.0}", forecast.idle_cluster_hours),
            ),
            ("dominates_static_frontier", "true"),
        ],
    );

    // The canonical JSON export: events and gauges in one deterministic
    // document, ready for downstream tooling. Streamed in chunks — the
    // concatenation is byte-identical to `obs.export_json()`, but the full
    // document never sits in memory.
    obs.export_stream(DEFAULT_EXPORT_CHUNK, |chunk| print!("{chunk}"));
    println!();
}
