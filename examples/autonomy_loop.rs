//! The closed autonomy loop, end to end: drift → retrain → shadow →
//! canary → promote, then poisoning → guard trip → automatic rollback →
//! retrain → recovery — with zero manual `publish`/`rollback` calls after
//! the bootstrap install.
//!
//! The driver below only does three things: asks the gateway for
//! predictions, reports observed outcomes to the [`AutonomyController`],
//! and (to make a point) corrupts the freshly promoted artifact. Every
//! deployment decision — staging, traffic shifts, promotion, rollback —
//! is the controller's, and each one lands in the flight recorder as a
//! typed deployment record with its cause.
//!
//! Run with: `cargo run --release --example autonomy_loop`

use autonomous_data_services::core::feedback::LoopConfig;
use autonomous_data_services::faultsim::{ModelFaults, PoisonProfile};
use autonomous_data_services::obs::Obs;
use autonomous_data_services::serve::{
    AutonomyAction, AutonomyConfig, AutonomyController, CanaryConfig, FnModel, Gateway,
    GatewayConfig, PoisonScope, ServableModel, SloPolicy,
};
use std::sync::Arc;

fn main() {
    let obs = Obs::recording();
    let mut config = GatewayConfig::standard();
    config.cache_capacity = 0;
    config.breaker.guard_factor = 2.0;
    let gateway = Gateway::with_obs(config, obs.clone());
    let handle = gateway.register("demo/cardinality", |f: &[f64]| f[0]);

    let mut ctl = AutonomyController::new(gateway.clone(), obs.clone());
    ctl.supervise(
        handle,
        AutonomyConfig {
            monitor: LoopConfig {
                window: 20,
                retrain_factor: 1.5,
                rollback_factor: 8.0,
            },
            canary: CanaryConfig {
                traffic_pct: 30,
                shadow_first: true,
                min_decisions: 10,
                promote_streak: 2,
                demote_streak: 2,
                promote_error_factor: 1.2,
                demote_error_factor: 2.0,
                restage_backoff_ticks: 16.0,
                max_restage_backoff_ticks: 128.0,
            },
            slo: SloPolicy::default(),
            guarded_streak: 4,
            breaker_open_streak: 10,
            retrain_cooldown_ticks: 8.0,
            min_retrain_observations: 20,
        },
        // Retrainer: least-squares slope from recent (features, actual)
        // pairs. In the real system this would be a training pipeline.
        Box::new(|history: &[(Vec<f64>, f64)]| {
            let (num, den) = history
                .iter()
                .fold((0.0, 0.0), |(n, d), (f, y)| (n + f[0] * y, d + f[0] * f[0]));
            let a = num / den.max(1e-12);
            Some((
                Arc::new(FnModel(move |f: &[f64]| a * f[0])) as Arc<dyn ServableModel>,
                0.01,
            ))
        }),
    );
    ctl.install(handle, Arc::new(FnModel(|f: &[f64]| 1.05 * f[0])), 0.2, 0.0)
        .expect("bootstrap publish");
    println!("bootstrap: v1 installed (predicts 1.05x, world is about to drift)");

    let mut poisoned = false;
    for t in 0..2000u64 {
        let sim_time = t as f64;
        let features = [1.0 + (t % 5) as f64];
        let p = gateway
            .predict(handle, &features, sim_time)
            .expect("registered");
        let actual = 1.3 * features[0]; // the drifted world
        let actions = ctl
            .observe(handle, &features, &p, actual, sim_time)
            .expect("supervised");
        for action in &actions {
            match action {
                AutonomyAction::RetrainScheduled { cause } => {
                    println!("t={t:4}  retrain scheduled ({cause})");
                }
                AutonomyAction::CandidateStaged { version, phase } => {
                    println!("t={t:4}  candidate v{version} staged in {}", phase.name());
                }
                AutonomyAction::CanaryStarted { version } => {
                    println!("t={t:4}  candidate v{version} advanced to canary traffic");
                }
                AutonomyAction::Promoted { version } => {
                    println!("t={t:4}  candidate v{version} promoted to primary");
                    if !poisoned {
                        // Sabotage: the promoted artifact corrupts in place.
                        gateway
                            .inject_faults(
                                handle,
                                ModelFaults::with_profile(
                                    7,
                                    0.05,
                                    0.05,
                                    4.0,
                                    PoisonProfile::Constant,
                                ),
                            )
                            .expect("registered");
                        gateway
                            .set_poison_scope(handle, PoisonScope::Version(*version))
                            .expect("registered");
                        poisoned = true;
                        println!("t={t:4}  !! v{version}'s artifact just corrupted (4x poison)");
                    }
                }
                AutonomyAction::Demoted { version, cause } => {
                    println!("t={t:4}  candidate v{version} demoted ({cause})");
                }
                AutonomyAction::RolledBack { version, cause } => {
                    println!("t={t:4}  rolled back to v{version} ({cause})");
                }
            }
        }
    }

    let final_version = gateway
        .current_version(handle)
        .expect("registered")
        .expect("published");
    let p = gateway.predict(handle, &[3.0], 5000.0).expect("registered");
    println!("\nfinal serving version: v{final_version}");
    println!(
        "predict([3.0]) = {:.4} (world says {:.4})",
        p.value,
        1.3 * 3.0
    );

    let trace = obs.snapshot();
    println!(
        "\ndeployment history ({} records):",
        trace.deployments.len()
    );
    for d in &trace.deployments {
        println!(
            "  t={:6.1}  {:13}  v{}  cause={}",
            d.sim_time,
            d.kind.name(),
            d.version,
            d.cause
        );
    }
    assert!(
        trace.deployments.iter().all(|d| d.cause != "manual"),
        "the loop ran unattended"
    );
    println!("\nno manual publish/rollback anywhere: the loop ran itself.");
}
