//! A guided tour of the SQL front door: lex/parse with caret diagnostics,
//! the phased rewrite pipeline (analyze → canonicalize → optimize → lower)
//! with per-rule outcomes, obs spans over every phase, the round trip back
//! to canonical SQL text, and the template cache that recurring workloads
//! run on.
//!
//! Run with: `cargo run --release --example sql_tour`

use autonomous_data_services::obs::Obs;
use autonomous_data_services::sql::{CachedFrontend, Frontend, QueryRule};
use autonomous_data_services::workload::catalog::Catalog;
use autonomous_data_services::workload::signature::{strict_signature, template_signature};
use autonomous_data_services::workload::sqltext::to_sql;

fn main() {
    let catalog = Catalog::standard();
    let frontend = Frontend::new(&catalog);

    // --- 1. Diagnostics: rejected queries point carets at the offense. ---
    println!("== diagnostics ==");
    for bad in [
        "SELECT * FROM evnts WHERE user_id = 3",
        "SELECT * FROM events WHERE users.user_id = 3",
        "SELECT * FROM events WHERE user_id BETWEEN 1",
    ] {
        let err = frontend.compile(bad, &[]).expect_err("rejected");
        println!("{}\n", err.render(bad));
    }

    // --- 2. Compile: messy text, canonical plan. The rewrite report says
    //        which rules fired. ---
    println!("== rewrite pipeline ==");
    let sql = "SELECT user_id FROM (SELECT * FROM events ORDER BY ts_hour LIMIT 10) \
               WHERE 5 < user_id AND event_type BETWEEN ? AND ? GROUP BY user_id";
    let compiled = frontend.compile(sql, &[2, 8]).expect("compiles");
    for app in &compiled.report.applications {
        println!(
            "  {:<12} {:<24} {}",
            app.phase.name(),
            app.rule.name(),
            app.outcome.name()
        );
    }
    assert!(compiled
        .report
        .changed()
        .contains(&QueryRule::BetweenDesugar));

    // --- 3. Observability: every phase runs under an obs span. ---
    println!("\n== obs spans ==");
    let obs = Obs::recording();
    frontend
        .compile_observed(sql, &[2, 8], &obs, 0.0)
        .expect("compiles");
    for span in &obs.snapshot().spans {
        println!(
            "  {:<12} [{:>4.1}, {:>4.1}]",
            span.name, span.start, span.end
        );
    }

    // --- 4. Round trip: the lowered plan renders back to canonical SQL,
    //        and that text compiles to the identical plan and signatures. ---
    println!("\n== round trip ==");
    let canonical = to_sql(&compiled.plan, &catalog).expect("renders");
    println!("  {canonical}");
    let again = frontend.compile(&canonical, &[]).expect("compiles");
    assert_eq!(again.plan, compiled.plan);
    assert_eq!(
        strict_signature(&again.plan),
        strict_signature(&compiled.plan)
    );
    println!(
        "  strict {} / template {}",
        strict_signature(&compiled.plan),
        template_signature(&compiled.plan)
    );

    // --- 5. The template cache: recurring instances skip the parser and
    //        every rewrite phase — a hit patches a clone of the cached
    //        lowered plan. ---
    println!("\n== template cache ==");
    let cached = CachedFrontend::new(frontend.clone());
    for (low, high) in [(2, 8), (1, 4), (3, 9)] {
        let plan = cached.compile_plan(sql, &[low, high]).expect("compiles");
        let fresh = frontend.compile(sql, &[low, high]).expect("compiles");
        assert_eq!(plan, fresh.plan);
    }
    let (hits, misses) = cached.stats();
    println!("  {hits} hits, {misses} miss — identical plans either path");
}
