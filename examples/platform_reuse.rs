//! The platform layer: the paper's Future Directions made concrete.
//!
//! Walks through Direction 1 (the AlgorithmStore), Direction 2
//! (standardized plan and model interchange), Direction 4 (the RAI
//! assessment gate), and the workload-evolution forecasting that feeds
//! proactive decisions.
//!
//! Run with: `cargo run --release --example platform_reuse`

use autonomous_data_services::core::rai::AssessmentStatus;
use autonomous_data_services::core::{AlgorithmStore, Assessment, Decision};
use autonomous_data_services::ml::bundle::{ModelBundle, ModelKind};
use autonomous_data_services::ml::dataset::Dataset;
use autonomous_data_services::ml::linear::LinearRegression;
use autonomous_data_services::ml::Regressor;
use autonomous_data_services::workload::evolution::{analyze_evolution, Growth};
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};
use autonomous_data_services::workload::interchange::{export_plan, import_plan};

fn main() {
    // --- Direction 1: discover an algorithm template before writing code.
    let store = AlgorithmStore::standard();
    println!("== AlgorithmStore (Direction 1) ==");
    for query in ["tail latency", "power rack", "interchange"] {
        let top = store.search(query);
        let hit = top.first().map_or("(no hit)", |e| e.name.as_str());
        println!("  search '{query}' -> {hit}");
    }

    // --- Direction 2a: ship a query plan across engines.
    let workload = WorkloadGenerator::new(GeneratorConfig {
        days: 6,
        jobs_per_day: 120,
        n_templates: 12,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generates");
    let plan = &workload.trace.jobs()[0].plan;
    let wire = export_plan("adas-engine", plan).expect("exports");
    let received = import_plan(&wire).expect("imports");
    println!("\n== Plan interchange (Direction 2) ==");
    println!(
        "  exported {} bytes of JSON; round-trip identical: {}",
        wire.len(),
        received == *plan
    );

    // --- Direction 2b: package a model for cross-system deployment.
    let pairs: Vec<(f64, f64)> = (0..24).map(|h| (h as f64, 50.0 + 3.0 * h as f64)).collect();
    let model = LinearRegression::fit(&Dataset::from_xy(&pairs).expect("shape")).expect("fits");
    let bundle = ModelBundle::pack(ModelKind::LinearRegression, "load-predictor-v1", &model)
        .expect("packs")
        .with_metadata("trained_on", "fleet-telemetry-2026-07")
        .with_metadata("owner", "gsl");
    let json = bundle.to_json().expect("serializes");
    let restored: LinearRegression = ModelBundle::from_json(&json)
        .expect("parses")
        .unpack(ModelKind::LinearRegression)
        .expect("unpacks");
    println!(
        "  model bundle {} bytes; prediction preserved: {}",
        json.len(),
        { (restored.predict(&[12.0]) - model.predict(&[12.0])).abs() < 1e-12 }
    );

    // --- Workload evolution: what to provision for tomorrow.
    let evolution = analyze_evolution(&workload.trace, 12, 0.1, 3);
    println!("\n== Workload evolution (Sec 4.2) ==");
    println!(
        "  {} templates tracked over {} days; volume trend {:+.1} jobs/day/day",
        evolution.templates.len(),
        evolution.days,
        evolution.volume_trend_per_day
    );
    println!(
        "  emerging: {}, stable: {}, receding: {}",
        evolution.in_class(Growth::Emerging).len(),
        evolution.in_class(Growth::Stable).len(),
        evolution.in_class(Growth::Receding).len()
    );

    // --- Direction 4: the RAI gate before the model ships.
    let mut assessment = Assessment::standard("load-predictor-v1");
    let batch: Vec<Decision> = (0..30)
        .map(|i| Decision {
            predicted_perf: 85.0,
            baseline_perf: 100.0,
            predicted_cost: 10.0,
            baseline_cost: 10.0,
            group: i % 3,
        })
        .collect();
    assessment.run_automated(&batch);
    assessment.attest("privacy-review", true, "telemetry is counters only");
    assessment.attest(
        "transparency-docs",
        true,
        "rationale string shipped with decisions",
    );
    println!("\n== RAI assessment (Direction 4) ==");
    for (id, principle, required, status) in assessment.report() {
        println!(
            "  [{}] {id} ({principle:?}) -> {status:?}",
            if required { "required" } else { "optional" }
        );
    }
    println!(
        "  verdict: {:?} -> deployment {}",
        assessment.status(),
        if assessment.status() == AssessmentStatus::Approved {
            "unblocked"
        } else {
            "blocked"
        }
    );
}
