//! The platform layer: the paper's Future Directions made concrete.
//!
//! Walks through Direction 1 (the AlgorithmStore), Direction 2
//! (standardized plan and model interchange), Direction 4 (the RAI
//! assessment gate), and the workload-evolution forecasting that feeds
//! proactive decisions. Progress is recorded as obs events and printed as
//! machine-parseable JSON lines.
//!
//! Run with: `cargo run --release --example platform_reuse`

use autonomous_data_services::core::rai::AssessmentStatus;
use autonomous_data_services::core::{AlgorithmStore, Assessment, Decision};
use autonomous_data_services::ml::bundle::{ModelBundle, ModelKind};
use autonomous_data_services::ml::dataset::Dataset;
use autonomous_data_services::ml::linear::LinearRegression;
use autonomous_data_services::ml::Regressor;
use autonomous_data_services::obs::Obs;
use autonomous_data_services::workload::evolution::{analyze_evolution, Growth};
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};
use autonomous_data_services::workload::interchange::{export_plan, import_plan};

/// Records a progress event and prints it as one JSON line.
fn emit(obs: &Obs, name: &str, fields: &[(&str, &str)]) {
    obs.event("example.platform_reuse", name, 0.0, fields);
    println!("{}", obs.last_event_json().expect("recording"));
}

fn main() {
    let obs = Obs::recording();

    // --- Direction 1: discover an algorithm template before writing code.
    let store = AlgorithmStore::standard();
    for query in ["tail latency", "power rack", "interchange"] {
        let top = store.search(query);
        let hit = top.first().map_or("(no hit)", |e| e.name.as_str());
        emit(
            &obs,
            "algorithm_store_search",
            &[("query", query), ("top_hit", hit)],
        );
    }

    // --- Direction 2a: ship a query plan across engines.
    let workload = WorkloadGenerator::new(GeneratorConfig {
        days: 6,
        jobs_per_day: 120,
        n_templates: 12,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generates");
    let plan = &workload.trace.jobs()[0].plan;
    let wire = export_plan("adas-engine", plan).expect("exports");
    let received = import_plan(&wire).expect("imports");
    emit(
        &obs,
        "plan_interchange",
        &[
            ("wire_bytes", &wire.len().to_string()),
            ("round_trip_identical", &(received == *plan).to_string()),
        ],
    );

    // --- Direction 2b: package a model for cross-system deployment.
    let pairs: Vec<(f64, f64)> = (0..24).map(|h| (h as f64, 50.0 + 3.0 * h as f64)).collect();
    let model = LinearRegression::fit(&Dataset::from_xy(&pairs).expect("shape")).expect("fits");
    let bundle = ModelBundle::pack(ModelKind::LinearRegression, "load-predictor-v1", &model)
        .expect("packs")
        .with_metadata("trained_on", "fleet-telemetry-2026-07")
        .with_metadata("owner", "gsl");
    let json = bundle.to_json().expect("serializes");
    let restored: LinearRegression = ModelBundle::from_json(&json)
        .expect("parses")
        .unpack(ModelKind::LinearRegression)
        .expect("unpacks");
    let preserved = (restored.predict(&[12.0]) - model.predict(&[12.0])).abs() < 1e-12;
    emit(
        &obs,
        "model_bundle_roundtrip",
        &[
            ("bundle_bytes", &json.len().to_string()),
            ("prediction_preserved", &preserved.to_string()),
        ],
    );

    // --- Workload evolution: what to provision for tomorrow.
    let evolution = analyze_evolution(&workload.trace, 12, 0.1, 3);
    emit(
        &obs,
        "workload_evolution",
        &[
            ("templates", &evolution.templates.len().to_string()),
            ("days", &evolution.days.to_string()),
            (
                "volume_trend_jobs_per_day_per_day",
                &format!("{:+.1}", evolution.volume_trend_per_day),
            ),
            (
                "emerging",
                &evolution.in_class(Growth::Emerging).len().to_string(),
            ),
            (
                "stable",
                &evolution.in_class(Growth::Stable).len().to_string(),
            ),
            (
                "receding",
                &evolution.in_class(Growth::Receding).len().to_string(),
            ),
        ],
    );

    // --- Direction 4: the RAI gate before the model ships.
    let mut assessment = Assessment::standard("load-predictor-v1");
    let batch: Vec<Decision> = (0..30)
        .map(|i| Decision {
            predicted_perf: 85.0,
            baseline_perf: 100.0,
            predicted_cost: 10.0,
            baseline_cost: 10.0,
            group: i % 3,
        })
        .collect();
    assessment.run_automated(&batch);
    assessment.attest("privacy-review", true, "telemetry is counters only");
    assessment.attest(
        "transparency-docs",
        true,
        "rationale string shipped with decisions",
    );
    for (id, principle, required, status) in assessment.report() {
        emit(
            &obs,
            "rai_check",
            &[
                ("check", id),
                ("principle", &format!("{principle:?}")),
                ("required", &required.to_string()),
                ("status", &format!("{status:?}")),
            ],
        );
    }
    emit(
        &obs,
        "rai_verdict",
        &[
            ("status", &format!("{:?}", assessment.status())),
            (
                "deployment",
                if assessment.status() == AssessmentStatus::Approved {
                    "unblocked"
                } else {
                    "blocked"
                },
            ),
        ],
    );
}
