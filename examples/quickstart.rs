//! Quickstart: the autonomy loop in one file.
//!
//! Generates a SCOPE-like workload, analyzes it (Peregrine), trains
//! cardinality micromodels on the history (CLEO), wires the learned model
//! into a guarded deployment with a live feedback loop, and shows a
//! rollback firing when the world drifts. The whole loop records itself
//! into a flight-recorder trace, and progress is printed as
//! machine-parseable JSON event lines.
//!
//! Run with: `cargo run --release --example quickstart`

use autonomous_data_services::core::{
    Decision, FeedbackLoop, GuardrailSet, LoopConfig, ModelRegistry, MonitorVerdict, Verdict,
};
use autonomous_data_services::engine::cardinality::{CardinalityModel, TrueCardinality};
use autonomous_data_services::learned::cardinality::{LearnedCardinality, TrainConfig};
use autonomous_data_services::obs::{digest_f64, Obs, Provenance};
use autonomous_data_services::workload::analyze::WorkloadAnalysis;
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};

/// Records a progress event and prints it as one JSON line.
fn emit(obs: &Obs, name: &str, fields: &[(&str, &str)]) {
    obs.event("example.quickstart", name, 0.0, fields);
    println!("{}", obs.last_event_json().expect("recording"));
}

fn main() {
    let obs = Obs::recording();

    // 1. A week of synthetic SCOPE-like workload, calibrated to the paper's
    //    published statistics.
    let workload = WorkloadGenerator::new(GeneratorConfig::default())
        .expect("default config is valid")
        .generate()
        .expect("generation succeeds");
    emit(
        &obs,
        "workload_generated",
        &[("jobs", &workload.trace.len().to_string()), ("days", "7")],
    );

    // 2. Workload analysis: recurrence, sharing, dependencies.
    let analysis = WorkloadAnalysis::analyze(&workload.trace);
    let stats = analysis.stats();
    emit(
        &obs,
        "workload_analyzed",
        &[
            (
                "recurring_pct",
                &format!("{:.0}", stats.recurring_fraction * 100.0),
            ),
            (
                "shared_subexpression_pct",
                &format!("{:.0}", stats.shared_subexpression_fraction * 100.0),
            ),
            (
                "pipeline_pct",
                &format!("{:.0}", stats.dependent_fraction * 100.0),
            ),
        ],
    );

    // 3. Train per-template cardinality micromodels on the history.
    let plans: Vec<_> = workload
        .trace
        .jobs()
        .iter()
        .map(|j| j.plan.clone())
        .collect();
    let (model, report) =
        LearnedCardinality::train(&workload.catalog, &plans, TrainConfig::default());
    emit(
        &obs,
        "micromodels_trained",
        &[
            ("kept", &report.models_kept.to_string()),
            ("trained", &report.templates_trained.to_string()),
            ("default_q_error", &format!("{:.2}", report.default_q_error)),
            ("learned_q_error", &format!("{:.2}", report.learned_q_error)),
        ],
    );

    // 4. Deploy behind guardrails with a monitored feedback loop; every
    //    verdict lands in the flight recorder with the model's provenance.
    let guards = GuardrailSet::standard().with_obs(obs.clone());
    let decision = Decision {
        predicted_perf: 82.0,
        baseline_perf: 100.0,
        predicted_cost: 10.2,
        baseline_cost: 10.0,
        group: 0,
    };
    let provenance = Provenance::new(
        "learned-cardinality",
        1,
        digest_f64([
            decision.predicted_perf,
            decision.baseline_perf,
            decision.predicted_cost,
            decision.baseline_cost,
        ]),
    );
    match guards.check_recorded(&decision, &provenance, 0.0) {
        Verdict::Allow => emit(&obs, "deployment_gate", &[("verdict", "allow")]),
        Verdict::Block(reason) => emit(
            &obs,
            "deployment_gate",
            &[("verdict", "block"), ("reason", &reason)],
        ),
    }

    let mut registry = ModelRegistry::with_obs(obs.clone());
    registry.deploy("learned-cardinality-v1", report.learned_q_error);
    let mut feedback = FeedbackLoop::with_obs(
        LoopConfig {
            window: 20,
            ..Default::default()
        },
        obs.clone(),
    );

    // Healthy phase: live predictions track the truth.
    let truth = TrueCardinality::new(&workload.catalog);
    let mut last_verdict = MonitorVerdict::Warming;
    for (tick, job) in workload.trace.jobs().iter().take(40).enumerate() {
        let predicted = model.estimate(&job.plan).expect("plan validates").ln();
        let actual = truth.estimate(&job.plan).expect("plan validates").ln();
        last_verdict = feedback.observe_recorded(
            predicted,
            actual,
            registry.current().expect("deployed").deployment_error,
            &Provenance::new("learned-cardinality", 1, digest_f64([predicted, actual])),
            1,
            tick as f64,
        );
    }
    emit(
        &obs,
        "feedback_healthy_phase",
        &[("verdict", &format!("{last_verdict:?}"))],
    );

    // Drift phase: the world changes; errors explode; the loop rolls back.
    registry.deploy("learned-cardinality-v2", report.learned_q_error);
    feedback.reset();
    for i in 0..40 {
        let (predicted, actual) = (0.0, 10.0 + i as f64);
        let verdict = feedback.observe_recorded(
            predicted,
            actual,
            0.05,
            &Provenance::new("learned-cardinality", 2, digest_f64([predicted, actual])),
            1,
            (40 + i) as f64,
        );
        if verdict == MonitorVerdict::Rollback {
            registry.rollback();
            emit(
                &obs,
                "feedback_drift_phase",
                &[
                    ("verdict", "rollback"),
                    ("restored", registry.current().expect("deployed").model),
                ],
            );
            break;
        }
    }

    // 5. The flight recorder now holds the whole session: ask it which
    //    decisions drifted past 2x predicted/observed error.
    let trace = obs.snapshot();
    let drifted = trace
        .query()
        .component("core.feedback")
        .min_error_factor(2.0)
        .decisions();
    emit(
        &obs,
        "session_summary",
        &[
            ("versions_deployed", &registry.version_count().to_string()),
            ("decisions_recorded", &trace.decisions.len().to_string()),
            ("decisions_drifted_2x", &drifted.len().to_string()),
        ],
    );
}
