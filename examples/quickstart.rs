//! Quickstart: the autonomy loop in one file.
//!
//! Generates a SCOPE-like workload, analyzes it (Peregrine), trains
//! cardinality micromodels on the history (CLEO), wires the learned model
//! into a guarded deployment with a live feedback loop, and shows a
//! rollback firing when the world drifts.
//!
//! Run with: `cargo run --release --example quickstart`

use autonomous_data_services::core::{
    Decision, FeedbackLoop, GuardrailSet, LoopConfig, ModelRegistry, MonitorVerdict, Verdict,
};
use autonomous_data_services::engine::cardinality::{CardinalityModel, TrueCardinality};
use autonomous_data_services::learned::cardinality::{LearnedCardinality, TrainConfig};
use autonomous_data_services::workload::analyze::WorkloadAnalysis;
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};

fn main() {
    // 1. A week of synthetic SCOPE-like workload, calibrated to the paper's
    //    published statistics.
    let workload = WorkloadGenerator::new(GeneratorConfig::default())
        .expect("default config is valid")
        .generate()
        .expect("generation succeeds");
    println!("generated {} jobs over {} days", workload.trace.len(), 7);

    // 2. Workload analysis: recurrence, sharing, dependencies.
    let analysis = WorkloadAnalysis::analyze(&workload.trace);
    let stats = analysis.stats();
    println!(
        "analysis: {:.0}% recurring, {:.0}% share subexpressions, {:.0}% in pipelines",
        stats.recurring_fraction * 100.0,
        stats.shared_subexpression_fraction * 100.0,
        stats.dependent_fraction * 100.0
    );

    // 3. Train per-template cardinality micromodels on the history.
    let plans: Vec<_> = workload
        .trace
        .jobs()
        .iter()
        .map(|j| j.plan.clone())
        .collect();
    let (model, report) =
        LearnedCardinality::train(&workload.catalog, &plans, TrainConfig::default());
    println!(
        "micromodels: kept {}/{} trained; median q-error {:.2} -> {:.2}",
        report.models_kept,
        report.templates_trained,
        report.default_q_error,
        report.learned_q_error
    );

    // 4. Deploy behind guardrails with a monitored feedback loop.
    let guards = GuardrailSet::standard();
    let decision = Decision {
        predicted_perf: 82.0,
        baseline_perf: 100.0,
        predicted_cost: 10.2,
        baseline_cost: 10.0,
        group: 0,
    };
    match guards.check(&decision) {
        Verdict::Allow => println!("guardrails: deployment allowed"),
        Verdict::Block(reason) => println!("guardrails: blocked ({reason})"),
    }

    let mut registry = ModelRegistry::new();
    registry.deploy("learned-cardinality-v1", report.learned_q_error);
    let mut feedback = FeedbackLoop::new(LoopConfig {
        window: 20,
        ..Default::default()
    });

    // Healthy phase: live predictions track the truth.
    let truth = TrueCardinality::new(&workload.catalog);
    let mut last_verdict = MonitorVerdict::Warming;
    for job in workload.trace.jobs().iter().take(40) {
        let predicted = model.estimate(&job.plan).expect("plan validates").ln();
        let actual = truth.estimate(&job.plan).expect("plan validates").ln();
        last_verdict = feedback.observe(
            predicted,
            actual,
            registry.current().expect("deployed").deployment_error,
        );
    }
    println!("feedback loop (healthy phase): {last_verdict:?}");

    // Drift phase: the world changes; errors explode; the loop rolls back.
    registry.deploy("learned-cardinality-v2", report.learned_q_error);
    feedback.reset();
    for i in 0..40 {
        let verdict = feedback.observe(0.0, 10.0 + i as f64, 0.05);
        if verdict == MonitorVerdict::Rollback {
            registry.rollback();
            println!(
                "feedback loop (drift phase): rolled back to `{}`",
                registry.current().expect("deployed").model
            );
            break;
        }
    }
    println!(
        "model versions deployed over the session: {}",
        registry.version_count()
    );
}
