//! Doppler walk-through: migrating on-prem databases to the cloud with
//! segment models plus a per-customer price-performance ranking. Every
//! recommendation is recorded into the flight recorder with the segment
//! model's provenance, and progress is printed as JSON event lines.
//!
//! Run with: `cargo run --release --example sku_migration`

use autonomous_data_services::core::{AlgorithmStore, Category};
use autonomous_data_services::obs::{digest_f64, Obs, Provenance};
use autonomous_data_services::service::doppler::{
    evaluate, generate_customers, standard_skus, true_best_sku, Doppler,
};

/// Records a progress event and prints it as one JSON line.
fn emit(obs: &Obs, name: &str, fields: &[(&str, &str)]) {
    obs.event("example.sku_migration", name, 0.0, fields);
    println!("{}", obs.last_event_json().expect("recording"));
}

fn main() {
    let obs = Obs::recording();

    // The AlgorithmStore is how a new team would discover this capability.
    let store = AlgorithmStore::standard();
    let hits = store.search("segment cluster");
    for entry in hits.iter().take(3) {
        emit(
            &obs,
            "algorithm_store_hit",
            &[
                ("name", &entry.name),
                ("description", &entry.description),
                ("implementation", &entry.implementation),
            ],
        );
    }
    emit(
        &obs,
        "algorithm_store_stats",
        &[(
            "classification_templates",
            &store
                .by_category(Category::Classification)
                .len()
                .to_string(),
        )],
    );

    // Train on the existing Azure customer population, evaluate on new
    // migrating customers. Each recommendation is a flight-recorder
    // decision: which SKU the segment model picked vs. the ground truth.
    let skus = standard_skus();
    let train = generate_customers(1600, 8, 0.12, 3);
    let migrating = generate_customers(12, 8, 0.12, 99);
    let doppler = Doppler::train(&train, skus.clone(), 8, 7).expect("k <= population");

    for (i, customer) in migrating.iter().enumerate() {
        let truth = true_best_sku(&skus, customer);
        let rec = doppler.recommend(customer);
        let naive = doppler.naive(customer);
        obs.record_decision(
            "example.sku_migration",
            "sku_recommendation",
            &Provenance::new(
                "doppler-segment-model",
                1,
                digest_f64([customer.observed_vcores, customer.observed_memory_gb]),
            ),
            rec.map_or(-1.0, |s| s as f64),
            truth.map(|s| s as f64),
            if rec == truth { "match" } else { "mismatch" },
            false,
            0,
            i as f64,
        );
        emit(
            &obs,
            "customer_recommended",
            &[
                ("customer", &format!("cust-{i}")),
                (
                    "observed_vcores",
                    &format!("{:.1}", customer.observed_vcores),
                ),
                (
                    "observed_memory_gb",
                    &format!("{:.1}", customer.observed_memory_gb),
                ),
                (
                    "truth",
                    &truth.map(|s| skus[s].name.clone()).unwrap_or_default(),
                ),
                (
                    "doppler",
                    &rec.map(|s| skus[s].name.clone()).unwrap_or_default(),
                ),
                (
                    "naive",
                    &naive.map(|s| skus[s].name.clone()).unwrap_or_default(),
                ),
            ],
        );
    }

    // The price-performance curve for one customer: the "customized rank of
    // all SKU options" the paper describes.
    let customer = &migrating[0];
    for (rank, idx) in doppler
        .price_performance_rank(customer)
        .iter()
        .take(4)
        .enumerate()
    {
        let sku = &skus[*idx];
        emit(
            &obs,
            "price_performance_rank",
            &[
                ("customer", "cust-0"),
                ("rank", &rank.to_string()),
                ("sku", &sku.name),
                ("vcores", &sku.vcores.to_string()),
                ("memory_gb", &sku.memory_gb.to_string()),
                ("price_per_month", &sku.price.to_string()),
            ],
        );
    }

    // Fleet-level accuracy, cross-checked against the flight recorder.
    let test = generate_customers(400, 8, 0.12, 4);
    let report = evaluate(&doppler, &test);
    let trace = obs.snapshot();
    let mismatches = trace
        .query()
        .model("doppler-segment-model")
        .decisions()
        .iter()
        .filter(|d| d.verdict == "mismatch")
        .count();
    emit(
        &obs,
        "fleet_accuracy",
        &[
            ("customers", &report.customers.to_string()),
            (
                "doppler_accuracy_pct",
                &format!("{:.1}", report.doppler_accuracy * 100.0),
            ),
            (
                "naive_accuracy_pct",
                &format!("{:.1}", report.naive_accuracy * 100.0),
            ),
            ("paper_claim_pct", ">95"),
            ("migrating_mismatches_recorded", &mismatches.to_string()),
        ],
    );
}
