//! Doppler walk-through: migrating on-prem databases to the cloud with
//! segment models plus a per-customer price-performance ranking.
//!
//! Run with: `cargo run --release --example sku_migration`

use autonomous_data_services::core::{AlgorithmStore, Category};
use autonomous_data_services::service::doppler::{
    evaluate, generate_customers, standard_skus, true_best_sku, Doppler,
};

fn main() {
    // The AlgorithmStore is how a new team would discover this capability.
    let store = AlgorithmStore::standard();
    let hits = store.search("segment cluster");
    println!("AlgorithmStore search for 'segment cluster':");
    for entry in hits.iter().take(3) {
        println!(
            "  {} — {} ({})",
            entry.name, entry.description, entry.implementation
        );
    }
    println!(
        "  ({} classification templates total)\n",
        store.by_category(Category::Classification).len()
    );

    // Train on the existing Azure customer population, evaluate on new
    // migrating customers.
    let skus = standard_skus();
    let train = generate_customers(1600, 8, 0.12, 3);
    let migrating = generate_customers(12, 8, 0.12, 99);
    let doppler = Doppler::train(&train, skus.clone(), 8, 7).expect("k <= population");

    println!(
        "{:<10} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "customer", "obs vcores", "obs mem", "truth", "doppler", "naive"
    );
    for (i, customer) in migrating.iter().enumerate() {
        let truth = true_best_sku(&skus, customer).map(|s| skus[s].name.clone());
        let rec = doppler.recommend(customer).map(|s| skus[s].name.clone());
        let naive = doppler.naive(customer).map(|s| skus[s].name.clone());
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>9} {:>9} {:>8}",
            format!("cust-{i}"),
            customer.observed_vcores,
            customer.observed_memory_gb,
            truth.unwrap_or_default(),
            rec.unwrap_or_default(),
            naive.unwrap_or_default()
        );
    }

    // The price-performance curve for one customer: the "customized rank of
    // all SKU options" the paper describes.
    let customer = &migrating[0];
    println!("\nprice-performance rank for cust-0 (cheapest fitting first):");
    for idx in doppler.price_performance_rank(customer).iter().take(4) {
        let sku = &skus[*idx];
        println!(
            "  {} — {} vcores, {} GB, ${}/mo",
            sku.name, sku.vcores, sku.memory_gb, sku.price
        );
    }

    // Fleet-level accuracy.
    let test = generate_customers(400, 8, 0.12, 4);
    let report = evaluate(&doppler, &test);
    println!(
        "\naccuracy over {} customers: Doppler {:.1}% vs naive profile rule {:.1}% (paper: >95%)",
        report.customers,
        report.doppler_accuracy * 100.0,
        report.naive_accuracy * 100.0
    );
}
