//! Serving-layer tour: the optimizer behind the model-serving gateway.
//!
//! Trains cardinality micromodels on a recurring workload, publishes them
//! into a [`Gateway`] (versioned, cached, circuit-breaker-guarded), and
//! optimizes plans three ways:
//!
//! 1. healthy serving — recurring templates hit the prediction cache;
//! 2. a simulated model outage — timeouts trip the per-model breaker and
//!    the optimizer keeps running on the engine-default fallback;
//! 3. recovery — half-open probes close the breaker and serving resumes.
//!
//! Run with: `cargo run --release --example serving_gateway`

use autonomous_data_services::faultsim::ModelFaults;
use autonomous_data_services::learned::cardinality::{LearnedCardinality, TrainConfig};
use autonomous_data_services::learned::serving::cardinality_model_name;
use autonomous_data_services::obs::Obs;
use autonomous_data_services::serve::{BreakerState, Gateway, GatewayConfig};
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};
use autonomous_data_services::workload::signature::template_signature;

use autonomous_data_services::engine::rules::{Optimizer, RuleSet};

fn main() {
    let workload = WorkloadGenerator::new(GeneratorConfig {
        days: 6,
        jobs_per_day: 150,
        n_templates: 20,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generation succeeds");
    let plans: Vec<_> = workload
        .trace
        .jobs()
        .iter()
        .map(|j| j.plan.clone())
        .collect();

    // Train the in-process artifact, then publish it: the optimizer only
    // ever sees the gateway from here on.
    let (trained, report) =
        LearnedCardinality::train(&workload.catalog, &plans, TrainConfig::default());
    let obs = Obs::recording();
    let gateway = Gateway::with_obs(GatewayConfig::standard(), obs.clone());
    let served = trained.publish(&gateway);
    println!(
        "published {} cardinality micromodels (of {} templates trained)",
        served.served_count(),
        report.templates_seen
    );

    // --- 1. Healthy serving. Two optimization passes over the same job
    //     set: re-optimizing a recurring job (identical features ⇒ same
    //     cache key) is answered from the prediction cache.
    let optimizer = Optimizer::default();
    for pass in 0..2 {
        for (i, plan) in plans.iter().take(200).enumerate() {
            served.set_sim_time((pass * 200 + i) as f64);
            optimizer
                .optimize(plan, RuleSet::all(), &served)
                .expect("plan validates");
        }
    }
    let stats = gateway.stats();
    println!(
        "healthy: {} requests, cache hit rate {:.2}, {} model calls",
        stats.requests, stats.cache_hit_rate, stats.model_calls
    );

    // --- 2. Outage: the busiest template's model starts timing out.
    let busiest = plans
        .iter()
        .map(template_signature)
        .find(|sig| gateway.resolve(&cardinality_model_name(*sig)).is_some())
        .expect("at least one covered template");
    let handle = gateway
        .resolve(&cardinality_model_name(busiest))
        .expect("resolved above");
    gateway
        .inject_faults(handle, ModelFaults::new(17, 0.0, 1.0, 1.0))
        .expect("registered");
    let affected: Vec<_> = plans
        .iter()
        .filter(|p| template_signature(p) == busiest)
        .take(40)
        .collect();
    for (i, plan) in affected.iter().enumerate() {
        served.set_sim_time(1_000.0 + i as f64);
        optimizer
            .optimize(plan, RuleSet::all(), &served)
            .expect("degraded optimization still completes");
    }
    println!(
        "outage: breaker {:?}, {} fallback serves, optimization never stopped",
        gateway.breaker_state(handle).expect("registered"),
        gateway.stats().fallbacks
    );

    // --- 3. Recovery: clear the faults; probes close the breaker.
    gateway.clear_faults(handle).expect("registered");
    for (i, plan) in affected.iter().enumerate() {
        served.set_sim_time(2_000.0 + i as f64);
        optimizer
            .optimize(plan, RuleSet::all(), &served)
            .expect("plan validates");
    }
    assert_eq!(
        gateway.breaker_state(handle).expect("registered"),
        BreakerState::Closed
    );
    println!("recovery: breaker closed, serving restored");

    let trace = obs.snapshot();
    let transitions = trace
        .events
        .iter()
        .filter(|e| e.name == "breaker_transition")
        .count();
    let degraded = trace
        .decisions
        .iter()
        .filter(|d| d.decision == "degraded_serve")
        .count();
    println!(
        "flight recorder: {} breaker transitions, {} degraded-serve decisions",
        transitions, degraded
    );
}
