//! Watchtower, end to end: run the autonomy chaos drill, export its trace
//! to JSON the way an operator would (`obs.export_stream` into a file),
//! then analyze it in-process — SLO burn rates, the reconstructed
//! incident, and the critical-path profile.
//!
//! The same file works with the CLI:
//!
//! ```text
//! cargo run --release --example watchtower_tour
//! cargo run --release -p adas-watchtower --bin tracectl -- incidents target/watchtower_tour_trace.json
//! ```
//!
//! Run with: `cargo run --release --example watchtower_tour`

use autonomous_data_services::core::feedback::LoopConfig;
use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::{ClusterConfig, SimOptions, Simulator};
use autonomous_data_services::engine::physical::StageDag;
use autonomous_data_services::faultsim::{ModelFaults, PoisonProfile};
use autonomous_data_services::obs::{Obs, DEFAULT_EXPORT_CHUNK};
use autonomous_data_services::serve::{
    AutonomyAction, AutonomyConfig, AutonomyController, CanaryConfig, FnModel, Gateway,
    GatewayConfig, PoisonScope, ServableModel, SloPolicy,
};
use autonomous_data_services::watchtower::{analyze, default_specs};
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};
use std::io::Write;
use std::sync::Arc;

fn main() {
    // --- Produce: the poison → rollback chaos drill (seed 7). ---
    let obs = Obs::recording();
    let mut config = GatewayConfig::standard();
    config.cache_capacity = 0;
    config.breaker.guard_factor = 2.0;
    config.breaker.failure_threshold = 4;
    config.breaker.cooldown_ticks = 8.0;
    let gateway = Gateway::with_obs(config, obs.clone());
    let handle = gateway.register("demo/cardinality", |f: &[f64]| f[0]);
    let mut ctl = AutonomyController::new(gateway.clone(), obs.clone());
    ctl.supervise(
        handle,
        AutonomyConfig {
            monitor: LoopConfig {
                window: 20,
                retrain_factor: 1.5,
                rollback_factor: 8.0,
            },
            canary: CanaryConfig {
                traffic_pct: 30,
                shadow_first: true,
                min_decisions: 10,
                promote_streak: 2,
                demote_streak: 2,
                promote_error_factor: 1.2,
                demote_error_factor: 2.0,
                restage_backoff_ticks: 16.0,
                max_restage_backoff_ticks: 128.0,
            },
            slo: SloPolicy::default(),
            guarded_streak: 4,
            breaker_open_streak: 10,
            retrain_cooldown_ticks: 8.0,
            min_retrain_observations: 20,
        },
        Box::new(|history: &[(Vec<f64>, f64)]| {
            let (num, den) = history
                .iter()
                .fold((0.0, 0.0), |(n, d), (f, y)| (n + f[0] * y, d + f[0] * f[0]));
            let a = num / den.max(1e-12);
            Some((
                Arc::new(FnModel(move |f: &[f64]| a * f[0])) as Arc<dyn ServableModel>,
                0.01,
            ))
        }),
    );
    ctl.install(handle, Arc::new(FnModel(|f: &[f64]| 1.05 * f[0])), 0.2, 0.0)
        .expect("bootstrap install");

    let mut promoted = None;
    let mut poisoned = false;
    for t in 0..2000u64 {
        let sim_time = t as f64;
        let features = [1.0 + (t % 5) as f64];
        let p = gateway
            .predict(handle, &features, sim_time)
            .expect("serves");
        let actual = 1.3 * features[0];
        let step = ctl
            .observe(handle, &features, &p, actual, sim_time)
            .expect("observes");
        for a in &step {
            if let AutonomyAction::Promoted { version } = a {
                promoted.get_or_insert(*version);
            }
        }
        if !poisoned {
            if let Some(v) = promoted {
                gateway
                    .set_poison_scope_at(handle, PoisonScope::Version(v), sim_time)
                    .expect("scopes");
                gateway
                    .inject_faults_at(
                        handle,
                        ModelFaults::with_profile(7, 0.05, 0.05, 4.0, PoisonProfile::Constant),
                        sim_time,
                    )
                    .expect("injects");
                poisoned = true;
            }
        }
    }

    // --- A few engine jobs under the same recorder: the gateway drill has
    // no spans, so this gives the critical-path profiler a DAG to walk. ---
    let workload = WorkloadGenerator::new(GeneratorConfig {
        days: 1,
        jobs_per_day: 6,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generates");
    let cost_model = CostModel::default();
    let sim = Simulator::with_obs(ClusterConfig::default(), obs.clone()).expect("valid cluster");
    for job in workload.trace.jobs() {
        let dag = StageDag::compile(&job.plan, &workload.catalog, &cost_model).expect("compiles");
        sim.run(&dag, &SimOptions::default()).expect("simulates");
    }

    // --- Export: stream the trace to a JSON file, chunk by chunk. ---
    let path = "target/watchtower_tour_trace.json";
    std::fs::create_dir_all("target").expect("target dir");
    let mut file = std::io::BufWriter::new(std::fs::File::create(path).expect("creates"));
    obs.export_stream(DEFAULT_EXPORT_CHUNK, |chunk| {
        file.write_all(chunk.as_bytes()).expect("writes");
    });
    file.flush().expect("flushes");
    println!("trace exported to {path}");
    println!("(try: cargo run --release -p adas-watchtower --bin tracectl -- incidents {path})\n");

    // --- Analyze: the same three artifacts tracectl would print. ---
    let trace = obs.snapshot();
    let report = analyze(&trace, &default_specs());

    for spec in &report.slo.specs {
        let burned: Vec<_> = spec.windows.iter().filter(|w| w.burn > 1.0).collect();
        println!(
            "slo {:<22} {} complete windows, {} over budget, {} alerts",
            spec.spec.name,
            spec.windows.len(),
            burned.len(),
            spec.alerts.len()
        );
    }

    for incident in &report.incidents.incidents {
        let resolution = incident
            .resolution
            .as_ref()
            .map(|r| format!("{} v{} ({})", r.kind, r.version, r.cause))
            .unwrap_or_else(|| "unresolved".to_string());
        println!(
            "\nincident #{} on {}: opened t={:.0}, root cause [{}] {}",
            incident.id,
            incident.model,
            incident.opened_at,
            incident.root_cause.stage,
            incident.root_cause.detail
        );
        println!(
            "  {} degraded serves, {} breaker transitions → {}",
            incident.degraded_serves, incident.breaker_transitions, resolution
        );
    }

    let cp = &report.critical_path;
    println!(
        "\ncritical path: {:.0} of {:.0} ticks across {} spans ({:.0} idle)",
        cp.path_ticks,
        cp.total_ticks,
        cp.path.len(),
        cp.idle_ticks
    );
    for c in &cp.self_time {
        println!("  {:<18} {:>8.1} self ticks", c.component, c.self_ticks);
    }
}
