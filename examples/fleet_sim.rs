//! Simulation-kernel tour: one clock under the whole stack.
//!
//! Three stops, per ISSUE 9:
//!
//! 1. **The raw kernel.** A custom fleet component on `simkern` — machines
//!    as slots, jobs as arrival events, completions as future events — to
//!    show how the `(time, seq)` event queue, the component `Ctx`, and the
//!    seeded RNG streams fit together.
//! 2. **Pipelined scheduling.** The capability the refactor bought: with
//!    the optimizer and the cluster as independent components on one
//!    clock, optimizing job *n+1* overlaps executing job *n*, and the
//!    makespan drops accordingly.
//! 3. **Equivalence.** The ports changed the *mechanism*, not the
//!    numbers: the kernel-backed cluster simulator reproduces the legacy
//!    blocking loop bit for bit.
//!
//! Run with: `cargo run --release --example fleet_sim`

use std::cell::RefCell;
use std::rc::Rc;

use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::{ClusterConfig, SimOptions, Simulator};
use autonomous_data_services::engine::physical::StageDag;
use autonomous_data_services::obs::Obs;
use autonomous_data_services::pipeline::{schedule_pipelined, OptimizerMode, Policy};
use autonomous_data_services::simkern::{Component, Ctx, Simulation};
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};
use autonomous_data_services::workload::job::Job;

// ---------------------------------------------------- stop 1: raw kernel

/// Events of the toy fleet: jobs arrive, machines finish them later.
enum FleetEvent {
    Arrive(u32),
    Finish,
}

/// A small fleet: each arriving job queues on a machine (round-robin) for
/// a seeded service time, and its completion comes back as a future event.
/// The component never loops over time — it only reacts to events, and the
/// kernel's clock is the only clock.
struct Fleet {
    machine_free: Vec<f64>,
    completed: u32,
    makespan: f64,
}

impl Component<FleetEvent> for Fleet {
    fn on_event(&mut self, event: &FleetEvent, ctx: &mut Ctx<'_, FleetEvent>) {
        match *event {
            FleetEvent::Arrive(job) => {
                let machine = job as usize % self.machine_free.len();
                // Per-salt RNG stream: reproducible, and insensitive to
                // how many draws any other component makes.
                let service = ctx.rng(0xF1EE7).range_f64(1.0, 6.0);
                let finish = self.machine_free[machine].max(ctx.time()) + service;
                self.machine_free[machine] = finish;
                // Absolute-time emit: the completion fires at exactly the
                // instant the schedule computed.
                ctx.emit_self_at(FleetEvent::Finish, finish);
            }
            FleetEvent::Finish => {
                self.completed += 1;
                self.makespan = ctx.time();
            }
        }
    }
}

fn raw_kernel_tour() {
    const MACHINES: usize = 50;
    const JOBS: u32 = 1_000;
    let fleet = Rc::new(RefCell::new(Fleet {
        machine_free: vec![0.0; MACHINES],
        completed: 0,
        makespan: 0.0,
    }));
    let mut sim: Simulation<FleetEvent> = Simulation::new(42);
    let id = sim.add_component(fleet.clone());
    for job in 0..JOBS {
        sim.schedule_at(job as f64 * 0.05, id, FleetEvent::Arrive(job));
    }
    let events = sim.run();
    let fleet = fleet.borrow();
    println!(
        "[kernel] {MACHINES} machines, {JOBS} jobs: {events} events, \
         makespan {:.2} ticks, clock ended at {:.2}",
        fleet.makespan,
        sim.now()
    );
    assert_eq!(fleet.completed, JOBS);
}

// -------------------------------------------- stop 2: pipelined schedule

fn pipelined_tour() {
    // A queued backlog: every generated job resubmitted at time zero.
    let workload = WorkloadGenerator::new(GeneratorConfig {
        days: 1,
        jobs_per_day: 40,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generates");
    let backlog: Vec<Job> = workload
        .trace
        .jobs()
        .iter()
        .map(|j| Job {
            submit_time: 0,
            ..j.clone()
        })
        .collect();
    let trace = autonomous_data_services::workload::job::Trace::new(backlog);
    let opt_secs = 60.0;
    let run = |mode: OptimizerMode| {
        schedule_pipelined(
            &trace,
            &workload.catalog,
            4,
            1e7,
            opt_secs,
            Policy::CriticalPath,
            mode,
            &Obs::disabled(),
        )
        .expect("schedules")
        .makespan
    };
    let serial = run(OptimizerMode::Serial);
    let pipelined = run(OptimizerMode::Pipelined);
    println!(
        "[pipeline] {} jobs, 4 slots, {opt_secs:.0}s optimizer: serial makespan {serial:.0}, \
         pipelined {pipelined:.0} ({:.2}x faster)",
        trace.jobs().len(),
        serial / pipelined
    );
    assert!(pipelined < serial);
}

// ------------------------------------------------- stop 3: equivalence

fn equivalence_tour() {
    let workload = WorkloadGenerator::new(GeneratorConfig {
        days: 1,
        jobs_per_day: 10,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generates");
    let cost_model = CostModel::default();
    let sim = Simulator::new(ClusterConfig::default()).expect("valid cluster");
    let mut checked = 0usize;
    for job in workload.trace.jobs() {
        let dag = StageDag::compile(&job.plan, &workload.catalog, &cost_model).expect("compiles");
        let kernel = sim.run(&dag, &SimOptions::default()).expect("runs");
        let legacy = sim.run_legacy(&dag, &SimOptions::default()).expect("runs");
        assert_eq!(
            kernel.latency.to_bits(),
            legacy.latency.to_bits(),
            "kernel and legacy schedules must agree to the bit"
        );
        assert_eq!(kernel, legacy);
        checked += 1;
    }
    println!("[equivalence] {checked} jobs: kernel == legacy, bit for bit");
}

fn main() {
    raw_kernel_tour();
    pipelined_tour();
    equivalence_tour();
}
