//! Engine-layer tour over a recurring workload: computation reuse
//! (CloudViews), rule-hint steering, and checkpoint optimization (Phoebe)
//! applied to the same SCOPE-like trace.
//!
//! Run with: `cargo run --release --example recurring_jobs`

use autonomous_data_services::checkpoint::{
    evaluate, plan_checkpoints, PhoebeConfig, StagePredictor,
};
use autonomous_data_services::engine::cardinality::{DefaultEstimator, TrueCardinality};
use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::{ClusterConfig, SimOptions, Simulator};
use autonomous_data_services::engine::physical::StageDag;
use autonomous_data_services::engine::rules::{Optimizer, RuleSet};
use autonomous_data_services::learned::steering::{SteeringConfig, SteeringController};
use autonomous_data_services::reuse::{replay, ReplayConfig};
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};
use autonomous_data_services::workload::plan::{CmpOp, LogicalPlan, Predicate};
use autonomous_data_services::workload::signature::template_signature;
use std::collections::HashMap;

fn main() {
    let workload = WorkloadGenerator::new(GeneratorConfig {
        days: 6,
        jobs_per_day: 120,
        n_templates: 20,
        shared_template_fraction: 0.7,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generation succeeds");
    println!("== workload: {} jobs ==", workload.trace.len());

    // --- CloudViews: train views on the first half, replay the second.
    let report = replay(
        &workload.trace,
        &workload.catalog,
        &ReplayConfig {
            train_fraction: 0.3,
            ..Default::default()
        },
    )
    .expect("replay runs");
    println!(
        "cloudviews: {} views; latency -{:.0}%, processing time -{:.0}% ({} hits, {} via containment)",
        report.views_selected,
        report.latency_improvement * 100.0,
        report.cpu_reduction * 100.0,
        report.total_hits,
        report.containment_hits
    );

    // --- Steering: bandit over rule hints for the most frequent template.
    let est = DefaultEstimator::new(&workload.catalog);
    let truth = TrueCardinality::new(&workload.catalog);
    let cost_model = CostModel::default();
    let optimizer = Optimizer::default();
    let mut by_template: HashMap<_, Vec<_>> = HashMap::new();
    for job in workload.trace.jobs() {
        by_template
            .entry(template_signature(&job.plan))
            .or_default()
            .push(&job.plan);
    }
    by_template.retain(|_, v| v.len() >= 10);
    let mut controller = SteeringController::new(RuleSet::all(), SteeringConfig::default());
    let true_cost = |plan: &LogicalPlan, rules: RuleSet| {
        let optimized = optimizer
            .optimize(plan, rules, &est)
            .expect("plan validates");
        cost_model
            .total_cost(&optimized.plan, &truth)
            .expect("plan validates")
    };
    for round in 0..60 {
        for (&sig, instances) in &by_template {
            let plan = instances[round % instances.len()];
            let chosen = controller.choose(sig);
            let deployed = controller.deployed(sig);
            let c = true_cost(plan, chosen);
            let d = if chosen == deployed {
                c
            } else {
                true_cost(plan, deployed)
            };
            controller.observe(sig, chosen, c, d);
        }
    }
    let stats = controller.stats();
    println!(
        "steering: {} of {} recurring templates steered off the default config \
({} promotions, {} candidates blocked by the validation model, mean reward {:.3})",
        stats.templates_steered,
        stats.templates,
        stats.promotions,
        stats.rejected_by_validation,
        stats.mean_reward
    );

    // --- Phoebe: checkpoint a large recurring job.
    let big = {
        let branch = |i: i64| {
            LogicalPlan::join(
                LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, 200 + i * 9)),
                LogicalPlan::scan("users"),
                0,
                0,
            )
            .aggregate(vec![1])
        };
        let mut plan = branch(0);
        for i in 1..24 {
            plan = LogicalPlan::union(plan, branch(i));
        }
        plan.aggregate(vec![1])
    };
    let cluster = ClusterConfig {
        machines: 32,
        ..Default::default()
    };
    let sim = Simulator::new(cluster).expect("valid cluster");
    let dag = StageDag::compile(&big, &workload.catalog, &cost_model).expect("plan validates");
    let history: Vec<_> = [100i64, 300, 500]
        .iter()
        .map(|&v| {
            let small = LogicalPlan::join(
                LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, v)),
                LogicalPlan::scan("users"),
                0,
                0,
            )
            .aggregate(vec![1]);
            let d = StageDag::compile(&small, &workload.catalog, &cost_model).expect("validates");
            let r = sim.run(&d, &SimOptions::default()).expect("simulates");
            (d, r)
        })
        .collect();
    let refs: Vec<_> = history.iter().map(|(d, r)| (d, r)).collect();
    let predictor = StagePredictor::train(&refs).expect("enough stages");
    let forecast = predictor.forecast(&dag);
    let config = PhoebeConfig {
        max_cuts: 3,
        hotspot_threshold: 0.05,
        ..Default::default()
    };
    let plan = plan_checkpoints(&dag, &forecast, &config);
    let phoebe = evaluate(&dag, &plan, cluster, 0.85).expect("simulates");
    println!(
        "phoebe: {} of {} stages checkpointed; hotspot temp -{:.0}%, restart -{:.0}%, slowdown {:.1}%",
        plan.stages.len(),
        dag.len(),
        phoebe.hotspot_reduction * 100.0,
        phoebe.restart_speedup * 100.0,
        phoebe.slowdown * 100.0
    );
}
