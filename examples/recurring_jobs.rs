//! Engine-layer tour over a recurring workload: computation reuse
//! (CloudViews), rule-hint steering, and checkpoint optimization (Phoebe)
//! applied to the same SCOPE-like trace — with the steering bandit's hint
//! provenance and Phoebe's cut decisions recorded into one flight-recorder
//! trace, and progress printed as machine-parseable JSON event lines.
//!
//! Run with: `cargo run --release --example recurring_jobs`

use autonomous_data_services::checkpoint::{
    evaluate_with_obs, plan_checkpoints_with_obs, PhoebeConfig, StagePredictor,
};
use autonomous_data_services::engine::cardinality::{DefaultEstimator, TrueCardinality};
use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::{ClusterConfig, SimOptions, Simulator};
use autonomous_data_services::engine::physical::StageDag;
use autonomous_data_services::engine::rules::{Optimizer, RuleSet};
use autonomous_data_services::learned::steering::{SteeringConfig, SteeringController};
use autonomous_data_services::obs::Obs;
use autonomous_data_services::reuse::{replay, ReplayConfig};
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};
use autonomous_data_services::workload::plan::{CmpOp, LogicalPlan, Predicate};
use autonomous_data_services::workload::signature::template_signature;
use std::collections::HashMap;

/// Records a progress event and prints it as one JSON line.
fn emit(obs: &Obs, name: &str, fields: &[(&str, &str)]) {
    obs.event("example.recurring_jobs", name, 0.0, fields);
    println!("{}", obs.last_event_json().expect("recording"));
}

fn main() {
    let obs = Obs::recording();
    let workload = WorkloadGenerator::new(GeneratorConfig {
        days: 6,
        jobs_per_day: 120,
        n_templates: 20,
        shared_template_fraction: 0.7,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generation succeeds");
    emit(
        &obs,
        "workload_generated",
        &[("jobs", &workload.trace.len().to_string())],
    );

    // --- CloudViews: train views on the first half, replay the second.
    let report = replay(
        &workload.trace,
        &workload.catalog,
        &ReplayConfig {
            train_fraction: 0.3,
            ..Default::default()
        },
    )
    .expect("replay runs");
    emit(
        &obs,
        "cloudviews_replayed",
        &[
            ("views", &report.views_selected.to_string()),
            (
                "latency_improvement_pct",
                &format!("{:.0}", report.latency_improvement * 100.0),
            ),
            (
                "cpu_reduction_pct",
                &format!("{:.0}", report.cpu_reduction * 100.0),
            ),
            ("hits", &report.total_hits.to_string()),
            ("containment_hits", &report.containment_hits.to_string()),
        ],
    );

    // --- Steering: bandit over rule hints for the most frequent template.
    //     Every observed hint lands in the flight recorder with provenance.
    let est = DefaultEstimator::new(&workload.catalog);
    let truth = TrueCardinality::new(&workload.catalog);
    let cost_model = CostModel::default();
    let optimizer = Optimizer::default();
    let mut by_template: HashMap<_, Vec<_>> = HashMap::new();
    for job in workload.trace.jobs() {
        by_template
            .entry(template_signature(&job.plan))
            .or_default()
            .push(&job.plan);
    }
    by_template.retain(|_, v| v.len() >= 10);
    let mut controller =
        SteeringController::with_obs(RuleSet::all(), SteeringConfig::default(), obs.clone());
    let true_cost = |plan: &LogicalPlan, rules: RuleSet| {
        let optimized = optimizer
            .optimize(plan, rules, &est)
            .expect("plan validates");
        cost_model
            .total_cost(&optimized.plan, &truth)
            .expect("plan validates")
    };
    for round in 0..60 {
        for (&sig, instances) in &by_template {
            let plan = instances[round % instances.len()];
            let chosen = controller.choose(sig);
            let deployed = controller.deployed(sig);
            let c = true_cost(plan, chosen);
            let d = if chosen == deployed {
                c
            } else {
                true_cost(plan, deployed)
            };
            controller.observe(sig, chosen, c, d);
        }
    }
    let stats = controller.stats();
    emit(
        &obs,
        "steering_converged",
        &[
            ("templates_steered", &stats.templates_steered.to_string()),
            ("templates", &stats.templates.to_string()),
            ("promotions", &stats.promotions.to_string()),
            (
                "rejected_by_validation",
                &stats.rejected_by_validation.to_string(),
            ),
            ("mean_reward", &format!("{:.3}", stats.mean_reward)),
        ],
    );

    // --- Phoebe: checkpoint a large recurring job.
    let big = {
        let branch = |i: i64| {
            LogicalPlan::join(
                LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, 200 + i * 9)),
                LogicalPlan::scan("users"),
                0,
                0,
            )
            .aggregate(vec![1])
        };
        let mut plan = branch(0);
        for i in 1..24 {
            plan = LogicalPlan::union(plan, branch(i));
        }
        plan.aggregate(vec![1])
    };
    let cluster = ClusterConfig {
        machines: 32,
        ..Default::default()
    };
    let sim = Simulator::new(cluster).expect("valid cluster");
    let dag = StageDag::compile(&big, &workload.catalog, &cost_model).expect("plan validates");
    let history: Vec<_> = [100i64, 300, 500]
        .iter()
        .map(|&v| {
            let small = LogicalPlan::join(
                LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, v)),
                LogicalPlan::scan("users"),
                0,
                0,
            )
            .aggregate(vec![1]);
            let d = StageDag::compile(&small, &workload.catalog, &cost_model).expect("validates");
            let r = sim.run(&d, &SimOptions::default()).expect("simulates");
            (d, r)
        })
        .collect();
    let refs: Vec<_> = history.iter().map(|(d, r)| (d, r)).collect();
    let predictor = StagePredictor::train(&refs).expect("enough stages");
    let forecast = predictor.forecast(&dag);
    let config = PhoebeConfig {
        max_cuts: 3,
        hotspot_threshold: 0.05,
        ..Default::default()
    };
    let plan = plan_checkpoints_with_obs(&dag, &forecast, &config, &obs);
    let phoebe = evaluate_with_obs(&dag, &plan, cluster, 0.85, &obs).expect("simulates");
    emit(
        &obs,
        "phoebe_evaluated",
        &[
            ("stages_checkpointed", &plan.stages.len().to_string()),
            ("stages", &dag.len().to_string()),
            (
                "hotspot_reduction_pct",
                &format!("{:.0}", phoebe.hotspot_reduction * 100.0),
            ),
            (
                "restart_speedup_pct",
                &format!("{:.0}", phoebe.restart_speedup * 100.0),
            ),
            ("slowdown_pct", &format!("{:.1}", phoebe.slowdown * 100.0)),
        ],
    );

    // One trace holds the bandit's promotions and Phoebe's cuts alike.
    let trace = obs.snapshot();
    emit(
        &obs,
        "trace_summary",
        &[
            ("spans", &trace.spans.len().to_string()),
            (
                "hints_recorded",
                &trace
                    .query()
                    .component("learned.steering")
                    .decisions()
                    .len()
                    .to_string(),
            ),
            (
                "cuts_recorded",
                &trace.events_named("cut_selected").count().to_string(),
            ),
        ],
    );
}
