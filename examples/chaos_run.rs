//! Chaos tour: deterministic fault injection end to end, narrated by the
//! flight recorder.
//!
//! Expands one master seed into per-job fault schedules, replays a batch of
//! generated jobs through the cluster simulator with crashes and machine
//! losses firing, shows checkpointing containing the damage, and finishes
//! with a poisoned model being stopped by the guardrails. Every fault, every
//! restart and every guardrail verdict lands in one [`Obs`] trace, so the
//! whole tour can be queried back afterwards — and progress is printed as
//! machine-parseable JSON event lines instead of free-form text.
//!
//! Run with: `cargo run --release --example chaos_run`

use std::collections::HashSet;

use autonomous_data_services::core::guardrails::{Decision, GuardrailSet, Verdict};
use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::ClusterConfig;
use autonomous_data_services::engine::physical::{StageDag, StageId};
use autonomous_data_services::faultsim::{ChaosRunner, FaultConfig, FaultInjector};
use autonomous_data_services::obs::{digest_f64, Obs, Provenance};
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};

/// Records a progress event and prints it as one JSON line.
fn emit(obs: &Obs, name: &str, fields: &[(&str, &str)]) {
    obs.event("example.chaos_run", name, 0.0, fields);
    println!("{}", obs.last_event_json().expect("recording"));
}

fn main() {
    // Everything below records into one flight-recorder trace.
    let obs = Obs::recording();

    // 1. A workload and a cluster, exactly as the clean-path examples use.
    let workload = WorkloadGenerator::new(GeneratorConfig {
        days: 1,
        jobs_per_day: 20,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generation succeeds");
    let cluster = ClusterConfig::default();
    let cost_model = CostModel::default();

    // 2. One master seed expands into a per-job fault schedule. Same seed,
    //    same faults — rerun this binary and every line is identical.
    let injector = FaultInjector::new(42, FaultConfig::standard());
    let runner = ChaosRunner::with_obs(cluster, f64::INFINITY, obs.clone()).expect("valid cluster");

    let mut injected = 0usize;
    let mut restarts = 0usize;
    for (i, job) in workload.trace.jobs().iter().enumerate() {
        let dag = StageDag::compile(&job.plan, &workload.catalog, &cost_model).expect("compiles");
        let schedule = injector.schedule_for(i as u64, cluster.machines);
        // Checkpoint the first half of the stages: their outputs persist in
        // the global store and are never recomputed after a fault.
        let checkpointed: HashSet<StageId> = (0..dag.len() / 2).map(StageId).collect();
        let outcome = runner
            .run_job(&dag, &checkpointed, &schedule)
            .expect("chaos runs never panic");
        assert_eq!(outcome.recomputed_checkpointed, 0);
        injected += outcome.injected;
        restarts += outcome.attempts - 1;
    }
    emit(
        &obs,
        "chaos_replayed",
        &[
            ("seed", "42"),
            ("jobs", &workload.trace.len().to_string()),
            ("faults_injected", &injected.to_string()),
            ("restarts", &restarts.to_string()),
            ("checkpointed_recomputed", "0"),
        ],
    );

    // 3. The model channel: a poisoned cost model inflates predictions by
    //    the configured factor; the RAI guardrails refuse the regression,
    //    and both verdicts go to the flight recorder with full provenance.
    let faults = injector.model_faults();
    let guards = GuardrailSet::standard().with_obs(obs.clone());
    let honest = Decision {
        predicted_perf: 100.0,
        baseline_perf: 100.0,
        predicted_cost: 10.0,
        baseline_cost: 10.0,
        group: 0,
    };
    let poisoned = Decision {
        predicted_cost: faults.poisoned(honest.predicted_cost),
        ..honest
    };
    let provenance = |d: &Decision, version: u64| {
        Provenance::new(
            "chaos-cost-model",
            version,
            digest_f64([
                d.predicted_perf,
                d.baseline_perf,
                d.predicted_cost,
                d.baseline_cost,
            ]),
        )
    };
    match (
        guards.check_recorded(&honest, &provenance(&honest, 1), 0.0),
        guards.check_recorded(&poisoned, &provenance(&poisoned, 2), 0.0),
    ) {
        (Verdict::Allow, Verdict::Block(reason)) => {
            let blocked = format!("block: {reason}");
            emit(
                &obs,
                "guardrail_outcome",
                &[("honest", "allow"), ("poisoned", &blocked)],
            );
        }
        other => panic!("guardrails misbehaved: {other:?}"),
    }

    // 4. The payoff: the fault events, their downstream restarts and the
    //    guardrail veto all live in the same trace. Query it back.
    let trace = obs.snapshot();
    assert_eq!(trace.events_named("fault_injected").count(), injected);
    let vetoed = trace
        .query()
        .component("core.guardrails")
        .vetoed()
        .decisions();
    assert_eq!(vetoed.len(), 1, "exactly the poisoned decision was vetoed");
    for decision in &vetoed {
        println!("{}", serde_json::to_string(decision).expect("serializes"));
    }
    emit(
        &obs,
        "trace_summary",
        &[
            ("spans", &trace.spans.len().to_string()),
            ("events", &trace.events.len().to_string()),
            ("decisions", &trace.decisions.len().to_string()),
            ("vetoes", &vetoed.len().to_string()),
        ],
    );
}
