//! Chaos tour: deterministic fault injection end to end.
//!
//! Expands one master seed into per-job fault schedules, replays a batch of
//! generated jobs through the cluster simulator with crashes and machine
//! losses firing, shows checkpointing containing the damage, and finishes
//! with a poisoned model being stopped by the guardrails.
//!
//! Run with: `cargo run --release --example chaos_run`

use std::collections::HashSet;

use autonomous_data_services::core::guardrails::{Decision, GuardrailSet, Verdict};
use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::ClusterConfig;
use autonomous_data_services::engine::physical::{StageDag, StageId};
use autonomous_data_services::faultsim::{ChaosRunner, FaultConfig, FaultInjector};
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};

fn main() {
    // 1. A workload and a cluster, exactly as the clean-path examples use.
    let workload = WorkloadGenerator::new(GeneratorConfig {
        days: 1,
        jobs_per_day: 20,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generation succeeds");
    let cluster = ClusterConfig::default();
    let cost_model = CostModel::default();

    // 2. One master seed expands into a per-job fault schedule. Same seed,
    //    same faults — rerun this binary and every number is identical.
    let injector = FaultInjector::new(42, FaultConfig::standard());
    let runner = ChaosRunner::new(cluster, f64::INFINITY).expect("valid cluster");

    let mut injected = 0usize;
    let mut restarts = 0usize;
    for (i, job) in workload.trace.jobs().iter().enumerate() {
        let dag = StageDag::compile(&job.plan, &workload.catalog, &cost_model).expect("compiles");
        let schedule = injector.schedule_for(i as u64, cluster.machines);
        // Checkpoint the first half of the stages: their outputs persist in
        // the global store and are never recomputed after a fault.
        let checkpointed: HashSet<StageId> = (0..dag.len() / 2).map(StageId).collect();
        let outcome = runner
            .run_job(&dag, &checkpointed, &schedule)
            .expect("chaos runs never panic");
        assert_eq!(outcome.recomputed_checkpointed, 0);
        injected += outcome.injected;
        restarts += outcome.attempts - 1;
    }
    println!(
        "replayed {} jobs under seed 42: {injected} faults fired, {restarts} restarts, \
         0 checkpointed stages recomputed",
        workload.trace.len()
    );

    // 3. The model channel: a poisoned cost model inflates predictions by
    //    the configured factor; the RAI guardrails refuse the regression.
    let faults = injector.model_faults();
    let guards = GuardrailSet::standard();
    let honest = Decision {
        predicted_perf: 100.0,
        baseline_perf: 100.0,
        predicted_cost: 10.0,
        baseline_cost: 10.0,
        group: 0,
    };
    let poisoned = Decision {
        predicted_cost: faults.poisoned(honest.predicted_cost),
        ..honest
    };
    match (guards.check(&honest), guards.check(&poisoned)) {
        (Verdict::Allow, Verdict::Block(reason)) => {
            println!("honest decision allowed; poisoned decision blocked: {reason}");
        }
        other => panic!("guardrails misbehaved: {other:?}"),
    }
}
